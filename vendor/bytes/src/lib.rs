//! Offline shim of the `bytes` crate.
//!
//! Provides the subset of the real crate's API that this workspace uses: an
//! immutable, cheaply cloneable byte buffer. Cloning only bumps a reference
//! count, so `Bytes::clone` never allocates — a property the simulator's
//! allocation-free hot path relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Creates `Bytes` from a static slice.
    ///
    /// Unlike the real crate this copies once at construction; clones remain
    /// allocation-free.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the bytes as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.data[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.data[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"\x01\x02");
        let b = Bytes::from(vec![1u8, 2]);
        assert_eq!(a, b);
        assert_eq!(a, [1u8, 2]);
        assert_eq!(a[..], b[..]);
        assert_eq!(a.to_vec(), vec![1, 2]);
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![7u8; 32]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn debug_renders_escapes() {
        let s = format!("{:?}", Bytes::from_static(b"a\x00"));
        assert_eq!(s, "b\"a\\x00\"");
    }

    #[test]
    fn compares_with_slices() {
        let a = Bytes::from_static(b"xy");
        let s: &[u8] = b"xy";
        assert!(a == s);
        assert!(a == *s);
    }
}
