//! Offline shim of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` with a
//! hand-rolled token parser (no `syn`/`quote`): the item's shape is read
//! directly from the `proc_macro` token stream and impls are emitted as
//! source strings. Supports the shapes this workspace uses — named-field
//! structs, tuple/newtype structs, enums with unit / newtype / tuple /
//! struct variants — plus the `#[serde(skip)]` field attribute (skipped
//! fields are omitted on serialize and `Default`-filled on deserialize).
//! Generics and other serde attributes are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim's `serde::Serialize` for the item.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize` for the item.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: split_top_level(g.stream())
                        .into_iter()
                        .filter(|c| !c.is_empty())
                        .count(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for {name}, found {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Advances past attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas (nested groups are opaque).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().expect("non-empty chunk list").push(tok),
        }
    }
    chunks
}

/// Whether an attribute bracket group is `serde(... skip ...)`.
fn is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut toks = group.stream().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(head)), Some(TokenTree::Group(args)))
            if head.to_string() == "serde" =>
        {
            let mut saw_skip = false;
            for t in args.stream() {
                match t {
                    TokenTree::Ident(id) if id.to_string() == "skip" => saw_skip = true,
                    TokenTree::Ident(other) => {
                        panic!("serde shim derive only supports #[serde(skip)], found `{other}`")
                    }
                    _ => {}
                }
            }
            saw_skip
        }
        _ => false,
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream) {
        if chunk.is_empty() {
            continue;
        }
        let mut skip = false;
        let mut i = 0;
        // Field attributes: record #[serde(skip)], ignore doc comments.
        while let Some(TokenTree::Punct(p)) = chunk.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = chunk.get(i + 1) {
                skip |= is_serde_skip(g);
            }
            i += 2;
        }
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        if chunk.is_empty() {
            continue;
        }
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(
                    split_top_level(g.stream())
                        .into_iter()
                        .filter(|c| !c.is_empty())
                        .count(),
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_fields(g.stream()))
            }
            None => VariantKind::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde shim derive does not support explicit discriminants ({name})")
            }
            other => panic!("unsupported variant body for {name}: {other:?}"),
        };
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------- generation

/// Emits the field-map construction statements for a set of named fields,
/// reading each field through the accessor prefix (`&self.` or a binding).
fn ser_named_fields(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let live = fields.iter().filter(|f| !f.skip).count();
    let mut out = format!(
        "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::with_capacity({live});\n"
    );
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "fields.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value({a})));\n",
            n = f.name,
            a = access(&f.name)
        ));
    }
    out.push_str("::serde::Value::Map(fields)");
    out
}

/// Emits struct-literal field initializers that pull each live field from a
/// map binding named `map` (erroring on absence) and `Default` the rest.
fn de_named_fields(fields: &[Field], owner: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{n}: ::std::default::Default::default(),\n",
                n = f.name
            ));
        } else {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value(::serde::Value::get_field(map, \"{n}\")\
                 .ok_or_else(|| ::serde::DeError::custom(\
                 \"missing field `{n}` in {owner}\"))?)?,\n",
                n = f.name
            ));
        }
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            (name, ser_named_fields(fields, |f| format!("&self.{f}")))
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            (
                name,
                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|j| format!("f{j}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Seq(::std::vec![{e}]))]),\n",
                            b = binds.join(", "),
                            e = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = ser_named_fields(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {{ {inner} }})]),\n",
                            b = binds.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => (
            name,
            format!(
                "let map = v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})",
                inits = de_named_fields(fields, name)
            ),
        ),
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&seq[{k}])?"))
                .collect();
            (
                name,
                format!(
                    "let seq = v.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                     \"expected sequence for {name}\"))?;\n\
                     if seq.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"wrong tuple length for {name}\"));\n}}\n\
                     ::std::result::Result::Ok({name}({e}))",
                    e = elems.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (
            name,
            format!(
                "match v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"expected null for {name}\")),\n}}"
            ),
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(content)?)),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let elems: Vec<String> = (0..*k)
                            .map(|j| format!("::serde::Deserialize::from_value(&seq[{j}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let seq = content.as_seq().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected sequence for {name}::{vn}\"))?;\n\
                             if seq.len() != {k} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"wrong tuple length for {name}::{vn}\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}({e}))\n}}\n",
                            e = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let map = content.as_map().ok_or_else(|| \
                         ::serde::DeError::custom(\"expected map for {name}::{vn}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n",
                        inits = de_named_fields(fields, &format!("{name}::{vn}"))
                    )),
                }
            }
            (
                name,
                format!(
                    "match v {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                     {unit_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let (tag, content) = &entries[0];\n\
                     let _ = content;\n\
                     match tag.as_str() {{\n\
                     {data_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"expected variant of {name}, got {{}}\", other.kind()))),\n}}"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}
