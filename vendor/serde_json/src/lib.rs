//! Offline shim of `serde_json`: serializes the `serde` shim's [`Value`]
//! data model to JSON text and parses JSON text back into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeError, Serialize, Value};

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- printer

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error("cannot serialize non-finite float".into()));
            }
            // `{:?}` is the shortest representation that round-trips and
            // always keeps a decimal point or exponent.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00) & 0x3FF)
                                } else {
                                    return Err(self.err("lone leading surrogate"));
                                }
                            } else {
                                first
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(c);
                            self.pos -= 1; // compensate the shared += 1 below
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Vec<u64> = vec![1, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let s = "quote \" backslash \\ newline \n tab \t".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);

        let f = vec![1.5f64, -0.25, 1e300];
        let back: Vec<f64> = from_str(&to_string(&f).unwrap()).unwrap();
        assert_eq!(back, f);

        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_print_shape() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0).unwrap();
        assert_eq!(out, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str(r#""Aé😀\n""#).unwrap();
        assert_eq!(s, "Aé😀\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
