//! Offline shim of `serde`.
//!
//! Instead of the real crate's visitor-based `Serializer`/`Deserializer`
//! architecture, this shim converts through a small [`Value`] data model:
//! `Serialize` renders a type to a `Value`, `Deserialize` rebuilds it from
//! one, and `serde_json` prints/parses `Value`s. The derive macros (from the
//! companion `serde_derive` shim) generate externally-tagged enum and
//! field-map struct representations compatible with what real
//! `serde` + `serde_json` produce for the types in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// The self-describing data model every type serializes through.
///
/// Maps preserve insertion order (struct field order), matching
/// `serde_json`'s default behavior with `preserve_order`-free structs well
/// enough for round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered key-value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in a map value.
    pub fn get_field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A type renderable into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a `Value`.
    fn to_value(&self) -> Value;
}

/// A type rebuildable from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses a `Value` into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization traits and markers, mirroring `serde::de`.
pub mod de {
    /// A type deserializable without borrowing from the input — in this shim,
    /// every [`crate::Deserialize`] qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` is its own data model: serializing is the identity, so callers
// can hand-build dynamic JSON documents (e.g. Chrome trace events) and
// feed them to `serde_json` like any derived type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! uint_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    DeError::custom(format!("{raw} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = *self as i64;
                if wide >= 0 {
                    Value::U64(wide as u64)
                } else {
                    Value::I64(wide)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u).map_err(|_| {
                        DeError::custom(format!("{u} out of range for i64"))
                    })?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    DeError::custom(format!("{raw} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(DeError::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::custom("expected 2-element sequence")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::custom("expected 3-element sequence")),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // JSON object keys are strings: render the key's value as a string.
        Value::Map(
            self.iter()
                .map(|(k, v)| (value_key(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

fn value_key(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(u) => u.to_string(),
        Value::I64(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&Option::<u8>::None.to_value()).unwrap(),
            None
        );
        let v: Vec<u16> = vec![1, 2, 3];
        assert_eq!(Vec::<u16>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
