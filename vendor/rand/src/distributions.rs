//! Standard and uniform-range sampling, matching `rand 0.8.5`'s algorithms.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types samplable from the standard (full-width / unit-interval) distribution.
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for u8 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl SampleStandard for u16 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for i32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl SampleStandard for i64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // rand 0.8: sign bit of a fresh u32 (MSBs have the best quality).
        (rng.next_u32() as i32) < 0
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53-bit mantissa multiply: uniform in [0, 1).
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

/// Range types usable with [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Widening multiply: returns (high, low) halves of the full product.
trait WideMul: Sized {
    fn wmul(self, rhs: Self) -> (Self, Self);
}

impl WideMul for u32 {
    fn wmul(self, rhs: Self) -> (Self, Self) {
        let wide = u64::from(self) * u64::from(rhs);
        ((wide >> 32) as u32, wide as u32)
    }
}

impl WideMul for u64 {
    fn wmul(self, rhs: Self) -> (Self, Self) {
        let wide = u128::from(self) * u128::from(rhs);
        ((wide >> 64) as u64, wide as u64)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $gen:ident) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_inclusive(self.start, self.end - 1, rng)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample empty range");
                sample_inclusive(low, high, rng)
            }
        }

        /// `UniformInt::sample_single_inclusive` from rand 0.8.5: widening
        /// multiply with a bitmask-derived rejection zone.
        fn sample_inclusive<R: RngCore>(low: $ty, high: $ty, rng: &mut R) -> $ty {
            let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
            if range == 0 {
                // Full integer range: any sample is fair.
                return rng.$gen() as $ty;
            }
            let zone = (range << range.leading_zeros()).wrapping_sub(1);
            loop {
                let v: $u_large = rng.$gen();
                let (hi, lo) = v.wmul(range);
                if lo <= zone {
                    return low.wrapping_add(hi as $ty);
                }
            }
        }
    };
}

mod range_u8 {
    use super::*;
    uniform_int_impl!(u8, u8, u32, next_u32);
}
mod range_u16 {
    use super::*;
    uniform_int_impl!(u16, u16, u32, next_u32);
}
mod range_u32 {
    use super::*;
    uniform_int_impl!(u32, u32, u32, next_u32);
}
mod range_i32 {
    use super::*;
    uniform_int_impl!(i32, u32, u32, next_u32);
}
mod range_u64 {
    use super::*;
    uniform_int_impl!(u64, u64, u64, next_u64);
}
mod range_i64 {
    use super::*;
    uniform_int_impl!(i64, u64, u64, next_u64);
}
mod range_usize {
    use super::*;
    uniform_int_impl!(usize, usize, u64, next_u64);
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // rand 0.8 UniformFloat::sample_single: value in [1, 2) scaled by
        // multiply-add so the stream matches the original crate.
        let scale = self.end - self.start;
        let offset = self.start - scale;
        let mantissa = rng.next_u64() >> 12;
        let value1_2 = f64::from_bits((1023u64 << 52) | mantissa);
        value1_2 * scale + offset
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn inclusive_and_exclusive_agree_on_equivalent_ranges() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..1_000 {
            let x: u64 = a.gen_range(3..10);
            let y: u64 = b.gen_range(3..=9);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn f64_range_hits_interior() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut lo_half = false;
        let mut hi_half = false;
        for _ in 0..1_000 {
            let v: f64 = rng.gen_range(10.0..20.0);
            assert!((10.0..20.0).contains(&v));
            if v < 15.0 {
                lo_half = true;
            } else {
                hi_half = true;
            }
        }
        assert!(lo_half && hi_half);
    }
}
