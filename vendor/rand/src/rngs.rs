//! The standard generator: ChaCha12 behind `rand_core`'s block-buffer logic.

use crate::chacha::{ChaCha12Core, BUF_WORDS};
use crate::{RngCore, SeedableRng};

/// The standard RNG, stream-compatible with `rand 0.8`'s `StdRng`
/// (ChaCha12 with `rand_core 0.6` `BlockRng` word-consumption semantics).
#[derive(Clone)]
pub struct StdRng {
    core: ChaCha12Core,
    results: [u32; BUF_WORDS],
    index: usize,
}

impl std::fmt::Debug for StdRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StdRng").finish_non_exhaustive()
    }
}

impl StdRng {
    /// Refills the buffer and positions the read index at `index`.
    fn generate_and_set(&mut self, index: usize) {
        debug_assert!(index < BUF_WORDS);
        self.core.generate(&mut self.results);
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng {
            core: ChaCha12Core::from_seed(seed),
            results: [0u32; BUF_WORDS],
            // Empty buffer: first use triggers generation.
            index: BUF_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng::next_u64: pair of words, with the buffer-straddling
        // branch preserved so streams match `rand 0.8` exactly.
        let len = BUF_WORDS;
        let index = self.index;
        if index < len - 1 {
            self.index += 2;
            (u64::from(self.results[index + 1]) << 32) | u64::from(self.results[index])
        } else if index >= len {
            self.generate_and_set(2);
            (u64::from(self.results[1]) << 32) | u64::from(self.results[0])
        } else {
            let x = u64::from(self.results[len - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut read = 0;
        while read < dest.len() {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let remaining = &self.results[self.index..];
            let want = dest.len() - read;
            let mut consumed = 0;
            for word in remaining {
                if read >= dest.len() {
                    break;
                }
                let bytes = word.to_le_bytes();
                let take = (dest.len() - read).min(4);
                dest[read..read + take].copy_from_slice(&bytes[..take]);
                read += take;
                consumed += 1;
            }
            debug_assert!(consumed > 0 || want == 0);
            self.index += consumed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_straddle_branch_is_consistent() {
        // Drain 63 words so the next u64 straddles the refill boundary, then
        // check the straddle result equals hand-assembly from a fresh clone.
        let mut rng = StdRng::seed_from_u64(99);
        let mut probe = rng.clone();
        let words: Vec<u32> = (0..BUF_WORDS as u32 + 1)
            .map(|_| probe.next_u32())
            .collect();
        for _ in 0..BUF_WORDS - 1 {
            rng.next_u32();
        }
        let straddled = rng.next_u64();
        let expected = (u64::from(words[BUF_WORDS]) << 32) | u64::from(words[BUF_WORDS - 1]);
        assert_eq!(straddled, expected);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let mut expect = Vec::new();
        for _ in 0..4 {
            expect.extend_from_slice(&b.next_u32().to_le_bytes());
        }
        assert_eq!(&buf[..], &expect[..]);
    }

    #[test]
    fn partial_word_fill_rounds_up_consumption() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 3];
        a.fill_bytes(&mut buf);
        // The partially consumed word is discarded, like rand_core.
        let second_word_a = a.next_u32();
        b.next_u32();
        let second_word_b = b.next_u32();
        assert_eq!(second_word_a, second_word_b);
    }
}
