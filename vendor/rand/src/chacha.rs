//! ChaCha block function (12-round variant) with the 64-bit counter /
//! 64-bit stream layout used by `rand_chacha`'s `ChaCha12Rng`.

/// "expand 32-byte k" — the ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Number of 16-word blocks produced per `generate` call, matching
/// `rand_chacha`'s four-block output buffer.
pub const BUF_BLOCKS: u64 = 4;

/// Total `u32` words produced per `generate` call.
pub const BUF_WORDS: usize = (BUF_BLOCKS as usize) * 16;

/// ChaCha12 core state: key, 64-bit block counter, 64-bit stream id.
#[derive(Clone, Debug)]
pub struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
    stream: u64,
}

impl ChaCha12Core {
    /// The raw core state `(key, counter, stream)`.
    pub fn state(&self) -> ([u32; 8], u64, u64) {
        (self.key, self.counter, self.stream)
    }

    /// Rebuilds a core from raw state words (see [`ChaCha12Core::state`]).
    pub fn from_state(key: [u32; 8], counter: u64, stream: u64) -> Self {
        ChaCha12Core {
            key,
            counter,
            stream,
        }
    }

    /// Builds the core from a 32-byte key (counter and stream start at 0).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Core {
            key,
            counter: 0,
            stream: 0,
        }
    }

    /// Produces the next four 16-word blocks, advancing the counter by 4.
    pub fn generate(&mut self, out: &mut [u32; BUF_WORDS]) {
        for block in 0..BUF_BLOCKS {
            let counter = self.counter.wrapping_add(block);
            let words = run_block(&self.key, counter, self.stream, 12);
            out[(block as usize) * 16..(block as usize + 1) * 16].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add(BUF_BLOCKS);
    }
}

/// Runs `rounds` ChaCha rounds over one block and returns the 16 output words.
fn run_block(key: &[u32; 8], counter: u64, stream: u64, rounds: usize) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = stream as u32;
    state[15] = (stream >> 32) as u32;

    let mut x = state;
    debug_assert!(rounds.is_multiple_of(2), "ChaCha rounds come in pairs");
    for _ in 0..rounds / 2 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for (out, base) in x.iter_mut().zip(state.iter()) {
        *out = out.wrapping_add(*base);
    }
    x
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// djb's ChaCha20 keystream for the all-zero key, nonce and counter —
    /// validates the round function and state layout (the 12-round variant
    /// differs only in the round count).
    #[test]
    fn chacha20_zero_key_vector() {
        let words = run_block(&[0u32; 8], 0, 0, 20);
        let mut stream = Vec::with_capacity(64);
        for w in words {
            stream.extend_from_slice(&w.to_le_bytes());
        }
        let expected: [u8; 64] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7, 0xda, 0x41, 0x59, 0x7c, 0x51, 0x57, 0x48, 0x8d, 0x77, 0x24,
            0xe0, 0x3f, 0xb8, 0xd8, 0x4a, 0x37, 0x6a, 0x43, 0xb8, 0xf4, 0x15, 0x18, 0xa1, 0x1c,
            0xc3, 0x87, 0xb6, 0x69, 0xb2, 0xee, 0x65, 0x86,
        ];
        assert_eq!(stream.as_slice(), expected.as_slice());
    }

    #[test]
    fn generate_advances_counter() {
        let mut core = ChaCha12Core::from_seed([0u8; 32]);
        let mut a = [0u32; BUF_WORDS];
        let mut b = [0u32; BUF_WORDS];
        core.generate(&mut a);
        core.generate(&mut b);
        assert_ne!(a, b);
        // Second buffer's first block must equal block counter 4.
        let direct = run_block(&[0u32; 8], 4, 0, 12);
        assert_eq!(&b[..16], &direct[..]);
    }
}
