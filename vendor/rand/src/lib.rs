//! Offline shim of the `rand` crate (0.8 API subset).
//!
//! Implements exactly what this workspace uses: [`rngs::StdRng`] (a
//! ChaCha12 generator, stream-compatible with `rand 0.8`'s `StdRng`),
//! [`SeedableRng::seed_from_u64`] with `rand_core 0.6`'s PCG-based seed
//! expansion, and the `Rng` methods `gen`, `gen_range` and `gen_bool` with
//! the same sampling algorithms as `rand 0.8.5` (widening-multiply rejection
//! for integers, 53-bit mantissa floats, 64-bit fixed-point Bernoulli).
//! Seeded experiment campaigns therefore reproduce the same streams as the
//! original dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

mod chacha;
mod distributions;

pub use distributions::{SampleRange, SampleStandard};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with the same
    /// PCG-based routine as `rand_core 0.6`.
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6 `seed_from_u64`: PCG32 output fills the seed.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // rand 0.8 Bernoulli: 64-bit fixed-point threshold comparison.
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        if p == 1.0 {
            // rand's Bernoulli(1.0) never consumes randomness.
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs, (0..32).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(5..15);
            assert!((5..15).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn gen_produces_all_byte_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.gen::<u8>() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.gen_range(5..5);
    }
}
