//! Offline shim of `criterion`.
//!
//! Keeps the bench-definition API (`criterion_group!`, `criterion_main!`,
//! benchmark groups, `Bencher::iter`) so the workspace's benches compile and
//! run without the real crate. Measurement is deliberately simple: each
//! benchmark runs a short warm-up followed by a fixed number of timed
//! samples and prints the mean wall-clock time per iteration. No statistics,
//! plots or comparison reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, &mut f);
        self
    }
}

/// A named identifier for a parameterized benchmark.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

/// Throughput annotation for a group (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the group's throughput (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.rendered, self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to bench closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running one warm-up plus the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.total.as_nanos() / u128::from(b.iters);
        println!("  {name}: {per_iter} ns/iter ({} samples)", b.iters);
    } else {
        println!("  {name}: no iterations recorded");
    }
}

/// Bundles benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
