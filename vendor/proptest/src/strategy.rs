//! Strategy trait and combinators.

use crate::{Arbitrary, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T: Arbitrary>(pub(crate) std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == hi {
            lo
        } else {
            // The endpoint has measure zero; sampling the half-open range is
            // indistinguishable in practice.
            rng.gen_range(lo..hi)
        }
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
        )
    }
}

/// A weighted arm of a [`OneOf`] union.
type WeightedArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

/// Weighted union of strategies; built by the [`crate::prop_oneof!`] macro.
pub struct OneOf<T> {
    arms: Vec<WeightedArm<T>>,
    total: u32,
}

impl<T> OneOf<T> {
    /// An empty union (drawing from it panics until an arm is added).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        OneOf {
            arms: Vec::new(),
            total: 0,
        }
    }

    /// Adds an arm with the given weight.
    pub fn with<S>(mut self, weight: u32, strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        assert!(weight > 0, "prop_oneof! arm weight must be positive");
        self.arms
            .push((weight, Box::new(move |rng| strategy.new_value(rng))));
        self.total += weight;
        self
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(self.total > 0, "prop_oneof! needs at least one arm");
        let mut pick = rng.gen_range(0..self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick within total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneof_respects_weights() {
        let s = crate::prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::deterministic("oneof_respects_weights");
        let trues = (0..1_000).filter(|_| s.new_value(&mut rng)).count();
        assert!((800..=990).contains(&trues), "trues {trues}");
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (0u32..4, Just(10u32)).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::deterministic("map_and_tuple_compose");
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((10..14).contains(&v));
        }
    }
}
