//! Offline shim of `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with a
//! `proptest_config` attribute, `Strategy` + `prop_map`, `Just`, `any`,
//! range and tuple strategies, `collection::vec`, weighted `prop_oneof!`,
//! and the `prop_assert*` / `prop_assume!` macros. Test inputs are drawn
//! from a generator seeded deterministically from the test's module path
//! and name, so failures reproduce across runs. Unlike real proptest there
//! is no shrinking and no regression-file persistence: a failing case
//! panics with the assertion message directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Marker returned (via `Err`) when `prop_assume!` rejects a case.
pub struct TestCaseReject;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test identifier (FNV-1a over the name),
    /// so every run of the same test draws the same inputs.
    pub fn deterministic(test_id: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Samples uniformly from a range (used by size selection).
    pub fn usize_in(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        if lo >= hi_inclusive {
            return lo;
        }
        self.0.gen_range(lo..=hi_inclusive)
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Types with a canonical strategy, targeted by [`prelude::any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias ~6% of draws toward the edge values real proptest
                // overweights; otherwise uniform over the full domain.
                match rng.next_u32() % 16 {
                    0 => <$ty>::MIN,
                    1 => <$ty>::MAX,
                    _ => rng.gen(),
                }
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.next_u32() % 16 {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            _ => {
                let v: f64 = rng.gen();
                (v - 0.5) * 2.0e6
            }
        }
    }
}

/// Everything a `proptest!` test module typically imports.
pub mod prelude {
    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Arbitrary,
        ProptestConfig, TestRng,
    };

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Rejects the current case (resampled without counting) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new()$(.with($weight as u32, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new()$(.with(1u32, $strat))+
    };
}

/// Declares property tests: each `fn` draws its arguments from the given
/// strategies and runs `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    ::std::assert!(
                        attempts <= config.cases.saturating_mul(20).saturating_add(100),
                        "prop_assume! rejected too many cases in {}",
                        stringify!($name),
                    );
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseReject> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}
