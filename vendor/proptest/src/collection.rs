//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec()`]: an exact size or a size range.
pub trait IntoSizeRange {
    /// Lower and upper (inclusive) bounds on the length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.min, self.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Builds a strategy for vectors of `element` values with a length drawn
/// from `size` (an exact `usize` or a `usize` range).
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::any;

    #[test]
    fn vec_sizes_respect_bounds() {
        let s = vec(any::<bool>(), 2..5);
        let mut rng = TestRng::deterministic("vec_sizes_respect_bounds");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen.insert(v.len());
        }
        assert_eq!(seen.len(), 3, "all sizes hit: {seen:?}");
        let exact = vec(any::<u8>(), 3usize);
        assert_eq!(exact.new_value(&mut rng).len(), 3);
    }
}
