//! The α-count fault filter (Bondavalli et al., the paper's refs \[5, 6\]).
//!
//! α-count is the count-and-threshold mechanism the paper's
//! penalty/reward algorithm generalizes. One real-valued score per node:
//!
//! ```text
//! α(t) = α(t-1) + 1    if the node was judged faulty at round t
//! α(t) = α(t-1) · K    otherwise                (0 ≤ K < 1)
//! ```
//!
//! The node is isolated when `α ≥ α_T`. The decay factor `K` plays the role
//! of the paper's reward threshold `R` (memory of past faults), `α_T` plays
//! the role of `P` — but with one knob fewer: the *rate* of forgetting and
//! the *amount* of tolerated correlated faults cannot be tuned
//! independently, and there is no per-node criticality weighting. The
//! comparison benches quantify the consequences on the paper's scenarios.

use serde::{Deserialize, Serialize};

use tt_sim::NodeId;

/// α-count state for all nodes of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlphaCount {
    scores: Vec<f64>,
    k: f64,
    threshold: f64,
    active: Vec<bool>,
}

impl AlphaCount {
    /// Creates an α-count filter for `n` nodes with decay `k` (in `[0, 1)`)
    /// and isolation threshold `threshold` (> 0).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `[0, 1)` or `threshold` is not positive.
    pub fn new(n: usize, k: f64, threshold: f64) -> Self {
        assert!((0.0..1.0).contains(&k), "decay factor out of range: {k}");
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "invalid threshold: {threshold}"
        );
        AlphaCount {
            scores: vec![0.0; n],
            k,
            threshold,
            active: vec![true; n],
        }
    }

    /// Applies one health vector (`true` = healthy); returns the nodes
    /// newly isolated by this update.
    pub fn update(&mut self, health: &[bool]) -> Vec<NodeId> {
        assert_eq!(health.len(), self.scores.len(), "health vector size");
        let mut newly = Vec::new();
        for (i, &ok) in health.iter().enumerate() {
            if !self.active[i] {
                continue;
            }
            if ok {
                self.scores[i] *= self.k;
            } else {
                self.scores[i] += 1.0;
                if self.scores[i] >= self.threshold {
                    self.active[i] = false;
                    newly.push(NodeId::from_slot(i));
                }
            }
        }
        newly
    }

    /// The current score of `node`.
    pub fn score(&self, node: NodeId) -> f64 {
        self.scores[node.index()]
    }

    /// Whether `node` is still active.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active[node.index()]
    }

    /// The decay factor `K`.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The isolation threshold `α_T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The steady-state score, measured right after a fault, of a node
    /// failing exactly once every `period` rounds (so the score decays
    /// `period - 1` times between faults): `α* = 1 / (1 - K^(period-1))` —
    /// the analytic handle used when tuning `K` to correlate intermittent
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if `period < 2` (an always-faulty node never decays).
    pub fn steady_state_score(k: f64, period: u64) -> f64 {
        assert!(period >= 2, "period must leave room for decay");
        1.0 / (1.0 - k.powi(period as i32 - 1))
    }

    /// The largest decay factor that *fails to correlate* (stays below the
    /// threshold forever) faults recurring every `period` rounds — the
    /// α-count analogue of choosing the reward threshold `R` in Fig. 3.
    ///
    /// # Panics
    ///
    /// Panics if `period < 2`.
    pub fn max_uncorrelating_k(threshold: f64, period: u64) -> f64 {
        assert!(period >= 2, "period must leave room for decay");
        // α* = 1 / (1 - K^(p-1)) < α_T  ⇔  K < (1 - 1/α_T)^(1/(p-1))
        (1.0 - 1.0 / threshold).powf(1.0 / (period - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_grow_on_faults_and_decay_on_health() {
        let mut a = AlphaCount::new(3, 0.5, 10.0);
        a.update(&[false, true, true]);
        assert_eq!(a.score(NodeId::new(1)), 1.0);
        a.update(&[true, true, true]);
        assert_eq!(a.score(NodeId::new(1)), 0.5);
        assert_eq!(a.score(NodeId::new(2)), 0.0);
    }

    #[test]
    fn threshold_isolates() {
        let mut a = AlphaCount::new(2, 0.9, 3.0);
        assert!(a.update(&[false, true]).is_empty());
        assert!(a.update(&[false, true]).is_empty());
        // Third consecutive fault: score 0.9*... grows past 3? 1, 1.9... no:
        // consecutive faults add 1 with no decay: 1, 2, 3 >= 3 -> isolate.
        let newly = a.update(&[false, true]);
        assert_eq!(newly, vec![NodeId::new(1)]);
        assert!(!a.is_active(NodeId::new(1)));
        assert!(a.is_active(NodeId::new(2)));
        // Frozen nodes stop accumulating.
        let before = a.score(NodeId::new(1));
        a.update(&[false, true]);
        assert_eq!(a.score(NodeId::new(1)), before);
    }

    #[test]
    fn k_zero_degenerates_to_consecutive_counting() {
        // K = 0 forgets instantly: equivalent to p/r with R = 1.
        let mut a = AlphaCount::new(1, 0.0, 2.0);
        a.update(&[false]);
        a.update(&[true]);
        assert_eq!(a.score(NodeId::new(1)), 0.0);
        a.update(&[false]);
        let newly = a.update(&[false]);
        assert_eq!(newly, vec![NodeId::new(1)]);
    }

    #[test]
    fn steady_state_matches_simulation() {
        let k: f64 = 0.9;
        let period = 7u64;
        let mut a = AlphaCount::new(1, k, f64::INFINITY.min(1e12));
        // Hammer the recurrence long enough to converge.
        for round in 0..10_000u64 {
            let faulty = round % period == 0;
            a.update(&[!faulty]);
        }
        // Score right after a fault approaches the steady state.
        let mut just_after = 0.0;
        for round in 10_000..10_000 + period {
            let faulty = round % period == 0;
            a.update(&[!faulty]);
            if faulty {
                just_after = a.score(NodeId::new(1));
            }
        }
        let predicted = AlphaCount::steady_state_score(k, period);
        assert!(
            (just_after - predicted).abs() < 1e-6,
            "sim {just_after} vs analytic {predicted}"
        );
    }

    #[test]
    fn max_uncorrelating_k_is_tight() {
        let threshold = 10.0;
        let period = 5;
        let k_max = AlphaCount::max_uncorrelating_k(threshold, period);
        assert!(AlphaCount::steady_state_score(k_max * 0.999, period) < threshold);
        assert!(AlphaCount::steady_state_score(k_max * 1.001, period) > threshold);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn rejects_bad_k() {
        let _ = AlphaCount::new(1, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid threshold")]
    fn rejects_bad_threshold() {
        let _ = AlphaCount::new(1, 0.5, 0.0);
    }
}
