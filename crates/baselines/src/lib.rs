//! # tt-baselines — the protocols the paper compares against
//!
//! The paper positions its add-on protocol against two families of prior
//! work (Sec. 2); both are implemented here so the comparisons in the
//! evaluation harness run against real code rather than citations:
//!
//! * [`ttpc`] — a TTP/C-style **built-in membership protocol** in the
//!   tradition of Kopetz & Grünsteidl \[2\] and Bauer & Paulitsch \[14\]:
//!   membership agreement enforced per frame, accept/reject clique
//!   counters, immediate exclusion and node freeze. It relies on the
//!   **single-fault assumption** and reacts to transients by killing
//!   (restarting) nodes — the two weaknesses the paper's protocol is
//!   designed to remove.
//! * [`alpha`] — the **α-count** fault-filtering mechanism of Bondavalli
//!   et al. \[5, 6\], the count-and-threshold ancestor of the paper's
//!   penalty/reward algorithm: a single exponentially-decayed score per
//!   node instead of the p/r pair of counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod ttpc;

pub use alpha::AlphaCount;
pub use ttpc::{TtpcCluster, TtpcNodeState};
