//! A TTP/C-style built-in membership protocol (the paper's refs \[2, 14\]).
//!
//! This is the baseline the paper positions itself against: membership is a
//! *system-level* feature, agreement is enforced per frame, and the design
//! rests on the **single-fault assumption**. The model implemented here
//! follows Bauer & Paulitsch's description of TTP/C membership with clique
//! avoidance:
//!
//! * each frame carries the sender's **membership view** (in real TTP/C it
//!   is folded into the CRC, so a disagreeing view makes the frame
//!   undecodable; we carry the `N` bits explicitly and compare);
//! * a receiver that gets an invalid frame or a frame with a disagreeing
//!   view from a *member* **removes the sender** from its local membership
//!   and counts the frame as *failed* (`fc`); an agreeing member frame
//!   counts as *accepted* (`ac`); slots of non-members are not expected to
//!   carry traffic and are ignored entirely;
//! * **clique avoidance**: before its own sending slot a node checks its
//!   counters over the last round; it may transmit only if it accepted a
//!   strict majority of the member frames (`ac > fc`) — otherwise it must
//!   assume it sits in a minority clique and **freezes** (stops
//!   transmitting; a real controller would restart).
//!
//! The known consequences — faithfully reproduced by the tests — are what
//! the paper criticizes (Sec. 2, Sec. 9):
//!
//! * a *transient* fault costs the affected node its life immediately: any
//!   externally caused send omission gets the sender excluded and frozen,
//!   and a bus-wide transient (blackout) freezes **every** node;
//! * coincident faults outside the single-fault hypothesis can cascade
//!   through the clique avoidance and destroy the entire (healthy) cluster
//!   (see `clique_split_destroys_the_cluster`);
//! * there is no notion of fault persistence: no penalty/reward filtering,
//!   no criticality weighting, no tunability.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use tt_sim::{apply_effect, FaultPipeline, NodeId, Reception, RoundIndex, SlotEffect, TxCtx};

use tt_core::syndrome::Syndrome;

/// Lifecycle state of a TTP/C-style node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TtpcNodeState {
    /// Participating normally.
    Active,
    /// Frozen by clique avoidance (a real controller would restart); the
    /// slot at which it froze is recorded.
    Frozen {
        /// Absolute slot at which the node froze.
        at_slot: u64,
    },
}

/// Per-node protocol state.
#[derive(Debug, Clone)]
struct TtpcNode {
    index: usize,
    n: usize,
    membership: Vec<bool>,
    /// Accepted frames since the node's last sending slot (incl. own).
    ac: u32,
    /// Failed/rejected frames since the node's last sending slot.
    fc: u32,
    state: TtpcNodeState,
    /// (absolute slot, removed node) history, for latency assertions.
    removals: Vec<(u64, NodeId)>,
}

impl TtpcNode {
    fn new(index: usize, n: usize) -> Self {
        TtpcNode {
            index,
            n,
            membership: vec![true; n],
            ac: 1, // own frame counts as accepted
            fc: 0,
            state: TtpcNodeState::Active,
            removals: Vec::new(),
        }
    }

    fn remove(&mut self, abs: u64, x: usize) {
        if self.membership[x] {
            self.membership[x] = false;
            self.removals.push((abs, NodeId::from_slot(x)));
        }
    }

    /// Processes the reception of the slot of sender `s` at `abs`.
    fn on_slot(&mut self, abs: u64, s: usize, reception: &Reception) {
        if s == self.index {
            return; // own slot handled in `before_send`
        }
        if !self.membership[s] {
            return; // no frame is expected from a non-member: slot ignored
        }
        match reception {
            Reception::Valid(payload) => {
                let view = Syndrome::decode(payload, self.n);
                let agrees = (0..self.n).all(|j| view.get(j) == self.membership[j]);
                if agrees {
                    self.ac += 1;
                } else {
                    self.fc += 1;
                    self.remove(abs, s);
                }
            }
            Reception::Detected => {
                self.fc += 1;
                self.remove(abs, s);
            }
        }
    }

    /// Clique-avoidance check before the node's own transmission; returns
    /// the frame to send, or `None` if the node froze (or already was).
    fn before_send(&mut self, abs: u64) -> Option<Bytes> {
        if self.state != TtpcNodeState::Active {
            return None;
        }
        if self.ac <= self.fc {
            // No strict majority of agreeing member frames: minority
            // clique. Freeze (ties freeze too — the node cannot prove it
            // sits in the majority).
            self.state = TtpcNodeState::Frozen { at_slot: abs };
            self.remove(abs, self.index);
            return None;
        }
        self.ac = 1;
        self.fc = 0;
        Some(Syndrome::from_bits(self.membership.clone()).encode())
    }
}

/// A cluster running the TTP/C-style membership baseline.
///
/// ```
/// use tt_baselines::TtpcCluster;
/// use tt_sim::{NodeId, RoundIndex, SlotEffect, TxCtx};
///
/// // Node 2's send fails once in round 5.
/// let fault = |ctx: &TxCtx| {
///     if ctx.round == RoundIndex::new(5) && ctx.sender == NodeId::new(2) {
///         SlotEffect::Benign
///     } else {
///         SlotEffect::Correct
///     }
/// };
/// let mut cluster = TtpcCluster::new(4, Box::new(fault));
/// cluster.run_rounds(8);
/// // One transient omission and the sender is gone — no p/r filtering.
/// assert!(!cluster.membership(NodeId::new(1)).contains(&NodeId::new(2)));
/// assert!(cluster.is_frozen(NodeId::new(2)));
/// ```
pub struct TtpcCluster {
    n: usize,
    nodes: Vec<TtpcNode>,
    pipeline: Box<dyn FaultPipeline>,
    abs: u64,
}

impl std::fmt::Debug for TtpcCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TtpcCluster")
            .field("n", &self.n)
            .field("abs_slot", &self.abs)
            .finish()
    }
}

impl TtpcCluster {
    /// Creates an `n`-node cluster with full initial membership.
    pub fn new(n: usize, pipeline: Box<dyn FaultPipeline>) -> Self {
        TtpcCluster {
            n,
            nodes: (0..n).map(|i| TtpcNode::new(i, n)).collect(),
            pipeline,
            abs: 0,
        }
    }

    /// Executes one sending slot.
    pub fn run_slot(&mut self) {
        let abs = self.abs;
        let n = self.n;
        let s = (abs % n as u64) as usize;
        let sender = NodeId::from_slot(s);
        let frame = self.nodes[s].before_send(abs);
        let ctx = TxCtx {
            round: RoundIndex::new(abs / n as u64),
            sender,
            n_nodes: n,
            abs_slot: abs,
        };
        // A frozen node is silent: its slot is empty on the bus, which
        // receivers see as a missing (benign-faulty) frame.
        let effect = match frame {
            Some(_) => self.pipeline.effect(&ctx),
            None => SlotEffect::Benign,
        };
        let payload = frame.unwrap_or_default();
        let outcome = apply_effect(&effect, &ctx, &payload);
        for (rx, reception) in outcome.receptions.into_iter().enumerate() {
            self.nodes[rx].on_slot(abs, s, &reception);
        }
        self.abs += 1;
    }

    /// Executes `rounds` full TDMA rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds * self.n as u64 {
            self.run_slot();
        }
    }

    /// The current membership view of `node`.
    pub fn membership(&self, node: NodeId) -> Vec<NodeId> {
        self.nodes[node.index()]
            .membership
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId::from_slot(i))
            .collect()
    }

    /// Whether `node` has been frozen by clique avoidance.
    pub fn is_frozen(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.index()].state, TtpcNodeState::Frozen { .. })
    }

    /// The slot at which `node` froze, if it did.
    pub fn frozen_at(&self, node: NodeId) -> Option<u64> {
        match self.nodes[node.index()].state {
            TtpcNodeState::Frozen { at_slot } => Some(at_slot),
            TtpcNodeState::Active => None,
        }
    }

    /// Number of nodes still alive (not frozen).
    pub fn alive(&self) -> usize {
        (0..self.n)
            .filter(|&i| self.nodes[i].state == TtpcNodeState::Active)
            .count()
    }

    /// Removal events observed by `node`: `(absolute slot, removed)`.
    pub fn removals(&self, node: NodeId) -> &[(u64, NodeId)] {
        &self.nodes[node.index()].removals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign_at(round: u64, sender: u32) -> impl FnMut(&TxCtx) -> SlotEffect + Send {
        move |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(round) && ctx.sender == NodeId::new(sender) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        }
    }

    #[test]
    fn fault_free_run_keeps_everyone() {
        let mut c = TtpcCluster::new(4, Box::new(tt_sim::NoFaults));
        c.run_rounds(20);
        assert_eq!(c.alive(), 4);
        for id in NodeId::all(4) {
            assert_eq!(c.membership(id).len(), 4);
            assert!(c.removals(id).is_empty());
        }
    }

    #[test]
    fn single_sender_fault_detected_within_two_slots() {
        // The paper quotes 2-slot latency for sender faults: receivers
        // remove the sender the moment its slot fails.
        let mut c = TtpcCluster::new(4, Box::new(benign_at(5, 2)));
        c.run_rounds(8);
        let fault_abs = 5 * 4 + 1;
        for id in [1u32, 3, 4] {
            let m = c.membership(NodeId::new(id));
            assert!(!m.contains(&NodeId::new(2)), "node {id}");
            let (at, who) = c.removals(NodeId::new(id))[0];
            assert_eq!(who, NodeId::new(2));
            assert_eq!(at, fault_abs, "removed in the faulty slot itself");
        }
        // The (transiently!) faulty sender freezes at its next own slot —
        // the availability cost the paper's p/r algorithm avoids.
        assert!(c.is_frozen(NodeId::new(2)));
        assert_eq!(c.frozen_at(NodeId::new(2)), Some(fault_abs + 4));
        assert_eq!(c.alive(), 3);
    }

    #[test]
    fn asymmetric_receive_fault_resolved_by_clique_avoidance() {
        // Node 3 alone misses node 1's frame in round 5: it removes node 1,
        // disagrees with everyone afterwards, and must freeze within two
        // rounds (the paper's quoted receiver-fault latency).
        let pipeline = |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(5) && ctx.sender == NodeId::new(1) {
                SlotEffect::Asymmetric {
                    detected_by: vec![2],
                    collision_ok: true,
                }
            } else {
                SlotEffect::Correct
            }
        };
        let mut c = TtpcCluster::new(4, Box::new(pipeline));
        c.run_rounds(9);
        assert!(c.is_frozen(NodeId::new(3)), "minority clique frozen");
        let frozen_at = c.frozen_at(NodeId::new(3)).unwrap();
        assert!(frozen_at <= 5 * 4 + 2 * 4, "within two rounds");
        // The survivors keep a consistent 3-node membership.
        for id in [1u32, 2, 4] {
            let m = c.membership(NodeId::new(id));
            assert!(!m.contains(&NodeId::new(3)), "node {id}");
            assert!(m.contains(&NodeId::new(1)));
        }
        assert_eq!(c.alive(), 3);
    }

    #[test]
    fn clique_split_destroys_the_cluster() {
        // Outside the single-fault hypothesis: node 4's frame in round 5 is
        // asymmetrically missed by the *majority* of the receivers (nodes 2
        // and 3). The membership views split into cliques {1, 4} and
        // {2, 3}; with no side holding a strict majority the clique
        // avoidance cascades and freezes every single (healthy!) node.
        // Under the same fault the paper's membership protocol installs a
        // consistent 3-node view (see tt-core's
        // `view_synchrony_larger_clique_survives`) — the quantitative
        // content of the related-work comparison.
        let pipeline = |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(5) && ctx.sender == NodeId::new(4) {
                SlotEffect::Asymmetric {
                    detected_by: vec![1, 2],
                    collision_ok: true,
                }
            } else {
                SlotEffect::Correct
            }
        };
        let mut c = TtpcCluster::new(4, Box::new(pipeline));
        c.run_rounds(10);
        assert_eq!(c.alive(), 0, "2-2 split: every healthy node frozen");
        for id in NodeId::all(4) {
            assert!(c.is_frozen(id), "{id}");
        }
    }

    #[test]
    fn blackout_kills_the_whole_cluster() {
        // One full TDMA round lost: every node rejects every frame, so
        // every node freezes — "a single abnormal transient period would
        // result in the isolation of all the nodes in the system and would
        // entail a restart of the whole system" (paper Sec. 9). The add-on
        // protocol survives this (Lemma 3 + p/r filtering).
        let pipeline = |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(5) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let mut c = TtpcCluster::new(4, Box::new(pipeline));
        c.run_rounds(8);
        assert_eq!(c.alive(), 0);
    }

    #[test]
    fn frozen_nodes_stay_silent() {
        let mut c = TtpcCluster::new(4, Box::new(benign_at(5, 2)));
        c.run_rounds(20);
        assert!(c.is_frozen(NodeId::new(2)));
        // Long after the transient, the node is still gone: no recovery
        // path short of a restart.
        assert_eq!(c.alive(), 3);
        assert!(!c.membership(NodeId::new(1)).contains(&NodeId::new(2)));
    }

    #[test]
    fn larger_clusters_survive_single_faults() {
        for n in [3usize, 6, 10] {
            let mut c = TtpcCluster::new(n, Box::new(benign_at(4, 1)));
            c.run_rounds(8);
            assert_eq!(c.alive(), n - 1, "n = {n}");
        }
    }
}
