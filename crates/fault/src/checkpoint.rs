//! Atomic checkpoint/resume snapshots for campaigns and the explorer.
//!
//! A 100k-round soak or explorer session interrupted at 99% should not
//! restart from zero. Checkpoints capture everything a run needs to
//! continue *byte-identically to an uninterrupted run*:
//!
//! * a campaign checkpoint records the completed experiment outcomes (by
//!   deterministic work-list index), the quarantine records and the retry
//!   count — experiments are independent and seeded per index, so the
//!   missing indices can be re-run in any order;
//! * an explorer checkpoint additionally records the coverage set, the
//!   mutation frontier, the not-yet-executed seed schedules and the exact
//!   RNG stream position ([`RngState`]) — the resumed generator continues
//!   drawing the same schedules the uninterrupted run would have drawn.
//!
//! Snapshots are written atomically (temp file + rename in the target
//! directory), so a crash mid-write leaves the previous checkpoint intact
//! rather than a torn file.

use std::io;
use std::path::{Path, PathBuf};

use rand::rngs::{StdRng, StdRngState};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use crate::campaign::{ExperimentClass, ExperimentOutcome};
use crate::explore::{ExploreConfig, ExploreReport, FaultSchedule};
use crate::harness::QuarantineRecord;

/// Version tag embedded in every checkpoint; bumped on incompatible
/// format changes so a resume never silently misreads an old snapshot.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The serializable form of an [`StdRng`] stream position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// ChaCha key words (always exactly 8; a `Vec` only because the
    /// vendored serde shim has no fixed-size array support).
    pub key: Vec<u32>,
    /// Block counter of the buffered block run.
    pub counter: u64,
    /// ChaCha stream id.
    pub stream: u64,
    /// Read position in the buffered words.
    pub index: u64,
}

impl RngState {
    /// Captures `rng`'s exact position.
    pub fn capture(rng: &StdRng) -> Self {
        let s = rng.save_state();
        RngState {
            key: s.key.to_vec(),
            counter: s.counter,
            stream: s.stream,
            index: s.index as u64,
        }
    }

    /// Rebuilds a generator continuing the captured stream exactly.
    /// A malformed key (wrong word count) restores as an all-zero key
    /// rather than panicking; [`RngState::is_well_formed`] lets callers
    /// reject such snapshots up front.
    pub fn restore(&self) -> StdRng {
        let mut key = [0u32; 8];
        if self.is_well_formed() {
            key.copy_from_slice(&self.key);
        }
        StdRng::restore_state(&StdRngState {
            key,
            counter: self.counter,
            stream: self.stream,
            index: self.index as usize,
        })
    }

    /// Whether the snapshot carries a structurally valid key.
    pub fn is_well_formed(&self) -> bool {
        self.key.len() == 8
    }
}

/// Progress snapshot of a (possibly supervised) experiment campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Cluster size of the campaign.
    pub n: usize,
    /// Repetitions per class.
    pub reps: u64,
    /// The campaign's base seed.
    pub base_seed: u64,
    /// The experiment classes, in work-list order.
    pub classes: Vec<ExperimentClass>,
    /// Completed outcomes, keyed by work-list index, sorted by index.
    pub completed: Vec<(usize, ExperimentOutcome)>,
    /// Experiments quarantined so far (terminal — not re-run on resume).
    pub quarantined: Vec<QuarantineRecord>,
    /// Retry attempts spent so far.
    pub retries: u64,
}

impl CampaignCheckpoint {
    /// An empty checkpoint for a campaign over `classes`.
    pub fn new(classes: &[ExperimentClass], n: usize, reps: u64, base_seed: u64) -> Self {
        CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            n,
            reps,
            base_seed,
            classes: classes.to_vec(),
            completed: Vec::new(),
            quarantined: Vec::new(),
            retries: 0,
        }
    }

    /// Whether this checkpoint belongs to the given campaign parameters.
    /// A resume against a mismatching checkpoint must be rejected, not
    /// silently merged.
    pub fn matches(
        &self,
        classes: &[ExperimentClass],
        n: usize,
        reps: u64,
        base_seed: u64,
    ) -> bool {
        self.version == CHECKPOINT_VERSION
            && self.n == n
            && self.reps == reps
            && self.base_seed == base_seed
            && self.classes == classes
    }

    /// Work-list indices already settled (completed or quarantined).
    pub fn settled(&self) -> impl Iterator<Item = usize> + '_ {
        self.completed
            .iter()
            .map(|(i, _)| *i)
            .chain(self.quarantined.iter().map(|q| q.item))
    }
}

/// Progress snapshot of an explorer session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The exploration parameters the session runs under.
    pub cfg: ExploreConfig,
    /// Seed schedules not yet executed (in execution order).
    pub pending: Vec<FaultSchedule>,
    /// The coverage set: every protocol-state fingerprint seen, sorted.
    pub seen: Vec<u64>,
    /// The mutation frontier, in discovery order.
    pub frontier: Vec<FaultSchedule>,
    /// The report accumulated so far (corpus, counterexamples, counters).
    pub report: ExploreReport,
    /// The generator's exact stream position.
    pub rng: RngState,
}

/// Serializes `value` as pretty-printed JSON into `path`, atomically: the
/// bytes are first written to a sibling temp file, then renamed over the
/// target, so readers only ever observe a complete snapshot.
pub fn write_json_atomic<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    json.push('\n');
    let tmp = tmp_path(path);
    std::fs::write(&tmp, json.as_bytes())?;
    std::fs::rename(&tmp, path)
}

/// Reads a JSON value previously written by [`write_json_atomic`].
pub fn read_json<T: DeserializeOwned>(path: &Path) -> io::Result<T> {
    let data = std::fs::read_to_string(path)?;
    serde_json::from_str(&data).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rng_state_roundtrips_through_serde() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let _: u64 = rng.gen();
        }
        let state = RngState::capture(&rng);
        let json = serde_json::to_string(&state).unwrap();
        let back: RngState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, back);
        let mut restored = back.restore();
        let mut original = rng;
        for _ in 0..500 {
            assert_eq!(original.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn campaign_checkpoint_matches_its_parameters() {
        let classes = crate::campaign::sec8_classes(4);
        let cp = CampaignCheckpoint::new(&classes, 4, 3, 42);
        assert!(cp.matches(&classes, 4, 3, 42));
        assert!(!cp.matches(&classes, 4, 3, 43));
        assert!(!cp.matches(&classes, 5, 3, 42));
        assert!(!cp.matches(&classes[..4], 4, 3, 42));
        assert_eq!(cp.settled().count(), 0);
    }

    #[test]
    fn atomic_write_roundtrips_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("tt-fault-checkpoint-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("cp.json");
        let classes = crate::campaign::sec8_classes(4);
        let cp = CampaignCheckpoint::new(&classes, 4, 2, 7);
        write_json_atomic(&path, &cp).unwrap();
        let back: CampaignCheckpoint = read_json(&path).unwrap();
        assert_eq!(cp, back);
        assert!(!tmp_path(&path).exists(), "temp file must be renamed away");
        // Overwrite works (checkpoint every N experiments).
        write_json_atomic(&path, &cp).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_json_reports_the_offending_path() {
        let dir = std::env::temp_dir().join("tt-fault-checkpoint-bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, b"{ not json").unwrap();
        let err = read_json::<CampaignCheckpoint>(&path).unwrap_err();
        assert!(err.to_string().contains("bad.json"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
