//! Abnormal transient scenarios (paper Table 3).
//!
//! Two "unfavorable but common scenarios in the automotive and aerospace
//! settings where external faults are highly frequent and will likely be
//! considered as intermittent faults" (Sec. 9):
//!
//! * **automotive blinking light** — an open relay causes periodic
//!   electrical instabilities: 50 bursts of 10 ms with a 500 ms time to
//!   reappearance;
//! * **aerospace lightning bolt** — a lightning strike produces a sequence
//!   of instabilities with increasing time to reappearance: one 40 ms burst
//!   reappearing after 160 ms, one after 290 ms, then nine after 500 ms.
//!
//! Times to reappearance are measured from the *end* of the previous burst
//! (this calibration reproduces the paper's Table 4 values exactly for the
//! automotive SC and aerospace rows; see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

use tt_sim::{CommunicationSchedule, Nanos};

use crate::burst::Burst;
use crate::injector::{Disturbance, DisturbanceNode};

/// One row of the paper's Table 3: a segment of identical bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSegment {
    /// Length of each burst.
    pub burst: Nanos,
    /// Time to reappearance (from the end of the previous burst).
    pub reappearance: Nanos,
    /// Number of bursts in this segment.
    pub count: u32,
}

/// A scripted sequence of bus-wide transient bursts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransientScenario {
    name: String,
    segments: Vec<BurstSegment>,
}

impl TransientScenario {
    /// Builds a scenario from explicit segments.
    pub fn new(name: impl Into<String>, segments: Vec<BurstSegment>) -> Self {
        TransientScenario {
            name: name.into(),
            segments,
        }
    }

    /// The automotive blinking-light scenario of Table 3.
    pub fn blinking_light() -> Self {
        TransientScenario::new(
            "Auto (blinking light)",
            vec![BurstSegment {
                burst: Nanos::from_millis(10),
                reappearance: Nanos::from_millis(500),
                count: 50,
            }],
        )
    }

    /// The aerospace lightning-bolt scenario of Table 3.
    pub fn lightning_bolt() -> Self {
        TransientScenario::new(
            "Aero (lightning bolt)",
            vec![
                BurstSegment {
                    burst: Nanos::from_millis(40),
                    reappearance: Nanos::from_millis(160),
                    count: 1,
                },
                BurstSegment {
                    burst: Nanos::from_millis(40),
                    reappearance: Nanos::from_millis(290),
                    count: 1,
                },
                BurstSegment {
                    burst: Nanos::from_millis(40),
                    reappearance: Nanos::from_millis(500),
                    count: 9,
                },
            ],
        )
    }

    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's segments (the rows of Table 3).
    pub fn segments(&self) -> &[BurstSegment] {
        &self.segments
    }

    /// Materializes the burst start times and lengths, beginning at
    /// `offset`. A segment's `reappearance` is the time from the end of
    /// each of its bursts to the start of the *next* burst: burst 1 ends,
    /// 160 ms pass, burst 2 runs, 290 ms pass, burst 3 runs, then nine more
    /// bursts each separated by 500 ms (lightning-bolt reading of Table 3).
    pub fn bursts(&self, offset: Nanos) -> Vec<(Nanos, Nanos)> {
        let mut out = Vec::new();
        let mut t = offset;
        for seg in &self.segments {
            for _ in 0..seg.count {
                out.push((t, seg.burst));
                t = t + seg.burst + seg.reappearance;
            }
        }
        out
    }

    /// Total duration from `offset` to the end of the last burst.
    pub fn duration(&self, offset: Nanos) -> Nanos {
        self.bursts(offset)
            .last()
            .map(|&(start, len)| start + len)
            .unwrap_or(offset)
    }

    /// Total number of bursts.
    pub fn burst_count(&self) -> u32 {
        self.segments.iter().map(|s| s.count).sum()
    }

    /// Installs the scenario's bursts into a [`DisturbanceNode`].
    pub fn install(
        &self,
        node: DisturbanceNode,
        sched: &CommunicationSchedule,
        offset: Nanos,
    ) -> DisturbanceNode {
        let mut node = node;
        for (start, len) in self.bursts(offset) {
            node.push(Burst::from_time(sched, start, len));
        }
        node
    }

    /// A scripted [`Disturbance`] equivalent (for composition).
    pub fn to_disturbance(
        &self,
        sched: &CommunicationSchedule,
        offset: Nanos,
    ) -> ScenarioDisturbance {
        ScenarioDisturbance {
            bursts: self
                .bursts(offset)
                .into_iter()
                .map(|(s, l)| Burst::from_time(sched, s, l))
                .collect(),
        }
    }
}

/// A [`Disturbance`] replaying a [`TransientScenario`]'s bursts.
#[derive(Debug, Clone)]
pub struct ScenarioDisturbance {
    bursts: Vec<Burst>,
}

impl Disturbance for ScenarioDisturbance {
    fn effect(
        &mut self,
        ctx: &tt_sim::TxCtx,
        _rng: &mut rand::rngs::StdRng,
    ) -> Option<tt_sim::SlotEffect> {
        self.bursts
            .iter()
            .any(|b| b.covers(ctx.abs_slot))
            .then_some(tt_sim::SlotEffect::Benign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blinking_light_matches_table3() {
        let s = TransientScenario::blinking_light();
        assert_eq!(s.burst_count(), 50);
        let bursts = s.bursts(Nanos::ZERO);
        assert_eq!(bursts.len(), 50);
        assert_eq!(bursts[0], (Nanos::ZERO, Nanos::from_millis(10)));
        // Period = burst + reappearance = 510 ms (reappearance from end).
        assert_eq!(bursts[1].0, Nanos::from_millis(510));
        assert_eq!(bursts[49].0, Nanos::from_millis(510 * 49));
    }

    #[test]
    fn lightning_bolt_matches_table3() {
        let s = TransientScenario::lightning_bolt();
        assert_eq!(s.burst_count(), 11);
        let b = s.bursts(Nanos::ZERO);
        assert_eq!(b[0], (Nanos::ZERO, Nanos::from_millis(40)));
        // Second burst 160 ms after the first ends: 40 + 160 = 200 ms.
        assert_eq!(b[1].0, Nanos::from_millis(200));
        // Third 290 ms after the second ends: 240 + 290 = 530 ms.
        assert_eq!(b[2].0, Nanos::from_millis(530));
        // Fourth (first of the 500 ms segment): 570 + 500 = 1070 ms.
        assert_eq!(b[3].0, Nanos::from_millis(1070));
        assert_eq!(b.len(), 11);
    }

    #[test]
    fn duration_covers_last_burst() {
        let s = TransientScenario::blinking_light();
        assert_eq!(s.duration(Nanos::ZERO), Nanos::from_millis(510 * 49 + 10));
    }

    #[test]
    fn offset_shifts_everything() {
        let s = TransientScenario::lightning_bolt();
        let b0 = s.bursts(Nanos::ZERO);
        let b1 = s.bursts(Nanos::from_millis(100));
        for (a, b) in b0.iter().zip(&b1) {
            assert_eq!(a.0 + Nanos::from_millis(100), b.0);
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn install_produces_faulty_slots() {
        use tt_sim::{ClusterBuilder, TraceMode};
        let sched = CommunicationSchedule::new(4, Nanos::from_millis_f64(2.5)).unwrap();
        let s = TransientScenario::blinking_light();
        let node = s.install(DisturbanceNode::new(0), &sched, Nanos::ZERO);
        let mut cluster = ClusterBuilder::new(4)
            .trace_mode(TraceMode::Anomalies)
            .build(Box::new(node))
            .unwrap();
        // First burst: 10 ms = 4 rounds = 16 slots, all benign.
        cluster.run_rounds(4);
        assert_eq!(cluster.trace().records().len(), 16);
        // Gap until 510 ms: nothing more.
        cluster.run_rounds(100);
        assert_eq!(cluster.trace().records().len(), 16);
    }
}
