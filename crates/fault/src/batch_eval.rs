//! Batched (lockstep) evaluation of [`FaultSchedule`]s.
//!
//! [`execute_schedules_batched`] runs a whole slate of schedules as lanes
//! of one [`tt_sim::BatchCluster`] driven by a [`tt_core::BatchDiagJob`]
//! and returns each schedule's protocol-state fingerprint stream — the
//! same stream [`execute_schedule`](crate::explore::execute_schedule)
//! derives from a scalar run, byte for byte. The explorer's
//! generation-at-a-time mode ([`crate::explore::Explorer::step_generation`])
//! uses it to triage candidate mutations by novelty before spending scalar
//! executions (with their full oracle stack) on the interesting ones, and
//! the batched campaign uses the same conversion for its lockstep workers.
//!
//! Schedules may differ in round budget and Alg. 2 thresholds (those are
//! per-lane); schedules of different cluster sizes are grouped into one
//! batch per size. Fault *effects* convert exactly: a malicious payload
//! byte becomes the accusation mask the scalar receivers would decode from
//! it, so lane syndromes match scalar interface variables bit for bit.

use std::collections::BTreeMap;

use tt_core::{BatchDiagJob, BatchLaneParams, Syndrome};
use tt_sim::{BatchCluster, BatchFaultPlan, LaneEffect, LaneFault, SimError};

use crate::explore::{FaultSchedule, ScheduledClass};

/// The per-lane Alg. 2 thresholds a schedule runs under.
pub fn lane_params(schedule: &FaultSchedule) -> BatchLaneParams {
    BatchLaneParams {
        penalty_threshold: schedule.penalty_threshold,
        reward_threshold: schedule.reward_threshold,
    }
}

/// Converts a schedule's fault list into a lane fault plan with identical
/// first-match-wins semantics and bus effects.
///
/// A malicious payload byte is pre-decoded into the syndrome mask every
/// scalar receiver would extract from it ([`Syndrome::decode`]). A
/// degenerate `stride == 0` (which the explorer never produces and the
/// scalar executor rejects with a division panic) is clamped to 1.
pub fn lane_plan(schedule: &FaultSchedule) -> BatchFaultPlan {
    let n = schedule.n;
    BatchFaultPlan::new(
        schedule
            .faults
            .iter()
            .map(|f| LaneFault {
                slot: (f.node - 1) as usize,
                first_round: f.round,
                hits: f.hits,
                stride: f.stride.max(1),
                effect: match &f.class {
                    ScheduledClass::Benign => LaneEffect::Benign,
                    ScheduledClass::Malicious { payload } => LaneEffect::Malicious {
                        mask: decode_mask(*payload, n),
                    },
                    ScheduledClass::Asymmetric { detected_by } => LaneEffect::Asymmetric {
                        detected_by: detected_by
                            .iter()
                            .filter(|&&i| i < n)
                            .fold(0u64, |m, &i| m | (1u64 << i)),
                        collision_ok: true,
                    },
                },
            })
            .collect(),
    )
}

/// The accusation mask scalar receivers decode from a malicious payload
/// byte.
fn decode_mask(payload: u8, n: usize) -> u64 {
    let syn = Syndrome::decode(&[payload], n);
    (0..n).fold(0u64, |m, j| m | (u64::from(syn.get(j)) << j))
}

/// Executes every schedule through the lockstep engine and returns its
/// fingerprint stream, in input order. Schedules are grouped by cluster
/// size into one batch each; lanes retire individually when their round
/// budget is spent.
///
/// The streams are byte-identical to the scalar
/// [`execute_schedule`](crate::explore::execute_schedule) fingerprints —
/// `tests/corpus_replay.rs` and the `batch_equivalence` proptest enforce
/// this on every run. Only the state streams are produced; the oracle
/// stack (Theorem 1, counter consistency, Alg. 2 invariants) stays on the
/// scalar path.
///
/// # Errors
///
/// Propagates the engine's validation errors for schedules the explorer
/// can't produce (cluster size outside `2..=64`, fault slot out of range),
/// and rejects schedules targeting a protocol variant other than
/// [`ProtocolUnderTest::Diag`](crate::explore::ProtocolUnderTest) — the
/// lockstep engine models `DiagJob` lanes only, and silently producing
/// diag fingerprints for a membership or lowlat schedule would corrupt
/// the explorer's novelty triage (the explorer itself falls back to the
/// scalar path for non-diag generations).
pub fn execute_schedules_batched(schedules: &[FaultSchedule]) -> Result<Vec<Vec<u64>>, SimError> {
    use crate::explore::ProtocolUnderTest;
    if let Some(s) = schedules
        .iter()
        .find(|s| s.protocol != ProtocolUnderTest::Diag)
    {
        return Err(SimError::InvalidConfig(format!(
            "batched evaluation is DiagJob-only; got a {} schedule",
            s.protocol.as_str()
        )));
    }
    let mut out: Vec<Vec<u64>> = vec![Vec::new(); schedules.len()];
    let mut by_n: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, s) in schedules.iter().enumerate() {
        by_n.entry(s.n).or_default().push(idx);
    }
    for (n, idxs) in by_n {
        let plans: Vec<BatchFaultPlan> = idxs.iter().map(|&i| lane_plan(&schedules[i])).collect();
        let params: Vec<BatchLaneParams> =
            idxs.iter().map(|&i| lane_params(&schedules[i])).collect();
        let rounds: Vec<u64> = idxs.iter().map(|&i| schedules[i].rounds).collect();
        let max_rounds = rounds.iter().copied().max().unwrap_or(0);
        let mut batch = BatchCluster::new(n, plans)?;
        let mut job = BatchDiagJob::new(n, &params).with_fingerprints(max_rounds);
        batch.run_lane_rounds(&rounds, &mut job);
        for (lane, &i) in idxs.iter().enumerate() {
            out[i] = job.fingerprints(lane).to_vec();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{
        execute_schedule, seeded_schedule, ExploreConfig, ProtocolUnderTest, ScheduledFault,
    };

    #[test]
    fn batched_fingerprints_match_scalar_on_random_schedules() {
        let cfg = ExploreConfig::default();
        let schedules: Vec<FaultSchedule> =
            (0..32).map(|seed| seeded_schedule(&cfg, seed)).collect();
        let batched = execute_schedules_batched(&schedules).expect("valid schedules");
        for (s, fps) in schedules.iter().zip(&batched) {
            assert_eq!(&execute_schedule(s).fingerprints, fps, "{s:?}");
        }
    }

    #[test]
    fn mixed_sizes_and_budgets_group_correctly() {
        let mut schedules = Vec::new();
        for (seed, n, rounds) in [(1u64, 4usize, 16u64), (2, 5, 24), (3, 4, 30), (4, 6, 12)] {
            let cfg = ExploreConfig {
                n,
                rounds,
                ..ExploreConfig::default()
            };
            schedules.push(seeded_schedule(&cfg, seed));
        }
        let batched = execute_schedules_batched(&schedules).expect("valid schedules");
        for (s, fps) in schedules.iter().zip(&batched) {
            assert_eq!(fps.len() as u64, s.rounds - 3, "one print per diagnosis");
            assert_eq!(&execute_schedule(s).fingerprints, fps, "{s:?}");
        }
    }

    #[test]
    fn intermittent_strides_match_scalar() {
        let s = FaultSchedule {
            n: 4,
            rounds: 20,
            penalty_threshold: 3,
            reward_threshold: 2,
            faults: vec![ScheduledFault {
                node: 2,
                round: 5,
                hits: 4,
                stride: 3,
                class: ScheduledClass::Benign,
            }],
            protocol: ProtocolUnderTest::Diag,
        };
        let batched = execute_schedules_batched(std::slice::from_ref(&s)).unwrap();
        assert_eq!(execute_schedule(&s).fingerprints, batched[0]);
    }

    #[test]
    fn variant_schedules_are_rejected_not_misfingerprinted() {
        let s = FaultSchedule {
            n: 4,
            rounds: 12,
            penalty_threshold: 3,
            reward_threshold: 2,
            faults: Vec::new(),
            protocol: ProtocolUnderTest::Membership,
        };
        let err = execute_schedules_batched(std::slice::from_ref(&s)).unwrap_err();
        assert!(err.to_string().contains("membership"), "{err}");
    }

    #[test]
    fn oversized_cluster_is_rejected_not_miscomputed() {
        let s = FaultSchedule {
            n: 65,
            rounds: 12,
            penalty_threshold: 3,
            reward_threshold: 2,
            faults: Vec::new(),
            protocol: ProtocolUnderTest::Diag,
        };
        assert!(execute_schedules_batched(std::slice::from_ref(&s)).is_err());
    }
}
