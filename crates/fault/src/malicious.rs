//! Malicious and asymmetric fault sources.
//!
//! * [`RandomSyndromeJob`] — a node whose diagnostic job disseminates
//!   *random local syndromes* (the paper's malicious-node experiment,
//!   Sec. 8). Its frames are syntactically valid, so the fault is not
//!   locally detectable: it attacks the voting, not the transport.
//! * [`AsymmetricDisturbance`] — Slightly-Off-Specification-like faults:
//!   a sender's frames are detected by a (fixed or random) strict subset of
//!   the receivers.
//! * [`CliquePartition`] — the paper's clique experiment: the disturbance
//!   node sits between one node and the rest of the cluster and disconnects
//!   the bus during other nodes' sending slots, so the victim stops
//!   receiving and becomes a minority clique.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tt_sim::{Job, JobCtx, NodeId, RoundIndex, SlotEffect, TxCtx};

use crate::injector::Disturbance;

/// A diagnostic job replaced by a malicious one: every round it writes a
/// *random* local syndrome into its outgoing interface variable.
///
/// "The effect of one malicious node sending random local syndromes was
/// also considered. Its presence is not supposed to induce the other nodes
/// to diagnose correct nodes as faulty." (paper Sec. 8)
#[derive(Debug)]
pub struct RandomSyndromeJob {
    node: NodeId,
    n: usize,
    rng: StdRng,
    sent: u64,
}

impl RandomSyndromeJob {
    /// Creates the malicious job for `node` in an `n`-node cluster.
    pub fn new(node: NodeId, n: usize, seed: u64) -> Self {
        RandomSyndromeJob {
            node,
            n,
            rng: StdRng::seed_from_u64(seed),
            sent: 0,
        }
    }

    /// The hosting (malicious) node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// How many random syndromes have been disseminated.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Job for RandomSyndromeJob {
    fn execute(&mut self, ctx: &mut JobCtx<'_>) {
        let bytes: Vec<u8> = (0..self.n.div_ceil(8)).map(|_| self.rng.gen()).collect();
        ctx.write_iface(bytes);
        self.sent += 1;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Which receivers an [`AsymmetricDisturbance`] blinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsymmetricTarget {
    /// A fixed set of receiver indices fails to receive.
    Fixed(Vec<usize>),
    /// A fresh random strict subset (at least one, not all) per slot.
    RandomSubset,
}

/// A sender whose frames are locally detected by only some receivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsymmetricDisturbance {
    sender: NodeId,
    from_round: RoundIndex,
    rounds: u64,
    target: AsymmetricTarget,
}

impl AsymmetricDisturbance {
    /// Makes `sender`'s slots asymmetric faulty for `rounds` rounds
    /// starting at `from_round`.
    pub fn new(
        sender: NodeId,
        from_round: RoundIndex,
        rounds: u64,
        target: AsymmetricTarget,
    ) -> Self {
        AsymmetricDisturbance {
            sender,
            from_round,
            rounds,
            target,
        }
    }
}

impl Disturbance for AsymmetricDisturbance {
    fn effect(&mut self, ctx: &TxCtx, rng: &mut StdRng) -> Option<SlotEffect> {
        if ctx.sender != self.sender
            || ctx.round < self.from_round
            || ctx.round.as_u64() >= self.from_round.as_u64() + self.rounds
        {
            return None;
        }
        let detected_by = match &self.target {
            AsymmetricTarget::Fixed(set) => set.clone(),
            AsymmetricTarget::RandomSubset => {
                // A strict, non-empty subset of the receivers.
                let others: Vec<usize> = (0..ctx.n_nodes)
                    .filter(|&i| i != ctx.sender.index())
                    .collect();
                let k = rng.gen_range(1..others.len());
                let mut set = others;
                for i in (1..set.len()).rev() {
                    set.swap(i, rng.gen_range(0..=i));
                }
                set.truncate(k);
                set
            }
        };
        Some(SlotEffect::Asymmetric {
            detected_by,
            collision_ok: true,
        })
    }
}

/// Partitions one node from the cluster: during the chosen rounds it fails
/// to receive the slots of every other sender (they remain mutually
/// visible), forming a minority clique of one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliquePartition {
    victim: NodeId,
    from_round: RoundIndex,
    rounds: u64,
}

impl CliquePartition {
    /// Blinds `victim` to all other senders for `rounds` rounds starting at
    /// `from_round`.
    pub fn new(victim: NodeId, from_round: RoundIndex, rounds: u64) -> Self {
        CliquePartition {
            victim,
            from_round,
            rounds,
        }
    }
}

impl Disturbance for CliquePartition {
    fn effect(&mut self, ctx: &TxCtx, _rng: &mut StdRng) -> Option<SlotEffect> {
        if ctx.sender == self.victim
            || ctx.round < self.from_round
            || ctx.round.as_u64() >= self.from_round.as_u64() + self.rounds
        {
            return None;
        }
        Some(SlotEffect::Asymmetric {
            detected_by: vec![self.victim.index()],
            collision_ok: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sim::SlotFaultClass;

    fn ctx(round: u64, sender: u32) -> TxCtx {
        TxCtx {
            round: RoundIndex::new(round),
            sender: NodeId::new(sender),
            n_nodes: 4,
            abs_slot: round * 4 + (sender - 1) as u64,
        }
    }

    #[test]
    fn random_syndrome_job_writes_garbage() {
        use tt_sim::{Controller, NodeSchedule};
        let node = NodeId::new(2);
        let mut c = Controller::new(node, 4);
        let mut job = RandomSyndromeJob::new(node, 4, 99);
        for r in 0..5u64 {
            let sched = NodeSchedule::new(node, 0, 4).unwrap();
            let mut jc = JobCtx::new(&mut c, sched, RoundIndex::new(r));
            job.execute(&mut jc);
        }
        assert_eq!(job.sent(), 5);
        assert_eq!(job.node(), node);
        assert_eq!(c.tx_payload().len(), 1, "still N bits on the wire");
    }

    #[test]
    fn asymmetric_fixed_targets() {
        let mut d = AsymmetricDisturbance::new(
            NodeId::new(1),
            RoundIndex::new(2),
            3,
            AsymmetricTarget::Fixed(vec![2]),
        );
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.effect(&ctx(1, 1), &mut rng), None, "before window");
        let e = d.effect(&ctx(2, 1), &mut rng).unwrap();
        assert_eq!(
            e,
            SlotEffect::Asymmetric {
                detected_by: vec![2],
                collision_ok: true
            }
        );
        assert_eq!(d.effect(&ctx(5, 1), &mut rng), None, "after window");
        assert_eq!(d.effect(&ctx(3, 2), &mut rng), None, "other sender");
    }

    #[test]
    fn asymmetric_random_subset_is_strict_and_nonempty() {
        let mut d = AsymmetricDisturbance::new(
            NodeId::new(2),
            RoundIndex::new(0),
            100,
            AsymmetricTarget::RandomSubset,
        );
        let mut rng = StdRng::seed_from_u64(5);
        for r in 0..100u64 {
            let e = d.effect(&ctx(r, 2), &mut rng).unwrap();
            let class = e.classify(4, NodeId::new(2));
            assert_eq!(class, SlotFaultClass::Asymmetric, "round {r}: {e:?}");
        }
    }

    #[test]
    fn clique_partition_blinds_only_victim() {
        let mut d = CliquePartition::new(NodeId::new(1), RoundIndex::new(4), 1);
        let mut rng = StdRng::seed_from_u64(0);
        // Other senders' slots are invisible to node 1 during round 4.
        let e = d.effect(&ctx(4, 3), &mut rng).unwrap();
        assert_eq!(
            e,
            SlotEffect::Asymmetric {
                detected_by: vec![0],
                collision_ok: true
            }
        );
        // The victim's own slot is untouched.
        assert_eq!(d.effect(&ctx(4, 1), &mut rng), None);
        // Outside the window nothing happens.
        assert_eq!(d.effect(&ctx(5, 3), &mut rng), None);
    }
}
