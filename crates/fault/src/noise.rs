//! Random noise, electrical spikes and silence periods.
//!
//! These are the three classes of physical faults the paper injects on the
//! bus (Sec. 8: "electrical spikes, random noise, periods of silence"). At
//! the fault-effect level they all render frames locally detectable
//! (benign); they differ in their temporal pattern.

use rand::rngs::StdRng;
use rand::Rng;

use tt_sim::{SlotEffect, TxCtx};

use crate::injector::Disturbance;

/// Random noise: each slot in the active window is independently corrupted
/// with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomNoise {
    p: f64,
    from_abs: u64,
    until_abs: u64,
}

impl RandomNoise {
    /// Noise affecting every slot with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn everywhere(p: f64) -> Self {
        Self::window(p, 0, u64::MAX)
    }

    /// Noise affecting slots in `[from_abs, until_abs)` with probability
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn window(p: f64, from_abs: u64, until_abs: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        RandomNoise {
            p,
            from_abs,
            until_abs,
        }
    }
}

impl Disturbance for RandomNoise {
    fn effect(&mut self, ctx: &TxCtx, rng: &mut StdRng) -> Option<SlotEffect> {
        if ctx.abs_slot < self.from_abs || ctx.abs_slot >= self.until_abs {
            return None;
        }
        rng.gen_bool(self.p).then_some(SlotEffect::Benign)
    }
}

/// An electrical spike destroying exactly one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spike {
    abs_slot: u64,
}

impl Spike {
    /// A spike hitting absolute slot `abs_slot`.
    pub fn at(abs_slot: u64) -> Self {
        Spike { abs_slot }
    }
}

impl Disturbance for Spike {
    fn effect(&mut self, ctx: &TxCtx, _rng: &mut StdRng) -> Option<SlotEffect> {
        (ctx.abs_slot == self.abs_slot).then_some(SlotEffect::Benign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tt_sim::{NodeId, RoundIndex};

    fn ctx(abs: u64) -> TxCtx {
        TxCtx {
            round: RoundIndex::new(abs / 4),
            sender: NodeId::from_slot((abs % 4) as usize),
            n_nodes: 4,
            abs_slot: abs,
        }
    }

    #[test]
    fn spike_hits_one_slot() {
        let mut s = Spike::at(7);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.effect(&ctx(6), &mut rng), None);
        assert_eq!(s.effect(&ctx(7), &mut rng), Some(SlotEffect::Benign));
        assert_eq!(s.effect(&ctx(8), &mut rng), None);
    }

    #[test]
    fn noise_rate_is_approximately_p() {
        let mut n = RandomNoise::everywhere(0.25);
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000)
            .filter(|&a| n.effect(&ctx(a), &mut rng).is_some())
            .count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn noise_respects_window() {
        let mut n = RandomNoise::window(1.0, 10, 20);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(n.effect(&ctx(9), &mut rng), None);
        assert_eq!(n.effect(&ctx(10), &mut rng), Some(SlotEffect::Benign));
        assert_eq!(n.effect(&ctx(19), &mut rng), Some(SlotEffect::Benign));
        assert_eq!(n.effect(&ctx(20), &mut rng), None);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn noise_rejects_bad_probability() {
        let _ = RandomNoise::everywhere(1.5);
    }

    #[test]
    fn zero_probability_noise_is_silent() {
        let mut n = RandomNoise::everywhere(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!((0..100).all(|a| n.effect(&ctx(a), &mut rng).is_none()));
    }
}
