//! Oracle stacks and execution paths for the protocol variants the
//! explorer hunts beyond the base [`tt_core::DiagJob`]: the Sec. 7
//! membership protocol and the Sec. 10 low-latency variant.
//!
//! The properties come from the paper's Theorem 2 and the group-membership
//! literature it builds on ("Parametric Verification of a Group Membership
//! Algorithm" supplies the formulations):
//!
//! * **view synchrony** — all obedient surviving members install identical
//!   view sequences, and no view excludes an obedient node absent a
//!   qualifying fault;
//! * **membership / clique liveness** — a locally detectable (benign)
//!   faulty message yields a new view excluding its sender within two
//!   executions, and a minority clique partitioned by asymmetric faults is
//!   consistently accused and excluded by the majority;
//! * **latency** (Sec. 10) — every slot verdict lands exactly one TDMA
//!   round after its slot, and the membership composition reacts within
//!   two rounds.
//!
//! Like the Theorem 1 oracles in [`mod@crate::explore`], every check is gated
//! on the fault hypothesis it is owed under — the explorer throws
//! out-of-hypothesis schedules at these paths constantly, and a sound
//! oracle must stay vacuous there rather than report phantom violations.
//! The one deliberate exception is the *clique* mode: a schedule whose
//! faults are all asymmetric with one common detector set `D` leaves the
//! per-round hypothesis (up to `N - |D|` simultaneous asymmetric faults),
//! but the majority's syndromes still dominate every vote whenever
//! `2·|D| < N - 1`, so Sec. 7's clique exclusion is checkable — and worth
//! checking, because it is exactly the scenario the membership variant
//! exists for.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hasher;

use tt_core::lowlat::LowLatCluster;
use tt_core::properties::{check_properties, checkable_rounds, Violation};
use tt_core::{MembershipJob, ProtocolConfig};
use tt_sim::{Cluster, ClusterBuilder, Fnv1a64, NodeId, RoundIndex, SlotFaultClass};

use crate::explore::{
    hypothesis_prefix, round_for, schedule_pipeline, ExtraOracle, FaultSchedule, ScheduleExec,
    ScheduleVerdict, ScheduledClass, LAG,
};

/// Executes a [`FaultSchedule`] against a cluster of
/// [`MembershipJob`]s and checks the membership oracle stack: the Theorem 1
/// properties (with accusation-conviction exemptions), cross-node counter
/// agreement, Theorem 2 view synchrony, wrongful exclusion, membership
/// liveness, and — for clique-partition schedules — minority-clique
/// accusation and exclusion.
///
/// The extra oracle runs against the final cluster state, exactly as in
/// the diag path (the planted-bug self-tests rely on it).
pub fn execute_membership_schedule(
    schedule: &FaultSchedule,
    extra: ExtraOracle<'_>,
) -> ScheduleExec {
    let n = schedule.n;
    let cfg = ProtocolConfig::builder(n)
        .penalty_threshold(schedule.penalty_threshold)
        .reward_threshold(schedule.reward_threshold)
        .build()
        .expect("schedule carries a valid protocol config");
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round_for(n))
        .build_with_jobs(
            move |id| Box::new(MembershipJob::new(id, cfg.clone())),
            schedule_pipeline(schedule),
        );
    cluster.run_rounds(schedule.rounds);
    let all: Vec<NodeId> = NodeId::all(n).collect();
    let job = |id: NodeId| -> &MembershipJob {
        cluster.job_as(id).expect("every node runs a MembershipJob")
    };

    // Hypothesis prefix, with every isolated node counted as a standing
    // benign faulty sender (same accounting as the diag path; membership
    // runs the identical p/r layer).
    let mut iso: BTreeMap<usize, u64> = BTreeMap::new();
    let mut isolated_from: HashMap<NodeId, RoundIndex> = HashMap::new();
    // Earliest minority accusation per accused node, across all accusers.
    let mut accused_from: HashMap<NodeId, RoundIndex> = HashMap::new();
    for &id in &all {
        let j = job(id);
        for ev in j.isolations() {
            let e = iso.entry(ev.node.index()).or_insert(u64::MAX);
            *e = (*e).min(ev.decided_at.as_u64());
            isolated_from
                .entry(ev.node)
                .and_modify(|d| *d = (*d).min(ev.decided_at))
                .or_insert(ev.decided_at);
        }
        for &(k, accused) in j.accusations() {
            accused_from
                .entry(accused)
                .and_modify(|d| *d = (*d).min(k))
                .or_insert(k);
        }
    }
    let checked = hypothesis_prefix(&cluster, n, schedule.rounds, &iso);
    let all_within = checked.len() == checkable_rounds(schedule.rounds, LAG).count();
    let horizon = checked.last().copied();

    // Theorem 1 via the generic checker over the membership health logs.
    let getter = |node: NodeId, r: RoundIndex| -> Option<Vec<bool>> {
        let j: &MembershipJob = cluster.job_as(node).ok()?;
        j.health_for(r).map(|h| h.health.clone())
    };
    let mut report = check_properties(
        cluster.trace(),
        n,
        LAG,
        &all,
        checked.iter().copied(),
        &getter,
    );
    // Two correctness exemptions, both intended protocol behavior:
    // * isolated senders are ignored by design (as in the diag path);
    // * a minority accusation folds "accused is faulty" into the accusers'
    //   outgoing syndromes (Sec. 7), so a correct-but-accused node can be
    //   convicted by the resulting vote from the accusation's decision
    //   round on. Whether the accusation itself was *legitimate* is what
    //   the wrongful-exclusion check below decides.
    report.violations.retain(|v| match v {
        Violation::Correctness {
            diagnosed, sender, ..
        } => {
            let pre_isolation = isolated_from
                .get(sender)
                .is_none_or(|from| diagnosed < from);
            let pre_accusation = accused_from
                .get(sender)
                .is_none_or(|from| diagnosed.as_u64() + LAG < from.as_u64());
            pre_isolation && pre_accusation
        }
        _ => true,
    });
    let theorem1: Vec<String> = report.violations.iter().map(|v| format!("{v:?}")).collect();

    // Cross-node p/r agreement, gated exactly like the diag path.
    let counter_divergence = if all_within {
        let snapshot = |id: NodeId| {
            let j = job(id);
            let per_node: Vec<(u64, u64, bool)> = NodeId::all(n)
                .map(|x| (j.penalty(x), j.reward(x), j.is_active(x)))
                .collect();
            (per_node, j.isolations().to_vec())
        };
        let mut divergent = Vec::new();
        for pair in all.windows(2) {
            if snapshot(pair[0]) != snapshot(pair[1]) {
                divergent.push(format!(
                    "counters diverge between {} and {}",
                    pair[0], pair[1]
                ));
            }
        }
        divergent
    } else {
        Vec::new()
    };

    let mut view_synchrony = Vec::new();
    let mut liveness = Vec::new();

    // Theorem 2 view synchrony, owed on the hypothesis prefix: all
    // obedient surviving members (every fault here is bus-level, so
    // "surviving" = still in everyone's current view) installed identical
    // view sequences.
    if let Some(h) = horizon {
        let survivors: Vec<NodeId> = all
            .iter()
            .copied()
            .filter(|&m| all.iter().all(|&o| job(o).current_view().contains(m)))
            .collect();
        let seq = |id: NodeId| -> Vec<(u64, Vec<NodeId>)> {
            job(id)
                .views()
                .iter()
                .filter(|v| v.diagnosed <= h)
                .map(|v| (v.view_id, v.members.clone()))
                .collect()
        };
        for pair in survivors.windows(2) {
            if seq(pair[0]) != seq(pair[1]) {
                view_synchrony.push(format!(
                    "surviving members {} and {} installed different view sequences",
                    pair[0], pair[1]
                ));
            }
        }
        // Wrongful exclusion: a view decided in-hypothesis may only drop a
        // node if a fault could implicate it — a fault on its own slot, or
        // any asymmetric fault (whose *detectors* are the ones a clique
        // vote can turn on). A fault at round r distorts the dissemination
        // frame of round r, which carries opinions about rounds back to
        // r - LAG, so the earliest view it can legitimately produce is
        // diagnosed r - LAG (observed: a malicious frame at r triggers
        // accusation folding that convicts its sender at diagnosed r - 1).
        for &id in &all {
            for v in job(id).views().iter().filter(|v| v.diagnosed <= h) {
                for &m in &all {
                    if v.members.contains(&m) {
                        continue;
                    }
                    let qualifying = schedule.faults.iter().any(|f| {
                        f.round <= v.diagnosed.as_u64() + LAG
                            && (NodeId::new(f.node) == m
                                || matches!(f.class, ScheduledClass::Asymmetric { .. }))
                    });
                    if !qualifying {
                        view_synchrony.push(format!(
                            "{id}: view {} excludes obedient {m} with no qualifying fault",
                            v.view_id
                        ));
                    }
                }
            }
        }
        // Membership liveness: a benign (locally detectable) slot in the
        // prefix yields a view excluding its sender no later than the view
        // diagnosing that round.
        let trace = cluster.trace();
        for &r in &checked {
            for sender in NodeId::all(n) {
                if !matches!(trace.class_of(r, sender), SlotFaultClass::Benign) {
                    continue;
                }
                for &id in &all {
                    let excluded = job(id)
                        .views()
                        .iter()
                        .any(|v| v.diagnosed <= r && !v.members.contains(&sender));
                    if !excluded {
                        liveness.push(format!(
                            "{id} has no view excluding {sender} after its benign round {r}"
                        ));
                    }
                }
            }
        }
    }

    // Clique mode: all faults asymmetric with one common detector set D,
    // and the clique a sub-majority (2·|D| < N - 1, so the clique's rows
    // can never win or tie a vote). The majority must agree on the full
    // view sequence, accuse every clique member, and — once the run is
    // long enough for the two-execution bound to land — exclude exactly
    // the clique.
    if let Some(clique) = clique_detector_set(schedule) {
        if 2 * clique.len() < n - 1 {
            let observers: Vec<NodeId> = all
                .iter()
                .copied()
                .filter(|id| !clique.contains(&id.index()))
                .collect();
            for pair in observers.windows(2) {
                if job(pair[0]).views() != job(pair[1]).views() {
                    view_synchrony.push(format!(
                        "clique observers {} and {} installed different view sequences",
                        pair[0], pair[1]
                    ));
                }
            }
            let first = schedule
                .faults
                .iter()
                .map(|f| f.round)
                .min()
                .expect("clique mode implies faults");
            for &obs in &observers {
                for &c in &clique {
                    let member = NodeId::from_slot(c);
                    if !job(obs).accusations().iter().any(|&(_, a)| a == member) {
                        liveness.push(format!("clique member {member} was never accused by {obs}"));
                    }
                }
            }
            // The exclusion lands within two executions of the first
            // clique round: by diagnosed round `first + 2·LAG`, decided at
            // `first + 3·LAG` — only checkable if the run reaches it.
            if first + 3 * LAG < schedule.rounds {
                for &obs in &observers {
                    for &c in &clique {
                        let member = NodeId::from_slot(c);
                        let excluded = job(obs).views().iter().any(|v| {
                            v.diagnosed.as_u64() <= first + 2 * LAG && !v.members.contains(&member)
                        });
                        if !excluded {
                            liveness.push(format!(
                                "{obs} did not exclude clique member {member} within \
                                 two executions of round {first}"
                            ));
                        }
                    }
                }
                for &obs in &observers {
                    let members = &job(obs).current_view().members;
                    if members != &observers {
                        view_synchrony.push(format!(
                            "{obs}: final view {members:?} is not the majority {observers:?}"
                        ));
                    }
                }
            }
        }
    }

    let verdict = ScheduleVerdict {
        theorem1,
        counter_divergence,
        alg2: Vec::new(),
        view_synchrony,
        liveness,
        latency: Vec::new(),
        extra: extra(&cluster),
    };
    ScheduleExec {
        fingerprints: membership_fingerprints(&cluster, n),
        verdict,
    }
}

/// The common detector set if every fault in `schedule` is asymmetric with
/// the identical `detected_by` — the clique-partition shape — else `None`.
fn clique_detector_set(schedule: &FaultSchedule) -> Option<Vec<usize>> {
    let mut detectors: Option<Vec<usize>> = None;
    if schedule.faults.is_empty() {
        return None;
    }
    for f in &schedule.faults {
        let ScheduledClass::Asymmetric { detected_by } = &f.class else {
            return None;
        };
        match &detectors {
            Some(d) if d != detected_by => return None,
            Some(_) => {}
            None => detectors = Some(detected_by.clone()),
        }
    }
    detectors
}

/// Hashes the cluster-wide membership state at each decision step: every
/// node's consistent health vector, its installed view (id + member set)
/// as of that decision round, and the accusations it issued in that round
/// — so view churn and accusation traffic count as coverage novelty.
fn membership_fingerprints(cluster: &Cluster, n: usize) -> Vec<u64> {
    let jobs: Vec<&MembershipJob> = NodeId::all(n)
        .map(|id| cluster.job_as(id).expect("every node runs a MembershipJob"))
        .collect();
    let steps = jobs.iter().map(|j| j.health_log().len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(steps);
    for i in 0..steps {
        let mut h = Fnv1a64::new();
        for job in &jobs {
            match job.health_log().get(i) {
                Some(rec) => {
                    h.write(&[1]);
                    for &b in &rec.health {
                        h.write(&[u8::from(b)]);
                    }
                    let k = rec.decided_at;
                    let view = job
                        .views()
                        .iter()
                        .rfind(|v| v.installed_at <= k)
                        .unwrap_or(&job.views()[0]);
                    h.write(&view.view_id.to_le_bytes());
                    let mut members = 0u64;
                    for m in &view.members {
                        members |= 1 << m.index();
                    }
                    h.write(&members.to_le_bytes());
                    let mut accused = 0u64;
                    for &(ka, a) in job.accusations() {
                        if ka == k {
                            accused |= 1 << a.index();
                        }
                    }
                    h.write(&accused.to_le_bytes());
                }
                None => h.write(&[0]),
            }
        }
        out.push(h.finish());
    }
    out
}

/// Executes a [`FaultSchedule`] against the Sec. 10 low-latency variant
/// (with the 2-round membership composition active) and checks the
/// per-slot Theorem 1 analogue, the 1-round latency bound, view synchrony
/// and membership liveness.
///
/// The extra oracle does not apply here: the lowlat cluster is
/// slot-granular ([`LowLatCluster`]), not a [`Cluster`] of round jobs.
pub fn execute_lowlat_schedule(schedule: &FaultSchedule) -> ScheduleExec {
    let mut cluster = LowLatCluster::new(schedule.n, true, schedule_pipeline(schedule));
    cluster.run_rounds(schedule.rounds);
    let verdict = ScheduleVerdict {
        theorem1: lowlat_slot_properties(&cluster, schedule.n),
        counter_divergence: Vec::new(),
        alg2: Vec::new(),
        view_synchrony: cluster.check_view_synchrony(),
        liveness: cluster.check_membership_liveness(),
        latency: cluster.check_latency(),
        extra: Vec::new(),
    };
    ScheduleExec {
        fingerprints: lowlat_fingerprints(&cluster, schedule.n),
        verdict,
    }
}

/// The per-slot Theorem 1 analogue, gated for adversarial schedules:
///
/// * every node decides every past slot (structural, ungated);
/// * verdicts agree across nodes as long as no malicious or asymmetric
///   frame has occurred anywhere up to the collection window — those split
///   the vote tables (a corrupted dissemination frame makes the sender's
///   own authoritative opinion diverge from what everyone else decoded),
///   and with the membership composition active the split is *sticky*:
///   the detecting side excludes the sender from its view while the
///   oblivious side keeps it, so verdicts may diverge in later windows
///   that are locally clean (the explorer shrinks exactly such 2-fault
///   schedules — one divergence seed, one later probe);
/// * correct slots are acquitted and benign slots convicted whenever the
///   whole collection window stays benign/correct — the per-slot Lemma 2/3
///   hypothesis, as in [`LowLatCluster::check_properties`].
fn lowlat_slot_properties(cluster: &LowLatCluster, n: usize) -> Vec<String> {
    let mut violations = Vec::new();
    let nn = n as u64;
    let slots = cluster.slots();
    let healthy_at = |id: NodeId, abs: u64| -> Option<bool> {
        cluster
            .verdicts(id)
            .iter()
            .find(|v| v.abs_slot == abs)
            .map(|v| v.healthy)
    };
    let first_divergent = (0..slots)
        .find(|&s| {
            matches!(
                cluster.ground_truth(s),
                Some(SlotFaultClass::SymmetricMalicious) | Some(SlotFaultClass::Asymmetric)
            )
        })
        .unwrap_or(u64::MAX);
    for a in 0..slots.saturating_sub(nn) {
        let sender = NodeId::from_slot((a % nn) as usize);
        for id in NodeId::all(n) {
            if healthy_at(id, a).is_none() {
                violations.push(format!("slot {a}: {id} has no verdict"));
            }
        }
        if a + nn < first_divergent {
            if let Some(reference) = healthy_at(NodeId::new(1), a) {
                for id in NodeId::all(n).skip(1) {
                    if healthy_at(id, a).is_some_and(|v| v != reference) {
                        violations.push(format!("slot {a}: {id} disagrees"));
                    }
                }
            }
        }
        let in_hypothesis = (a..=a + nn).all(|s| {
            matches!(
                cluster.ground_truth(s),
                Some(SlotFaultClass::Correct) | Some(SlotFaultClass::Benign) | None
            )
        });
        if !in_hypothesis {
            continue;
        }
        for id in NodeId::all(n) {
            match (cluster.ground_truth(a), healthy_at(id, a)) {
                (Some(SlotFaultClass::Correct), Some(false)) => {
                    violations.push(format!("slot {a}: correct {sender} convicted by {id}"));
                }
                (Some(SlotFaultClass::Benign), Some(true)) => {
                    violations.push(format!("slot {a}: benign {sender} acquitted by {id}"));
                }
                _ => {}
            }
        }
    }
    violations
}

/// Hashes the per-slot protocol state at each decision step: every node's
/// verdict (slot-in-round, health bit) plus its membership view as of the
/// deciding slot — view churn in the 2-round composition is coverage.
fn lowlat_fingerprints(cluster: &LowLatCluster, n: usize) -> Vec<u64> {
    let steps = NodeId::all(n)
        .map(|id| cluster.verdicts(id).len())
        .max()
        .unwrap_or(0);
    let full: u64 = (1u64 << n) - 1;
    let mut out = Vec::with_capacity(steps);
    for i in 0..steps {
        let mut h = Fnv1a64::new();
        for id in NodeId::all(n) {
            match cluster.verdicts(id).get(i) {
                Some(v) => {
                    h.write(&[1, (v.abs_slot % n as u64) as u8, u8::from(v.healthy)]);
                    let members = cluster
                        .view_log(id)
                        .iter()
                        .rev()
                        .find(|(s, _)| *s <= v.decided_at_slot)
                        .map(|(_, m)| m.iter().fold(0u64, |acc, x| acc | 1 << x.index()))
                        .unwrap_or(full);
                    h.write(&members.to_le_bytes());
                }
                None => h.write(&[0]),
            }
        }
        out.push(h.finish());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{
        clique_partition_faults, execute_schedule, ProtocolUnderTest, ScheduledFault,
    };

    fn base(protocol: ProtocolUnderTest) -> FaultSchedule {
        FaultSchedule {
            n: 4,
            rounds: 24,
            penalty_threshold: 3,
            reward_threshold: 2,
            faults: Vec::new(),
            protocol,
        }
    }

    #[test]
    fn membership_benign_fault_passes_and_reaches_new_views() {
        let mut s = base(ProtocolUnderTest::Membership);
        s.faults.push(ScheduledFault {
            node: 2,
            round: 6,
            hits: 1,
            stride: 1,
            class: ScheduledClass::Benign,
        });
        let exec = execute_schedule(&s);
        assert!(exec.verdict.ok(), "{:?}", exec.verdict.all());
        // The view change shows up as coverage: the fingerprints differ
        // from the fault-free run's.
        let clean = execute_schedule(&base(ProtocolUnderTest::Membership));
        assert_ne!(exec.fingerprints, clean.fingerprints);
    }

    #[test]
    fn membership_clique_partition_passes_the_real_oracles() {
        let mut s = base(ProtocolUnderTest::Membership);
        s.faults = clique_partition_faults(4, &[0], 6, 1);
        let exec = execute_schedule(&s);
        assert!(exec.verdict.ok(), "{:?}", exec.verdict.all());
    }

    #[test]
    fn membership_single_asymmetric_excludes_the_minority_cleanly() {
        let mut s = base(ProtocolUnderTest::Membership);
        s.faults.push(ScheduledFault {
            node: 2,
            round: 6,
            hits: 1,
            stride: 1,
            class: ScheduledClass::Asymmetric {
                detected_by: vec![0],
            },
        });
        let exec = execute_schedule(&s);
        assert!(exec.verdict.ok(), "{:?}", exec.verdict.all());
    }

    #[test]
    fn lowlat_benign_fault_passes_and_reaches_new_views() {
        let mut s = base(ProtocolUnderTest::Lowlat);
        s.faults.push(ScheduledFault {
            node: 3,
            round: 6,
            hits: 1,
            stride: 1,
            class: ScheduledClass::Benign,
        });
        let exec = execute_schedule(&s);
        assert!(exec.verdict.ok(), "{:?}", exec.verdict.all());
        let clean = execute_schedule(&base(ProtocolUnderTest::Lowlat));
        assert_ne!(exec.fingerprints, clean.fingerprints);
    }

    #[test]
    fn lowlat_latency_oracle_sees_every_chain() {
        let s = base(ProtocolUnderTest::Lowlat);
        let exec = execute_schedule(&s);
        assert!(
            exec.verdict.latency.is_empty(),
            "{:?}",
            exec.verdict.latency
        );
        // 24 rounds × 4 slots, minus the one undecidable trailing round.
        assert_eq!(exec.fingerprints.len(), 24 * 4 - 4);
    }

    #[test]
    fn clique_detector_set_requires_a_uniform_clique() {
        let mut s = base(ProtocolUnderTest::Membership);
        s.faults = clique_partition_faults(4, &[0], 6, 1);
        assert_eq!(clique_detector_set(&s), Some(vec![0]));
        s.faults[0].class = ScheduledClass::Benign;
        assert_eq!(clique_detector_set(&s), None);
    }
}
