//! λ-sampled transient workloads and their observed protocol outcomes.
//!
//! The Monte Carlo tuning sweeps (`tt_analysis::sweep`, `ttdiag tune
//! sweep`) estimate the Sec. 9 quantities — false-isolation probability,
//! time to (correct|incorrect) isolation, forgiveness counts — by running
//! many randomized fault campaigns per grid cell. This module provides the
//! two halves the sweep driver composes:
//!
//! * [`sampled_schedule`] turns a cell's Poisson transient rate `λ` into a
//!   concrete [`FaultSchedule`]: seeded per-round Bernoulli arrivals
//!   ([`tt_sim::sample_arrival_rounds`]) striking the **victim node**
//!   (node 1) as single-round benign faults, plus an optional genuinely
//!   **intermittent node** (node 2) firing with a fixed period — the one
//!   isolation the protocol is *supposed* to make;
//! * [`observe_schedules_batched`] executes a slate of same-sized
//!   schedules as lanes of one lockstep [`tt_core::BatchDiagJob`] (with
//!   per-subject criticalities applied) and returns what the sweep
//!   estimators need: isolation decisions and forgiveness counts.
//!   [`observe_schedule`] is the scalar equivalent the sweep falls back to
//!   when a cell's shape is unsupported by the batched engine — and the
//!   cross-check that the two paths agree observation for observation.

use tt_core::{BatchDiagJob, DiagJob, ProtocolConfig};
use tt_sim::{ClusterBuilder, NodeId, SimError};

use crate::batch_eval::{lane_params, lane_plan};
use crate::explore::{
    max_fault_round, round_for, FaultSchedule, ProtocolUnderTest, ScheduledClass, ScheduledFault,
    LAG, MIN_FAULT_ROUND,
};

/// The node struck by the sampled external transients (1-based). Its
/// sending slot is 0, so it is "subject 0" in observation terms.
pub const VICTIM_NODE: u32 = 1;

/// The node carrying the optional genuinely intermittent fault (1-based).
pub const INTERMITTENT_NODE: u32 = 2;

/// One cell's workload parameters: the protocol configuration under test
/// plus the fault environment it is exposed to.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientCell {
    /// Cluster size (≥ 4 so the victim, the intermittent slot and at least
    /// two clean observers coexist).
    pub n: usize,
    /// Rounds per experiment.
    pub rounds: u64,
    /// Alg. 2 penalty threshold `P`.
    pub penalty_threshold: u64,
    /// Alg. 2 reward threshold `R`.
    pub reward_threshold: u64,
    /// Poisson transient rate `λ` (faults/hour) striking the victim.
    pub rate_per_hour: f64,
    /// Period (rounds) of the genuinely intermittent fault on node 2;
    /// 0 disables it.
    pub intermittent_period: u64,
}

impl TransientCell {
    /// The last round a sampled arrival may land in (mirrors the
    /// explorer's bound so every injection is diagnosable in budget).
    pub fn max_arrival_round(&self) -> u64 {
        max_fault_round(self.rounds)
    }
}

/// Draws one seeded experiment for `cell`: Poisson arrivals on the victim
/// in `[MIN_FAULT_ROUND, max_arrival_round]`, each a single-round benign
/// fault, plus the periodic intermittent fault when configured.
///
/// Deterministic per `(cell, seed)`; the RNG stream is consumed only by
/// the arrival sampling.
pub fn sampled_schedule(cell: &TransientCell, seed: u64) -> FaultSchedule {
    let last = cell.max_arrival_round();
    let arrivals = tt_sim::sample_arrival_rounds(
        cell.rate_per_hour,
        round_for(cell.n),
        MIN_FAULT_ROUND,
        last,
        seed,
    );
    let mut faults: Vec<ScheduledFault> = arrivals
        .into_iter()
        .map(|round| ScheduledFault {
            node: VICTIM_NODE,
            round,
            hits: 1,
            stride: 1,
            class: ScheduledClass::Benign,
        })
        .collect();
    if cell.intermittent_period > 0 && last >= MIN_FAULT_ROUND {
        let hits = (last - MIN_FAULT_ROUND) / cell.intermittent_period + 1;
        faults.push(ScheduledFault {
            node: INTERMITTENT_NODE,
            round: MIN_FAULT_ROUND,
            hits,
            stride: cell.intermittent_period,
            class: ScheduledClass::Benign,
        });
    }
    FaultSchedule {
        n: cell.n,
        rounds: cell.rounds,
        penalty_threshold: cell.penalty_threshold,
        reward_threshold: cell.reward_threshold,
        faults,
        protocol: ProtocolUnderTest::Diag,
    }
}

/// The first sampled arrival on the victim, if any.
pub fn first_victim_arrival(schedule: &FaultSchedule) -> Option<u64> {
    schedule
        .faults
        .iter()
        .filter(|f| f.node == VICTIM_NODE)
        .map(|f| f.round)
        .min()
}

/// Number of sampled arrivals on the victim.
pub fn victim_arrivals(schedule: &FaultSchedule) -> u64 {
    schedule
        .faults
        .iter()
        .filter(|f| f.node == VICTIM_NODE)
        .count() as u64
}

/// One isolation decision as seen by the reference observer (the last
/// node, which never carries a scheduled fault in sampled workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedIsolation {
    /// Sending slot (0-based) of the isolated subject.
    pub subject: usize,
    /// The diagnosed round the conviction is about.
    pub diagnosed: u64,
    /// The round the decision was taken in (`diagnosed + LAG`).
    pub decided_at: u64,
}

/// What the sweep estimators extract from one executed schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleObservation {
    /// Isolation decisions of the reference observer, in decision order.
    pub isolations: Vec<ObservedIsolation>,
    /// Forgiveness events summed over all observers and subjects.
    pub forgiveness: u64,
}

impl ScheduleObservation {
    /// The reference observer's earliest isolation of `subject`, if any.
    pub fn isolation_of(&self, subject: usize) -> Option<ObservedIsolation> {
        self.isolations
            .iter()
            .find(|e| e.subject == subject)
            .copied()
    }
}

/// Executes every schedule through the lockstep engine with the given
/// per-subject criticalities and returns its observation, in input order.
///
/// All schedules must share one cluster size (`criticalities.len()`); the
/// sweep driver batches per cell, which guarantees this.
///
/// # Errors
///
/// Propagates the engine's validation errors (cluster size outside
/// `2..=64`, fault slot out of range) — the caller falls back to
/// [`observe_schedule`].
///
/// # Panics
///
/// Panics if `schedules` is empty or the sizes disagree.
pub fn observe_schedules_batched(
    schedules: &[FaultSchedule],
    criticalities: &[u64],
) -> Result<Vec<ScheduleObservation>, SimError> {
    let n = criticalities.len();
    assert!(!schedules.is_empty(), "at least one schedule");
    assert!(
        schedules.iter().all(|s| s.n == n),
        "one cluster size per batch"
    );
    let plans = schedules.iter().map(lane_plan).collect();
    let params: Vec<_> = schedules.iter().map(lane_params).collect();
    let rounds: Vec<u64> = schedules.iter().map(|s| s.rounds).collect();
    let mut batch = tt_sim::BatchCluster::new(n, plans)?;
    let mut job = BatchDiagJob::new(n, &params).with_criticalities(criticalities.to_vec());
    batch.run_lane_rounds(&rounds, &mut job);
    let observer = n - 1;
    Ok((0..schedules.len())
        .map(|lane| ScheduleObservation {
            isolations: job
                .isolation_events(lane, observer)
                .iter()
                .map(|ev| ObservedIsolation {
                    subject: ev.node.index(),
                    diagnosed: ev.diagnosed.as_u64(),
                    decided_at: ev.decided_at.as_u64(),
                })
                .collect(),
            forgiveness: job.forgiveness(lane),
        })
        .collect())
}

/// Scalar equivalent of [`observe_schedules_batched`] for one schedule:
/// a per-experiment cluster of [`DiagJob`]s with counter tracing, from
/// which forgiveness is recovered as every penalty transition `> 0 → 0`.
pub fn observe_schedule(schedule: &FaultSchedule, criticalities: &[u64]) -> ScheduleObservation {
    let cfg = ProtocolConfig::builder(schedule.n)
        .penalty_threshold(schedule.penalty_threshold)
        .reward_threshold(schedule.reward_threshold)
        .criticalities(criticalities.to_vec())
        .build()
        .expect("sampled schedule carries a valid protocol config");
    let mut cluster = ClusterBuilder::new(schedule.n)
        .round_length(round_for(schedule.n))
        .build_with_jobs(
            move |id| Box::new(DiagJob::new(id, cfg.clone()).with_counter_trace()),
            crate::explore::schedule_pipeline(schedule),
        );
    cluster.run_rounds(schedule.rounds);
    let n = schedule.n;
    let observer: &DiagJob = cluster
        .job_as(NodeId::from_slot(n - 1))
        .expect("every node runs a DiagJob");
    let isolations = observer
        .isolations()
        .iter()
        .map(|ev| ObservedIsolation {
            subject: ev.node.index(),
            diagnosed: ev.diagnosed.as_u64(),
            decided_at: ev.decided_at.as_u64(),
        })
        .collect();
    let mut forgiveness = 0u64;
    for id in NodeId::all(n) {
        let job: &DiagJob = cluster.job_as(id).expect("every node runs a DiagJob");
        let trace = job.counter_trace();
        for w in trace.windows(2) {
            for j in 0..n {
                if w[0].penalties[j] > 0 && w[1].penalties[j] == 0 {
                    forgiveness += 1;
                }
            }
        }
    }
    ScheduleObservation {
        isolations,
        forgiveness,
    }
}

/// The diagnosis lag between a diagnosed round and its decision round.
pub const DECISION_LAG: u64 = LAG;

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> TransientCell {
        TransientCell {
            n: 4,
            rounds: 48,
            penalty_threshold: 1,
            reward_threshold: 4,
            rate_per_hour: 72_000.0,
            intermittent_period: 6,
        }
    }

    #[test]
    fn sampled_schedules_are_deterministic_and_bounded() {
        let c = cell();
        let a = sampled_schedule(&c, 3);
        assert_eq!(a, sampled_schedule(&c, 3));
        assert_ne!(a, sampled_schedule(&c, 4));
        for f in &a.faults {
            assert!(f.round >= MIN_FAULT_ROUND);
            assert!(f.last_round() <= c.max_arrival_round());
        }
        assert!(
            a.faults.iter().any(|f| f.node == INTERMITTENT_NODE),
            "periodic fault present"
        );
    }

    #[test]
    fn batched_and_scalar_observations_agree() {
        let crit = vec![1u64; 4];
        let schedules: Vec<FaultSchedule> = (0..24).map(|s| sampled_schedule(&cell(), s)).collect();
        let batched = observe_schedules_batched(&schedules, &crit).expect("supported shape");
        for (s, b) in schedules.iter().zip(&batched) {
            assert_eq!(&observe_schedule(s, &crit), b, "{s:?}");
        }
    }

    fn two_arrival_schedule(gap: u64) -> FaultSchedule {
        FaultSchedule {
            n: 4,
            rounds: 32,
            penalty_threshold: 1,
            reward_threshold: 4,
            faults: [8, 8 + gap]
                .into_iter()
                .map(|round| ScheduledFault {
                    node: VICTIM_NODE,
                    round,
                    hits: 1,
                    stride: 1,
                    class: ScheduledClass::Benign,
                })
                .collect(),
            protocol: ProtocolUnderTest::Diag,
        }
    }

    #[test]
    fn arrivals_within_the_reward_window_isolate() {
        // Gap == R: the second transient lands before forgiveness, the
        // penalty exceeds P = s, the victim is (falsely) isolated with the
        // second arrival as its diagnosed round.
        let obs = observe_schedule(&two_arrival_schedule(4), &[1, 1, 1, 1]);
        let iso = obs.isolation_of(0).expect("victim isolated");
        assert_eq!(iso.diagnosed, 12);
        assert_eq!(iso.decided_at, 12 + DECISION_LAG);
    }

    #[test]
    fn arrivals_beyond_the_reward_window_forgive() {
        // Gap == R + 1: the reward run reaches R first, the pending
        // penalty is forgiven, and each arrival stands alone.
        let obs = observe_schedule(&two_arrival_schedule(5), &[1, 1, 1, 1]);
        assert_eq!(obs.isolation_of(0), None);
        // Every observer forgives the victim twice (once per arrival —
        // the second pending penalty is forgiven before the run ends).
        assert_eq!(obs.forgiveness, 2 * 4);
    }
}
