//! # tt-fault — fault injection for simulated time-triggered clusters
//!
//! The software analogue of the paper's experimental apparatus (Sec. 8): a
//! *disturbance node* able to emulate hardware faults in the communication
//! network by corrupting or dropping messages on the bus, plus the
//! scripted fault scenarios and the seeded experiment campaigns used to
//! validate and tune the diagnostic protocol.
//!
//! * [`injector`] — the composable [`DisturbanceNode`] fault pipeline;
//! * [`burst`] — bursty faults (one slot, several slots, whole rounds,
//!   continuous), addressed by slot, round or physical time;
//! * [`noise`] — random noise, spikes, and silence periods (the paper's
//!   three physical injection classes);
//! * [`bitflip`] — corruption grounded one layer lower: bit flips on the
//!   CRC-protected wire frame, with detectability emerging from the CRC
//!   check instead of being declared;
//! * [`malicious`] — malicious *content* faults: a node disseminating
//!   random local syndromes, asymmetric (SOS-like) disturbances, clique
//!   partitions;
//! * [`scenario`] — the abnormal transient scenarios of Table 3 (automotive
//!   blinking light, aerospace lightning bolt);
//! * [`campaign`] — the Sec. 8 validation campaign: experiment classes,
//!   seeded repetitions, and property-oracle verdicts;
//! * [`mod@explore`] — coverage-guided exploration of bounded fault schedules
//!   with counterexample shrinking and a replayable corpus, generic over
//!   the protocol under test (base diagnosis, Sec. 7 membership, Sec. 10
//!   low latency);
//! * [`oracles`] — the membership and low-latency oracle stacks the
//!   explorer checks: view synchrony, wrongful exclusion, membership /
//!   clique liveness, and the Sec. 10 latency bound;
//! * [`batch_eval`] — lockstep (structure-of-arrays) evaluation of whole
//!   slates of fault schedules, byte-identical to the scalar path;
//! * [`harness`] — faults injected into the *harness itself* (panicking,
//!   hanging, transiently failing experiments) plus the supervision
//!   vocabulary: retry/backoff policy, Alg. 2-style worker health,
//!   quarantine records;
//! * [`checkpoint`] — atomic progress snapshots for campaigns and
//!   explorer sessions, including exact RNG stream position, so resumed
//!   runs are byte-identical to uninterrupted ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch_eval;
pub mod bitflip;
pub mod burst;
pub mod campaign;
pub mod checkpoint;
pub mod explore;
pub mod harness;
pub mod injector;
pub mod malicious;
pub mod noise;
pub mod oracles;
pub mod sampled;
pub mod scenario;

pub use batch_eval::{execute_schedules_batched, lane_params, lane_plan};
pub use bitflip::{BitNoise, CrcForger, ReceiverLocalBitNoise};
pub use burst::{Burst, ContinuousFault, IntermittentFault, SenderBurst};
pub use campaign::{
    experiment_seed, extended_classes, quarantined_outcome, run_campaign, run_experiment,
    run_experiment_cancellable, run_experiment_observed, run_extended, sec8_classes,
    CampaignResult, ExperimentClass, ExperimentOutcome, ExperimentSinks, ExtendedClass,
};
pub use checkpoint::{
    read_json, write_json_atomic, CampaignCheckpoint, ExploreCheckpoint, RngState,
    CHECKPOINT_VERSION,
};
pub use explore::{
    clique_partition_faults, execute_schedule, execute_schedule_with_oracle, explore, explore_with,
    load_corpus, max_fault_round, no_extra_oracle, round_for, save_schedule, schedule_pipeline,
    seeded_schedule, shrink_schedule, Counterexample, ExploreConfig, ExploreReport, Explorer,
    FaultSchedule, ProtocolUnderTest, ScheduleExec, ScheduleVerdict, ScheduledClass,
    ScheduledFault, Strategy, LAG, MIN_FAULT_ROUND,
};
pub use harness::{
    splitmix64, BackoffPolicy, ChaosPlan, HarnessFault, HarnessFaultHook, NoHarnessFaults,
    QuarantineReason, QuarantineRecord, SupervisionSummary, WorkerHealth, WorkerStats,
};
pub use injector::{Disturbance, DisturbanceNode};
pub use malicious::{AsymmetricDisturbance, CliquePartition, RandomSyndromeJob};
pub use noise::{RandomNoise, Spike};
pub use oracles::{execute_lowlat_schedule, execute_membership_schedule};
pub use sampled::{
    first_victim_arrival, observe_schedule, observe_schedules_batched, sampled_schedule,
    victim_arrivals, ObservedIsolation, ScheduleObservation, TransientCell, DECISION_LAG,
    INTERMITTENT_NODE, VICTIM_NODE,
};
pub use scenario::TransientScenario;
