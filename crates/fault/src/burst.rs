//! Bursty faults: windows of consecutive corrupted slots.
//!
//! The paper's validation (Sec. 8) injects "bursty faults of increasing
//! length: one slot, two slots and two TDMA rounds", starting in any of the
//! round's sending slots; its tuning (Sec. 9) injects *continuous* faulty
//! bursts. A burst disturbs the *bus*, so every slot overlapping the window
//! is corrupted regardless of its sender.

use rand::rngs::StdRng;

use tt_sim::{CommunicationSchedule, Nanos, NodeId, RoundIndex, SlotEffect, TxCtx};

use crate::injector::Disturbance;

/// A benign-fault burst covering a contiguous window of absolute slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    start_abs: u64,
    len_slots: u64,
}

impl Burst {
    /// A burst of `len_slots` slots starting at absolute slot `start_abs`.
    pub fn slots(start_abs: u64, len_slots: u64) -> Self {
        Burst {
            start_abs,
            len_slots,
        }
    }

    /// A burst starting in sending slot `start_slot` (0-based) of `round`,
    /// lasting `len_slots` slots.
    pub fn in_round(round: RoundIndex, start_slot: usize, len_slots: u64, n: usize) -> Self {
        Burst::slots(round.as_u64() * n as u64 + start_slot as u64, len_slots)
    }

    /// A burst defined in physical time: every slot whose interval
    /// intersects `[start, start + len)` is corrupted (a partial hit still
    /// destroys the frame).
    pub fn from_time(sched: &CommunicationSchedule, start: Nanos, len: Nanos) -> Self {
        let slot_len = sched.slot_length().as_nanos();
        let first = start.as_nanos() / slot_len;
        let end = start.as_nanos() + len.as_nanos();
        // Last slot whose start lies before the window's end.
        let last = end.div_ceil(slot_len);
        Burst::slots(first, last.saturating_sub(first))
    }

    /// First corrupted absolute slot.
    pub fn start(&self) -> u64 {
        self.start_abs
    }

    /// Number of corrupted slots.
    pub fn len_slots(&self) -> u64 {
        self.len_slots
    }

    /// Whether the burst covers `abs_slot`.
    pub fn covers(&self, abs_slot: u64) -> bool {
        abs_slot >= self.start_abs && abs_slot < self.start_abs + self.len_slots
    }
}

impl Disturbance for Burst {
    fn effect(&mut self, ctx: &TxCtx, _rng: &mut StdRng) -> Option<SlotEffect> {
        self.covers(ctx.abs_slot).then_some(SlotEffect::Benign)
    }
}

/// A burst hitting only the sending slots of one node — the paper's way of
/// emulating a *node* fault through the disturbance node ("a fault in a
/// node can be emulated by corrupting or dropping a message it sends").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SenderBurst {
    node: NodeId,
    from_round: RoundIndex,
    rounds: u64,
}

impl SenderBurst {
    /// Corrupts `node`'s slot in `rounds` consecutive rounds starting at
    /// `from_round`.
    pub fn new(node: NodeId, from_round: RoundIndex, rounds: u64) -> Self {
        SenderBurst {
            node,
            from_round,
            rounds,
        }
    }

    /// Whether this burst covers `node`'s slot in `round`.
    pub fn covers(&self, round: RoundIndex, sender: NodeId) -> bool {
        sender == self.node
            && round >= self.from_round
            && round.as_u64() < self.from_round.as_u64() + self.rounds
    }
}

impl Disturbance for SenderBurst {
    fn effect(&mut self, ctx: &TxCtx, _rng: &mut StdRng) -> Option<SlotEffect> {
        self.covers(ctx.round, ctx.sender)
            .then_some(SlotEffect::Benign)
    }
}

/// A permanent sender fault (crash) from a given round on — the tuning
/// procedure's "continuous faulty burst" (Sec. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContinuousFault {
    node: NodeId,
    from_round: RoundIndex,
}

impl ContinuousFault {
    /// `node` fails benignly in every round from `from_round` on.
    pub fn new(node: NodeId, from_round: RoundIndex) -> Self {
        ContinuousFault { node, from_round }
    }
}

impl Disturbance for ContinuousFault {
    fn effect(&mut self, ctx: &TxCtx, _rng: &mut StdRng) -> Option<SlotEffect> {
        (ctx.sender == self.node && ctx.round >= self.from_round).then_some(SlotEffect::Benign)
    }
}

/// A deterministic intermittent sender fault: from `from_round` on, `node`'s
/// slot fails benignly every `period` rounds (the paper Sec. 4's
/// "intermittent fault in a node" — repeated manifestations of the same
/// underlying cause, the kind the p/r algorithm is tuned to correlate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntermittentFault {
    node: NodeId,
    from_round: RoundIndex,
    period: u64,
}

impl IntermittentFault {
    /// `node` fails in `from_round` and every `period`-th round after it.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(node: NodeId, from_round: RoundIndex, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        IntermittentFault {
            node,
            from_round,
            period,
        }
    }

    /// Whether this fault covers `node`'s slot in `round`.
    pub fn covers(&self, round: RoundIndex, sender: NodeId) -> bool {
        sender == self.node
            && round >= self.from_round
            && (round.as_u64() - self.from_round.as_u64()).is_multiple_of(self.period)
    }
}

impl Disturbance for IntermittentFault {
    fn effect(&mut self, ctx: &TxCtx, _rng: &mut StdRng) -> Option<SlotEffect> {
        self.covers(ctx.round, ctx.sender)
            .then_some(SlotEffect::Benign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx(abs: u64, n: usize) -> TxCtx {
        TxCtx {
            round: RoundIndex::new(abs / n as u64),
            sender: NodeId::from_slot((abs % n as u64) as usize),
            n_nodes: n,
            abs_slot: abs,
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn burst_covers_exact_window() {
        let b = Burst::slots(10, 3);
        assert!(!b.covers(9));
        assert!(b.covers(10));
        assert!(b.covers(12));
        assert!(!b.covers(13));
        assert_eq!(b.start(), 10);
        assert_eq!(b.len_slots(), 3);
    }

    #[test]
    fn burst_in_round_addresses_start_slot() {
        // Two-slot burst starting in slot 2 of round 5 (4-node cluster).
        let b = Burst::in_round(RoundIndex::new(5), 2, 2, 4);
        assert_eq!(b.start(), 22);
        let mut b2 = b;
        assert_eq!(b2.effect(&ctx(22, 4), &mut rng()), Some(SlotEffect::Benign));
        assert_eq!(b2.effect(&ctx(24, 4), &mut rng()), None);
    }

    #[test]
    fn burst_from_time_rounds_outward() {
        // 4 nodes, 2.5 ms round => 625 µs slots. A 10 ms window starting at
        // t = 0 covers exactly 16 slots (4 rounds).
        let sched = CommunicationSchedule::new(4, Nanos::from_millis_f64(2.5)).unwrap();
        let b = Burst::from_time(&sched, Nanos::ZERO, Nanos::from_millis(10));
        assert_eq!(b.start(), 0);
        assert_eq!(b.len_slots(), 16);
        // A window straddling slot boundaries corrupts the partially hit
        // slots too: starting mid-slot adds one more victim.
        let b = Burst::from_time(&sched, Nanos::from_micros(300), Nanos::from_millis(10));
        assert_eq!(b.start(), 0);
        assert_eq!(b.len_slots(), 17);
    }

    #[test]
    fn sender_burst_hits_only_target_node() {
        let mut sb = SenderBurst::new(NodeId::new(3), RoundIndex::new(2), 2);
        // Node 3 owns slot 2: abs slots 10 (round 2) and 14 (round 3).
        assert_eq!(sb.effect(&ctx(10, 4), &mut rng()), Some(SlotEffect::Benign));
        assert_eq!(sb.effect(&ctx(14, 4), &mut rng()), Some(SlotEffect::Benign));
        assert_eq!(sb.effect(&ctx(18, 4), &mut rng()), None, "past the burst");
        assert_eq!(sb.effect(&ctx(9, 4), &mut rng()), None, "other sender");
    }

    #[test]
    fn intermittent_fault_recurs_with_period() {
        // Node 3 (slot 2) fails in round 4 and every 2nd round after.
        let mut f = IntermittentFault::new(NodeId::new(3), RoundIndex::new(4), 2);
        let slot_of = |round: u64| round * 4 + 2;
        for (round, hit) in [(3u64, false), (4, true), (5, false), (6, true), (10, true)] {
            assert_eq!(
                f.effect(&ctx(slot_of(round), 4), &mut rng()),
                hit.then_some(SlotEffect::Benign),
                "round {round}"
            );
        }
        // Other senders are untouched even in fault rounds.
        assert_eq!(f.effect(&ctx(16, 4), &mut rng()), None);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn intermittent_fault_rejects_zero_period() {
        let _ = IntermittentFault::new(NodeId::new(1), RoundIndex::ZERO, 0);
    }

    #[test]
    fn continuous_fault_is_permanent() {
        let mut cf = ContinuousFault::new(NodeId::new(1), RoundIndex::new(3));
        assert_eq!(cf.effect(&ctx(8, 4), &mut rng()), None, "round 2");
        for round in 3..100u64 {
            let abs = round * 4;
            assert_eq!(
                cf.effect(&ctx(abs, 4), &mut rng()),
                Some(SlotEffect::Benign),
                "round {round}"
            );
        }
    }
}
