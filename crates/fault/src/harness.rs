//! Harness-fault injection and the supervision policy vocabulary.
//!
//! The campaign *harness* — worker pools, the explorer driver — must
//! tolerate the same fault taxonomy it studies: crashed experiments
//! (panics), hung experiments (infinite or overlong runs), and transient
//! failures that clear on retry. This module provides
//!
//! * [`HarnessFault`] / [`HarnessFaultHook`] — an injectable source of
//!   harness faults, so the supervision policies are testable the same
//!   way the protocol is: deterministically, from a seed;
//! * [`ChaosPlan`] — a seeded hook marking a configurable fraction of
//!   experiments as panicking / hanging / transiently failing;
//! * [`BackoffPolicy`] — bounded exponential retry backoff;
//! * [`WorkerHealth`] — a per-worker penalty/reward tracker mirroring the
//!   paper's Alg. 2: failures raise a penalty counter, sustained success
//!   earns forgiveness, and a worker whose penalty crosses the threshold
//!   is isolated from the pool;
//! * the report vocabulary shared by executors and `tt_analysis`:
//!   [`QuarantineReason`], [`QuarantineRecord`], [`WorkerStats`] and
//!   [`SupervisionSummary`] — degraded results are visible, never silent.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// SplitMix64 over `(seed, index)`: cheap, stable, well-mixed — the
/// deterministic per-item draw shared by the harness [`ChaosPlan`] and the
/// network chaos injector (`tt_net`). Pure, so every consumer that derives
/// decisions from it is reproducible from its seed alone.
pub fn splitmix64(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fault injected into the *harness* (not the simulated bus): what goes
/// wrong with the execution of one experiment attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HarnessFault {
    /// The attempt panics (as a crashed experiment process would).
    Panic,
    /// The attempt hangs until cancelled by the watchdog.
    Hang,
    /// The attempt fails transiently; a retry may succeed.
    Transient,
}

/// An injectable decision source for harness faults, consulted once per
/// `(work item, attempt)` pair. `None` means the attempt runs untouched.
///
/// Implementations must be deterministic in their inputs so supervised
/// runs stay reproducible.
pub trait HarnessFaultHook: Send + Sync {
    /// The fault (if any) to inject into attempt `attempt` of item `item`.
    fn fault(&self, item: usize, attempt: u32) -> Option<HarnessFault>;
}

/// The hook that never injects anything (production default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHarnessFaults;

impl HarnessFaultHook for NoHarnessFaults {
    fn fault(&self, _item: usize, _attempt: u32) -> Option<HarnessFault> {
        None
    }
}

/// A seeded harness-fault plan: marks a per-mille fraction of work items
/// as panicking, hanging, or transiently failing. The decision for an item
/// is a pure function of `(seed, item)`, so two runs of the same plan over
/// the same work list inject exactly the same faults — the chaos CI job
/// relies on this to assert an exact quarantine count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed of the per-item decisions.
    pub seed: u64,
    /// Per-mille of items whose attempts panic.
    pub panic_per_mille: u16,
    /// Per-mille of items whose attempts hang until cancelled.
    pub hang_per_mille: u16,
    /// Per-mille of items whose attempts fail transiently.
    pub transient_per_mille: u16,
    /// If true, the fault strikes only the first attempt, so a retry
    /// recovers the item; if false, every attempt is hit and the item is
    /// eventually quarantined.
    pub first_attempt_only: bool,
}

impl ChaosPlan {
    /// A plan injecting nothing (useful as a CLI default).
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            panic_per_mille: 0,
            hang_per_mille: 0,
            transient_per_mille: 0,
            first_attempt_only: false,
        }
    }

    /// Whether this plan can inject at least one fault class.
    pub fn is_active(&self) -> bool {
        self.panic_per_mille > 0 || self.hang_per_mille > 0 || self.transient_per_mille > 0
    }

    /// The deterministic per-item draw in `0..1000`.
    fn draw(&self, item: usize) -> u64 {
        splitmix64(self.seed, item as u64) % 1000
    }

    /// The fault class this plan assigns to `item`, independent of the
    /// attempt (use [`HarnessFaultHook::fault`] for the per-attempt view).
    pub fn fault_for_item(&self, item: usize) -> Option<HarnessFault> {
        let d = self.draw(item);
        let p = u64::from(self.panic_per_mille);
        let h = u64::from(self.hang_per_mille);
        let t = u64::from(self.transient_per_mille);
        if d < p {
            Some(HarnessFault::Panic)
        } else if d < p + h {
            Some(HarnessFault::Hang)
        } else if d < p + h + t {
            Some(HarnessFault::Transient)
        } else {
            None
        }
    }

    /// How many of the items `0..items` this plan faults, per class:
    /// `(panics, hangs, transients)`. With `first_attempt_only = false`,
    /// panicking and hanging items are exactly the ones a supervisor will
    /// quarantine.
    pub fn expected_faults(&self, items: usize) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for item in 0..items {
            match self.fault_for_item(item) {
                Some(HarnessFault::Panic) => counts.0 += 1,
                Some(HarnessFault::Hang) => counts.1 += 1,
                Some(HarnessFault::Transient) => counts.2 += 1,
                None => {}
            }
        }
        counts
    }
}

impl HarnessFaultHook for ChaosPlan {
    fn fault(&self, item: usize, attempt: u32) -> Option<HarnessFault> {
        if self.first_attempt_only && attempt > 0 {
            return None;
        }
        self.fault_for_item(item)
    }
}

/// Bounded exponential backoff for retrying transiently failed attempts.
///
/// Attempt `a` (0-based count of *completed* failures) waits
/// `min(base * 2^a, cap)` before rerunning; after `max_retries` failed
/// retries the item is quarantined as [`QuarantineReason::RetriesExhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Retries allowed per item beyond the initial attempt.
    pub max_retries: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            max_retries: 2,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry number `attempt` (0-based): bounded
    /// exponential, saturating at the cap.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base
            .checked_mul(factor)
            .map_or(self.cap, |d| d.min(self.cap))
    }

    /// Whether another retry is allowed after `failures` failed attempts
    /// (the initial attempt counts as the first failure).
    pub fn allows_retry(&self, failures: u32) -> bool {
        failures <= self.max_retries
    }
}

/// A per-worker penalty/reward health tracker mirroring the paper's
/// Alg. 2: every failure (panic or timeout attributable to the worker)
/// raises the penalty counter and resets the reward counter; every
/// success raises the reward counter, and `reward_threshold` consecutive
/// successes decrement the penalty (forgiveness). A worker whose penalty
/// reaches `penalty_threshold` is isolated from the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerHealth {
    penalty: u32,
    reward: u32,
    penalty_threshold: u32,
    reward_threshold: u32,
}

impl WorkerHealth {
    /// A healthy tracker with the given Alg. 2 thresholds (`P`, `R`).
    pub fn new(penalty_threshold: u32, reward_threshold: u32) -> Self {
        WorkerHealth {
            penalty: 0,
            reward: 0,
            penalty_threshold: penalty_threshold.max(1),
            reward_threshold: reward_threshold.max(1),
        }
    }

    /// Records a failure; returns whether the worker is now isolated.
    pub fn record_failure(&mut self) -> bool {
        self.penalty = self.penalty.saturating_add(1);
        self.reward = 0;
        self.is_isolated()
    }

    /// Records a success, with Alg. 2 forgiveness at the reward threshold.
    pub fn record_success(&mut self) {
        self.reward += 1;
        if self.reward >= self.reward_threshold {
            self.reward = 0;
            self.penalty = self.penalty.saturating_sub(1);
        }
    }

    /// Whether the penalty counter has reached the isolation threshold.
    pub fn is_isolated(&self) -> bool {
        self.penalty >= self.penalty_threshold
    }

    /// The current penalty counter.
    pub fn penalty(&self) -> u32 {
        self.penalty
    }
}

/// Why an experiment ended up quarantined instead of completed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// Every allowed attempt panicked; the payload message of the last one.
    Panic(String),
    /// The watchdog cancelled every allowed attempt past its deadline.
    Timeout,
    /// Transient failures exhausted the retry budget.
    RetriesExhausted,
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::Panic(msg) => write!(f, "panic: {msg}"),
            QuarantineReason::Timeout => write!(f, "watchdog timeout"),
            QuarantineReason::RetriesExhausted => write!(f, "retries exhausted"),
        }
    }
}

/// One quarantined experiment: everything needed to reproduce it locally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Index in the campaign's deterministic work list.
    pub item: usize,
    /// The experiment class label.
    pub label: String,
    /// The seed that reproduces the experiment exactly.
    pub seed: u64,
    /// Attempts spent before quarantining (including the first).
    pub attempts: u32,
    /// Why the experiment was quarantined.
    pub reason: QuarantineReason,
}

/// Per-worker accounting of a supervised campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker index in the pool.
    pub worker: usize,
    /// Experiments completed successfully on this worker.
    pub completed: u64,
    /// Attempts that panicked on this worker.
    pub panics: u64,
    /// Attempts the watchdog cancelled on this worker.
    pub timeouts: u64,
    /// Attempts that failed transiently on this worker.
    pub transients: u64,
    /// Whether the health tracker isolated this worker.
    pub isolated: bool,
}

/// The supervision outcome of one campaign: what degraded, and how.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisionSummary {
    /// Experiments that never produced a verdict, with reproduction info.
    pub quarantined: Vec<QuarantineRecord>,
    /// Total retry attempts across all items.
    pub retries: u64,
    /// Per-worker accounting, in worker order.
    pub workers: Vec<WorkerStats>,
}

impl SupervisionSummary {
    /// Whether the campaign ran without any degradation at all.
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty() && self.retries == 0 && !self.workers.iter().any(|w| w.isolated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = ChaosPlan::quiet(7);
        assert!(!plan.is_active());
        for item in 0..500 {
            assert_eq!(plan.fault(item, 0), None);
        }
        assert_eq!(plan.expected_faults(500), (0, 0, 0));
    }

    #[test]
    fn plan_rates_are_roughly_respected_and_deterministic() {
        let plan = ChaosPlan {
            seed: 99,
            panic_per_mille: 100,
            hang_per_mille: 50,
            transient_per_mille: 100,
            first_attempt_only: false,
        };
        let (p, h, t) = plan.expected_faults(2000);
        // Rates are per-mille; allow generous slack around the mean.
        assert!((100..=300).contains(&p), "panics: {p}");
        assert!((40..=180).contains(&h), "hangs: {h}");
        assert!((100..=300).contains(&t), "transients: {t}");
        // Determinism: the same (seed, item) decides the same way.
        for item in 0..2000 {
            assert_eq!(plan.fault(item, 0), plan.fault(item, 5));
        }
        assert_eq!(plan.expected_faults(2000), (p, h, t));
    }

    #[test]
    fn first_attempt_only_plans_recover_on_retry() {
        let plan = ChaosPlan {
            seed: 3,
            panic_per_mille: 500,
            hang_per_mille: 0,
            transient_per_mille: 0,
            first_attempt_only: true,
        };
        let faulted: Vec<usize> = (0..100).filter(|&i| plan.fault(i, 0).is_some()).collect();
        assert!(!faulted.is_empty());
        for item in faulted {
            assert_eq!(plan.fault(item, 1), None);
        }
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            max_retries: 3,
        };
        assert_eq!(p.delay(0), Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(20));
        assert_eq!(p.delay(2), Duration::from_millis(40));
        assert_eq!(p.delay(3), Duration::from_millis(80));
        assert_eq!(p.delay(4), Duration::from_millis(100));
        assert_eq!(p.delay(63), Duration::from_millis(100));
        assert_eq!(p.delay(64), Duration::from_millis(100));
        assert!(p.allows_retry(1) && p.allows_retry(3));
        assert!(!p.allows_retry(4));
    }

    #[test]
    fn worker_health_mirrors_alg2() {
        let mut h = WorkerHealth::new(3, 2);
        assert!(!h.is_isolated());
        assert!(!h.record_failure());
        assert!(!h.record_failure());
        assert_eq!(h.penalty(), 2);
        // Forgiveness: two consecutive successes decrement the penalty.
        h.record_success();
        assert_eq!(h.penalty(), 2);
        h.record_success();
        assert_eq!(h.penalty(), 1);
        // A failure resets the reward streak.
        h.record_success();
        assert!(!h.record_failure());
        h.record_success();
        assert_eq!(h.penalty(), 2, "streak was reset by the failure");
        // Crossing P isolates.
        assert!(h.record_failure());
        assert!(h.is_isolated());
    }

    #[test]
    fn supervision_summary_clean_detects_degradation() {
        let mut s = SupervisionSummary::default();
        assert!(s.clean());
        s.retries = 1;
        assert!(!s.clean());
        s.retries = 0;
        s.quarantined.push(QuarantineRecord {
            item: 0,
            label: "burst/1slots@s0".into(),
            seed: 1,
            attempts: 3,
            reason: QuarantineReason::Timeout,
        });
        assert!(!s.clean());
    }

    #[test]
    fn quarantine_reason_displays() {
        assert_eq!(
            QuarantineReason::Panic("boom".into()).to_string(),
            "panic: boom"
        );
        assert_eq!(QuarantineReason::Timeout.to_string(), "watchdog timeout");
        assert_eq!(
            QuarantineReason::RetriesExhausted.to_string(),
            "retries exhausted"
        );
    }
}
