//! Coverage-guided exploration of bounded fault schedules.
//!
//! Random sampling (`tests/property_based.rs`) and brute-force enumeration
//! of a tiny window (`tests/exhaustive_small_worlds.rs`) bracket the
//! scenario space from both ends; everything between them — longer windows,
//! intermittent faults interacting with the Alg. 2 penalty/reward
//! thresholds, isolation and its aftermath — is where the subtle
//! diagnosis/membership bugs hide. This module searches that middle ground
//! the way a coverage-guided fuzzer searches program paths:
//!
//! 1. a **schedule generator** draws bounded [`FaultSchedule`]s and mutates
//!    promising ones (add/remove/widen a fault, flip its class among
//!    benign/symmetric-malicious/asymmetric, shift its round/slot, convert
//!    it to an intermittent fault à la [`crate::burst::IntermittentFault`]);
//! 2. a **state fingerprint** hashes the protocol state at every round end
//!    (consistent health vectors plus penalty/reward counters of every
//!    node) with the stable [`Fnv1a64`] hash, deduping schedules that only
//!    reach already-seen states and keeping the ones that discover new
//!    states on the mutation frontier;
//! 3. every executed schedule is checked against the full **oracle stack**:
//!    Theorem 1 ([`check_diag_cluster`]), cross-node counter agreement
//!    ([`check_counter_consistency`]) and the Alg. 2 invariants
//!    ([`check_alg2_cluster`]);
//! 4. on a violation, a **delta-debugging shrinker** minimizes the schedule
//!    (drop faults, narrow bursts, collapse strides, simplify classes to
//!    benign) while it still fails, yielding the smallest reproducer;
//! 5. coverage-discovering schedules and shrunk counterexamples serialize
//!    (serde) into a **replayable corpus** re-executed by
//!    `tests/corpus_replay.rs` on every run.
//!
//! Everything is deterministic under a fixed seed: the generator draws from
//! the vendored `StdRng`, schedule execution itself is RNG-free, and the
//! fingerprints are platform-stable.
//!
//! The search is **protocol-generic**: a [`ProtocolUnderTest`] selector on
//! every schedule picks the base diagnosis ([`DiagJob`]), the Sec. 7
//! membership variant or the Sec. 10 low-latency variant; the membership
//! and low-latency execution paths and their oracle stacks (view
//! synchrony, clique liveness, latency bounds) live in [`crate::oracles`].
//! Generation, mutation, shrinking and the corpus format are shared by all
//! three variants.

use std::collections::HashSet;
use std::hash::Hasher;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use tt_core::properties::{
    check_alg2_cluster, check_counter_consistency, check_diag_cluster, checkable_rounds,
    FaultCounts,
};
use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{
    Cluster, ClusterBuilder, FaultPipeline, Fnv1a64, NodeId, RoundIndex, SlotEffect, TxCtx,
};

/// The diagnosis lag of the conservative send alignment used throughout
/// the campaign configs (and by this explorer).
pub const LAG: u64 = 3;

/// The first round in which a scheduled fault may fire (earlier rounds are
/// still filling the diagnosis pipeline).
pub const MIN_FAULT_ROUND: u64 = 4;

/// Which protocol variant a schedule executes against.
///
/// The selector travels *on the schedule* (not just the session config) so
/// a corpus can mix variants and every file replays against the oracles
/// that produced it. `Diag` schedules serialize without the selector,
/// keeping the ids (and corpus file names) of every pre-variant schedule
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolUnderTest {
    /// The base diagnosis protocol ([`DiagJob`]): Theorem 1, cross-node
    /// counter agreement and the Alg. 2 invariants.
    Diag,
    /// The Sec. 7 membership variant ([`tt_core::MembershipJob`]):
    /// Theorem 2 view synchrony, wrongful-exclusion, membership liveness
    /// and clique exclusion (see [`crate::oracles`]).
    Membership,
    /// The Sec. 10 low-latency variant ([`tt_core::lowlat::LowLatCluster`]):
    /// 1-round diagnostic / 2-round membership latency bounds plus the
    /// per-slot Theorem 1 analogue.
    Lowlat,
}

impl ProtocolUnderTest {
    /// The CLI spelling (`--protocol diag|membership|lowlat`).
    pub fn as_str(self) -> &'static str {
        match self {
            ProtocolUnderTest::Diag => "diag",
            ProtocolUnderTest::Membership => "membership",
            ProtocolUnderTest::Lowlat => "lowlat",
        }
    }

    /// Parses the CLI spelling; `None` for anything else.
    pub fn parse_cli(s: &str) -> Option<Self> {
        match s {
            "diag" => Some(ProtocolUnderTest::Diag),
            "membership" => Some(ProtocolUnderTest::Membership),
            "lowlat" => Some(ProtocolUnderTest::Lowlat),
            _ => None,
        }
    }
}

/// The class of one scheduled fault, mirroring the paper's fault taxonomy
/// (benign / symmetric malicious / asymmetric).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduledClass {
    /// Every receiver locally detects the slot as invalid.
    Benign,
    /// Every receiver accepts the same wrong payload.
    Malicious {
        /// The byte delivered instead of the true syndrome frame.
        payload: u8,
    },
    /// Only the listed receivers detect the fault (SOS-like).
    Asymmetric {
        /// 0-based indices of the detecting receivers: a nonempty strict
        /// subset of the `n - 1` receivers.
        detected_by: Vec<usize>,
    },
}

/// One fault in a schedule: `hits` occurrences in the sending slot of
/// `node`, starting at `round`, spaced `stride` rounds apart.
///
/// `stride == 1` is a contiguous burst; `stride > 1` models an
/// intermittent fault (cf. [`crate::burst::IntermittentFault`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// The afflicted sender (1-based node id).
    pub node: u32,
    /// The first affected round.
    pub round: u64,
    /// Number of occurrences (≥ 1).
    pub hits: u64,
    /// Rounds between consecutive occurrences (≥ 1).
    pub stride: u64,
    /// What happens to the slot.
    pub class: ScheduledClass,
}

impl ScheduledFault {
    /// The last round this fault fires in.
    pub fn last_round(&self) -> u64 {
        self.round + (self.hits - 1) * self.stride
    }

    /// Whether this fault fires in `round` on `sender`'s slot.
    pub fn covers(&self, round: u64, sender: NodeId) -> bool {
        if sender.index() != (self.node - 1) as usize || round < self.round {
            return false;
        }
        let d = round - self.round;
        d.is_multiple_of(self.stride) && d / self.stride < self.hits
    }

    /// The bus effect this fault injects.
    pub fn effect(&self) -> SlotEffect {
        match &self.class {
            ScheduledClass::Benign => SlotEffect::Benign,
            ScheduledClass::Malicious { payload } => SlotEffect::SymmetricMalicious {
                payload: Bytes::from(vec![*payload]),
            },
            ScheduledClass::Asymmetric { detected_by } => SlotEffect::Asymmetric {
                detected_by: detected_by.clone(),
                collision_ok: true,
            },
        }
    }
}

/// A bounded, fully deterministic fault scenario: the protocol parameters
/// it runs under plus the faults injected on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Cluster size.
    pub n: usize,
    /// Rounds to simulate.
    pub rounds: u64,
    /// Alg. 2 penalty threshold `P`.
    pub penalty_threshold: u64,
    /// Alg. 2 reward threshold `R`.
    pub reward_threshold: u64,
    /// The injected faults (first matching fault wins per slot).
    pub faults: Vec<ScheduledFault>,
    /// The protocol variant this schedule executes against.
    pub protocol: ProtocolUnderTest,
}

impl FaultSchedule {
    /// A stable 64-bit identity for corpus file names, derived from the
    /// serialized form.
    pub fn id(&self) -> u64 {
        let json = serde_json::to_string(self).expect("schedule serializes");
        Fnv1a64::hash_bytes(json.as_bytes())
    }
}

// Hand-written (de)serialization: `Diag` schedules omit the `protocol`
// field entirely so their serialized form — and therefore [`FaultSchedule::
// id`] and every committed corpus file name — is byte-identical to the
// pre-variant format, and pre-variant JSON deserializes as `Diag`.
impl Serialize for FaultSchedule {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let mut fields = vec![
            ("n".to_string(), self.n.to_value()),
            ("rounds".to_string(), self.rounds.to_value()),
            (
                "penalty_threshold".to_string(),
                self.penalty_threshold.to_value(),
            ),
            (
                "reward_threshold".to_string(),
                self.reward_threshold.to_value(),
            ),
            ("faults".to_string(), self.faults.to_value()),
        ];
        if self.protocol != ProtocolUnderTest::Diag {
            fields.push(("protocol".to_string(), self.protocol.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for FaultSchedule {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::{DeError, Value};
        let map = v
            .as_map()
            .ok_or_else(|| DeError::custom("FaultSchedule: expected map"))?;
        let field = |key: &str| {
            Value::get_field(map, key)
                .ok_or_else(|| DeError::custom(format!("FaultSchedule: missing field `{key}`")))
        };
        let protocol = match Value::get_field(map, "protocol") {
            Some(p) => Deserialize::from_value(p)?,
            None => ProtocolUnderTest::Diag,
        };
        Ok(FaultSchedule {
            n: Deserialize::from_value(field("n")?)?,
            rounds: Deserialize::from_value(field("rounds")?)?,
            penalty_threshold: Deserialize::from_value(field("penalty_threshold")?)?,
            reward_threshold: Deserialize::from_value(field("reward_threshold")?)?,
            faults: Deserialize::from_value(field("faults")?)?,
            protocol,
        })
    }
}

/// Executes a [`FaultSchedule`] verbatim on the bus. First matching fault
/// wins; execution uses no randomness at all.
struct SchedulePipeline {
    faults: Vec<ScheduledFault>,
}

impl FaultPipeline for SchedulePipeline {
    fn effect(&mut self, ctx: &TxCtx) -> SlotEffect {
        for f in &self.faults {
            if f.covers(ctx.round.as_u64(), ctx.sender) {
                return f.effect();
            }
        }
        SlotEffect::Correct
    }
}

/// The verdict of the full oracle stack on one executed schedule. Each
/// field names the oracle that produced it, so a counterexample's
/// violation strings say exactly which oracle fired.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleVerdict {
    /// Theorem 1 violations ([`check_diag_cluster`] or its membership /
    /// per-slot analogues), formatted.
    pub theorem1: Vec<String>,
    /// Cross-node counter divergences ([`check_counter_consistency`]).
    pub counter_divergence: Vec<String>,
    /// Alg. 2 invariant violations ([`check_alg2_cluster`]), formatted.
    pub alg2: Vec<String>,
    /// Theorem 2 view-synchrony violations (identical view sequences, no
    /// wrongful exclusion, clique agreement) — membership and lowlat runs.
    pub view_synchrony: Vec<String>,
    /// Membership- / clique-liveness violations (detectable fault ⇒ new
    /// view within two executions; minority clique accused and excluded).
    pub liveness: Vec<String>,
    /// Sec. 10 latency-bound violations (1-round diagnostic, per chain).
    pub latency: Vec<String>,
    /// Violations reported by a caller-provided extra oracle.
    pub extra: Vec<String>,
}

impl ScheduleVerdict {
    /// Whether every oracle held.
    pub fn ok(&self) -> bool {
        self.theorem1.is_empty()
            && self.counter_divergence.is_empty()
            && self.alg2.is_empty()
            && self.view_synchrony.is_empty()
            && self.liveness.is_empty()
            && self.latency.is_empty()
            && self.extra.is_empty()
    }

    /// All violations, each prefixed with its oracle's name.
    pub fn all(&self) -> Vec<String> {
        let tag = |p: &str, v: &[String]| -> Vec<String> {
            v.iter().map(|s| format!("{p}: {s}")).collect()
        };
        let mut out = tag("theorem1", &self.theorem1);
        out.extend(tag("counter-divergence", &self.counter_divergence));
        out.extend(tag("alg2", &self.alg2));
        out.extend(tag("view-synchrony", &self.view_synchrony));
        out.extend(tag("liveness", &self.liveness));
        out.extend(tag("latency", &self.latency));
        out.extend(tag("extra", &self.extra));
        out
    }
}

/// The observable result of executing one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleExec {
    /// One protocol-state fingerprint per diagnosed round (round index
    /// excluded, so revisiting a state in a later round dedupes).
    pub fingerprints: Vec<u64>,
    /// The oracle verdict.
    pub verdict: ScheduleVerdict,
}

/// An extra, caller-provided oracle run against the final cluster state
/// (used by the harness self-test to plant a deliberately weak oracle).
pub type ExtraOracle<'a> = &'a dyn Fn(&Cluster) -> Vec<String>;

/// The no-op extra oracle.
pub fn no_extra_oracle(_: &Cluster) -> Vec<String> {
    Vec::new()
}

/// A bus pipeline injecting `schedule`'s fault list verbatim (first
/// matching fault wins per slot), for callers building their own clusters
/// around a schedule — e.g. the sampled-workload observers.
pub fn schedule_pipeline(schedule: &FaultSchedule) -> Box<dyn FaultPipeline> {
    Box::new(SchedulePipeline {
        faults: schedule.faults.clone(),
    })
}

/// Executes `schedule` and checks it against the built-in oracle stack.
pub fn execute_schedule(schedule: &FaultSchedule) -> ScheduleExec {
    execute_schedule_with_oracle(schedule, &no_extra_oracle)
}

/// Like [`execute_schedule`], with an additional caller-provided oracle.
///
/// Dispatches on the schedule's [`ProtocolUnderTest`]. The extra oracle
/// receives the round-granular [`Cluster`] for the diag and membership
/// variants; the slot-granular lowlat variant runs no extra oracle (its
/// cluster is a different type).
pub fn execute_schedule_with_oracle(
    schedule: &FaultSchedule,
    extra: ExtraOracle<'_>,
) -> ScheduleExec {
    match schedule.protocol {
        ProtocolUnderTest::Diag => execute_diag_schedule(schedule, extra),
        ProtocolUnderTest::Membership => {
            crate::oracles::execute_membership_schedule(schedule, extra)
        }
        ProtocolUnderTest::Lowlat => crate::oracles::execute_lowlat_schedule(schedule),
    }
}

/// The base-protocol execution path: a cluster of [`DiagJob`]s checked by
/// the Theorem 1 / counter-agreement / Alg. 2 stack.
fn execute_diag_schedule(schedule: &FaultSchedule, extra: ExtraOracle<'_>) -> ScheduleExec {
    let cfg = ProtocolConfig::builder(schedule.n)
        .penalty_threshold(schedule.penalty_threshold)
        .reward_threshold(schedule.reward_threshold)
        .build()
        .expect("schedule carries a valid protocol config");
    let pipeline = SchedulePipeline {
        faults: schedule.faults.clone(),
    };
    let mut cluster = ClusterBuilder::new(schedule.n)
        .round_length(round_for(schedule.n))
        .build_with_jobs(
            move |id| Box::new(DiagJob::new(id, cfg.clone()).with_counter_trace()),
            Box::new(pipeline),
        );
    cluster.run_rounds(schedule.rounds);
    let all: Vec<NodeId> = NodeId::all(schedule.n).collect();
    let checked = effective_hypothesis_rounds(&cluster, schedule);
    let all_within = checked.len() == checkable_rounds(schedule.rounds, LAG).count();
    let report = check_diag_cluster(&cluster, &all, checked);
    // Cross-node counter agreement is a consequence of the *consistency*
    // property, which Theorem 1 only guarantees while the fault hypothesis
    // holds — and a divergence born in an out-of-hypothesis round persists
    // in the counters forever. Only apply the oracle to runs that stay
    // within the hypothesis throughout.
    let counter_divergence = if all_within {
        check_counter_consistency(&cluster, &all)
            .iter()
            .map(|(a, b)| format!("counters diverge between {a} and {b}"))
            .collect()
    } else {
        Vec::new()
    };
    let verdict = ScheduleVerdict {
        theorem1: report.violations.iter().map(|v| format!("{v:?}")).collect(),
        counter_divergence,
        alg2: check_alg2_cluster(&cluster, &all)
            .iter()
            .map(|v| format!("{v:?}"))
            .collect(),
        view_synchrony: Vec::new(),
        liveness: Vec::new(),
        latency: Vec::new(),
        extra: extra(&cluster),
    };
    ScheduleExec {
        fingerprints: fingerprints(&cluster, schedule.n),
        verdict,
    }
}

/// A round length close to the paper's 2.5 ms that divides into `n` slots.
pub fn round_for(n: usize) -> tt_sim::Nanos {
    tt_sim::Nanos::from_nanos(2_500_000 - (2_500_000 % n as u64))
}

/// The prefix of diagnosed rounds for which Theorem 1's guarantees are
/// owed: every checkable round up to (excluding) the first one whose
/// execution window leaves the fault hypothesis, counting each *isolated*
/// node as one standing benign faulty sender from its isolation decision
/// on.
///
/// Two subtleties, both found by the explorer itself:
///
/// * The injected-fault trace alone undercounts: once a node is isolated,
///   obedient controllers ignore its (perfectly correct) traffic, so its
///   row is missing every round — exactly a benign fault the paper's `b`
///   must cover. A lone isolated node keeps Lemma 3 alive (benign-only),
///   but combined with an asymmetric or malicious fault it can push an
///   `N = 4` cluster out of Lemma 2.
/// * Checking must stop at the first out-of-hypothesis window, not merely
///   skip it: Theorem 1 assumes the execution has stayed within the
///   hypothesis since the consistent initial state. An out-of-hypothesis
///   burst can legitimately leave *divergent* isolation decisions behind
///   (one clique convicts a storm victim past `P`, the other forgives),
///   and the paper claims no self-stabilization — the divergence persists
///   after the bus is quiet again, so no later round is attributable.
fn effective_hypothesis_rounds(cluster: &Cluster, schedule: &FaultSchedule) -> Vec<RoundIndex> {
    let n = schedule.n;
    // Earliest isolation decision per subject, across all observers (they
    // can disagree once the hypothesis has been left).
    let mut iso: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    for id in NodeId::all(n) {
        let job: &DiagJob = cluster.job_as(id).expect("every node runs a DiagJob");
        for ev in job.isolations() {
            let e = iso.entry(ev.node.index()).or_insert(u64::MAX);
            *e = (*e).min(ev.decided_at.as_u64());
        }
    }
    hypothesis_prefix(cluster, n, schedule.rounds, &iso)
}

/// The shared core of the hypothesis-prefix computation: given the
/// earliest isolation decision per subject (each isolated node counts as
/// one standing benign faulty sender from that decision on), walks the
/// checkable rounds and stops at the first whose execution window leaves
/// the fault hypothesis. Used by the diag path above and by the membership
/// oracle stack ([`crate::oracles`]), which collects the isolation map
/// from [`tt_core::MembershipJob`]s instead.
pub(crate) fn hypothesis_prefix(
    cluster: &Cluster,
    n: usize,
    rounds: u64,
    iso: &std::collections::BTreeMap<usize, u64>,
) -> Vec<RoundIndex> {
    let trace = cluster.trace();
    let mut out = Vec::new();
    for r in checkable_rounds(rounds, LAG) {
        let mut counts = FaultCounts::default();
        for d in 0..=LAG {
            counts.accumulate(FaultCounts::of_round(trace, r + d));
        }
        counts.benign += iso.values().filter(|&&d| d <= r.as_u64() + LAG).count();
        if !(counts.lemma2_holds(n) || counts.lemma3_holds()) {
            break;
        }
        out.push(r);
    }
    out
}

/// Hashes the cluster-wide protocol state at each diagnosed round: every
/// node's consistent health vector plus its penalty/reward counters. The
/// round index deliberately does not feed the hash, so a state reached
/// again later (e.g. "all healthy, all counters zero") dedupes.
fn fingerprints(cluster: &Cluster, n: usize) -> Vec<u64> {
    let jobs: Vec<&DiagJob> = NodeId::all(n)
        .map(|id| cluster.job_as(id).expect("every node runs a DiagJob"))
        .collect();
    let steps = jobs.iter().map(|j| j.health_log().len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(steps);
    for i in 0..steps {
        let mut h = Fnv1a64::new();
        for job in &jobs {
            match job.health_log().get(i) {
                Some(rec) => {
                    h.write(&[1]);
                    for &b in &rec.health {
                        h.write(&[u8::from(b)]);
                    }
                }
                None => h.write(&[0]),
            }
            match job.counter_trace().get(i) {
                Some(s) => {
                    for &p in &s.penalties {
                        h.write(&p.to_le_bytes());
                    }
                    for &r in &s.rewards {
                        h.write(&r.to_le_bytes());
                    }
                }
                None => h.write(&[2]),
            }
        }
        out.push(h.finish());
    }
    out
}

/// How the explorer draws the next schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Mutate schedules from the coverage frontier (default).
    CoverageGuided,
    /// Draw every schedule fresh at random (the baseline the coverage
    /// assertion in `tests/explorer.rs` compares against).
    Random,
}

/// Exploration parameters. All bounds are inclusive of protocol warm-up:
/// faults fire in `[MIN_FAULT_ROUND, rounds - LAG - 2]` so every injection
/// lands in an oracle-checkable round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExploreConfig {
    /// Cluster size (≥ 4).
    pub n: usize,
    /// Rounds per schedule execution.
    pub rounds: u64,
    /// Alg. 2 penalty threshold `P` for explored schedules.
    pub penalty_threshold: u64,
    /// Alg. 2 reward threshold `R` for explored schedules.
    pub reward_threshold: u64,
    /// Maximum faults per schedule.
    pub max_faults: usize,
    /// Number of schedule executions (shrinking is not counted).
    pub budget: u64,
    /// Seed of all generator/mutator randomness.
    pub seed: u64,
    /// Generation strategy.
    pub strategy: Strategy,
    /// The protocol variant generated schedules execute against.
    pub protocol: ProtocolUnderTest,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            n: 4,
            rounds: 24,
            // Low thresholds on purpose: isolation and forgiveness are
            // reachable, so the counter state space is worth exploring.
            penalty_threshold: 3,
            reward_threshold: 2,
            max_faults: 6,
            budget: 150,
            seed: 0xD1A6_05E5,
            strategy: Strategy::CoverageGuided,
            protocol: ProtocolUnderTest::Diag,
        }
    }
}

// Hand-written so checkpoints written before the protocol selector existed
// (no `protocol` field) keep resuming: a missing field means `Diag`.
impl Deserialize for ExploreConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::{DeError, Value};
        let map = v
            .as_map()
            .ok_or_else(|| DeError::custom("ExploreConfig: expected map"))?;
        let field = |key: &str| {
            Value::get_field(map, key)
                .ok_or_else(|| DeError::custom(format!("ExploreConfig: missing field `{key}`")))
        };
        let protocol = match Value::get_field(map, "protocol") {
            Some(p) => Deserialize::from_value(p)?,
            None => ProtocolUnderTest::Diag,
        };
        Ok(ExploreConfig {
            n: Deserialize::from_value(field("n")?)?,
            rounds: Deserialize::from_value(field("rounds")?)?,
            penalty_threshold: Deserialize::from_value(field("penalty_threshold")?)?,
            reward_threshold: Deserialize::from_value(field("reward_threshold")?)?,
            max_faults: Deserialize::from_value(field("max_faults")?)?,
            budget: Deserialize::from_value(field("budget")?)?,
            seed: Deserialize::from_value(field("seed")?)?,
            strategy: Deserialize::from_value(field("strategy")?)?,
            protocol,
        })
    }
}

impl ExploreConfig {
    /// The last round a fault may fire in.
    fn max_fault_round(&self) -> u64 {
        max_fault_round(self.rounds)
    }
}

/// The last round a fault may fire in so that its diagnosis (and any
/// isolation decision `LAG` rounds later) still lands within a `rounds`
/// budget.
pub fn max_fault_round(rounds: u64) -> u64 {
    rounds.saturating_sub(LAG + 2).max(MIN_FAULT_ROUND)
}

/// A violation found by the explorer, with its delta-debugged reproducer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// The schedule the explorer originally tripped on.
    pub original: FaultSchedule,
    /// The minimized schedule (still failing the same oracle stack).
    pub shrunk: FaultSchedule,
    /// The violations the shrunk schedule produces.
    pub violations: Vec<String>,
    /// Schedule executions the shrinker spent on this counterexample.
    pub shrink_steps: u64,
}

/// The outcome of one exploration run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Schedules executed (shrinking excluded).
    pub executed: u64,
    /// Distinct protocol-state fingerprints reached.
    pub unique_states: u64,
    /// Every schedule that discovered at least one new state, in discovery
    /// order — the replayable corpus.
    pub corpus: Vec<FaultSchedule>,
    /// Violations found, each minimized by the shrinker.
    pub counterexamples: Vec<Counterexample>,
    /// Total schedule executions spent shrinking.
    pub shrink_steps: u64,
}

/// Explores with the built-in oracle stack and no seed corpus.
pub fn explore(cfg: &ExploreConfig) -> ExploreReport {
    explore_with(cfg, &[], &no_extra_oracle)
}

/// Explores from an optional seed corpus with an optional extra oracle.
///
/// Seed schedules are executed first (consuming budget) so their coverage
/// primes the frontier; generation then follows `cfg.strategy`. The run is
/// a pure function of `(cfg, seeds)`.
pub fn explore_with(
    cfg: &ExploreConfig,
    seeds: &[FaultSchedule],
    extra: ExtraOracle<'_>,
) -> ExploreReport {
    let mut session = Explorer::new(cfg, seeds);
    while session.step(extra) {}
    session.into_report()
}

/// A resumable exploration session: the explicit loop state behind
/// [`explore_with`], one schedule execution per [`Explorer::step`].
///
/// The session can be snapshotted between steps with
/// [`Explorer::checkpoint`] and rebuilt with [`Explorer::from_checkpoint`];
/// because the snapshot carries the exact RNG stream position alongside
/// the coverage set, frontier and report, a resumed session continues
/// *byte-identically* to one that was never interrupted.
pub struct Explorer {
    cfg: ExploreConfig,
    rng: StdRng,
    seen: HashSet<u64>,
    frontier: Vec<FaultSchedule>,
    /// Not-yet-executed seed schedules, as a stack (last = next).
    pending: Vec<FaultSchedule>,
    report: ExploreReport,
}

impl std::fmt::Debug for Explorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Explorer")
            .field("executed", &self.report.executed)
            .field("budget", &self.cfg.budget)
            .field("unique_states", &self.seen.len())
            .finish()
    }
}

impl Explorer {
    /// Starts a fresh session over `cfg`, priming the queue with `seeds`.
    ///
    /// # Panics
    ///
    /// Panics on configurations too small to check anything (`n < 4` or
    /// `rounds <= 2 * LAG + 4`), exactly like [`explore_with`].
    pub fn new(cfg: &ExploreConfig, seeds: &[FaultSchedule]) -> Self {
        assert!(cfg.n >= 4, "explorer needs n >= 4");
        assert!(
            cfg.rounds > 2 * LAG + 4,
            "rounds too short to check anything"
        );
        let mut pending = seeds.to_vec();
        pending.reverse();
        Explorer {
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(cfg.seed),
            seen: HashSet::new(),
            frontier: Vec::new(),
            pending,
            report: ExploreReport::default(),
        }
    }

    /// Rebuilds a session from a snapshot taken by [`Explorer::checkpoint`].
    ///
    /// # Errors
    ///
    /// Rejects snapshots with an unknown version or a malformed RNG state
    /// (both indicate a checkpoint from an incompatible build).
    pub fn from_checkpoint(cp: &crate::checkpoint::ExploreCheckpoint) -> Result<Self, String> {
        if cp.version != crate::checkpoint::CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} unsupported (expected {})",
                cp.version,
                crate::checkpoint::CHECKPOINT_VERSION
            ));
        }
        if !cp.rng.is_well_formed() {
            return Err("checkpoint RNG state is malformed".into());
        }
        Ok(Explorer {
            cfg: cp.cfg.clone(),
            rng: cp.rng.restore(),
            seen: cp.seen.iter().copied().collect(),
            frontier: cp.frontier.clone(),
            pending: cp.pending.clone(),
            report: cp.report.clone(),
        })
    }

    /// Snapshots the complete session state between steps.
    pub fn checkpoint(&self) -> crate::checkpoint::ExploreCheckpoint {
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        crate::checkpoint::ExploreCheckpoint {
            version: crate::checkpoint::CHECKPOINT_VERSION,
            cfg: self.cfg.clone(),
            pending: self.pending.clone(),
            seen,
            frontier: self.frontier.clone(),
            report: self.report.clone(),
            rng: crate::checkpoint::RngState::capture(&self.rng),
        }
    }

    /// Schedule executions completed so far (shrinking excluded).
    pub fn executed(&self) -> u64 {
        self.report.executed
    }

    /// Whether the execution budget has been spent.
    pub fn done(&self) -> bool {
        self.report.executed >= self.cfg.budget
    }

    /// Draws the next candidate: the seed queue first, then the frontier
    /// or a fresh random schedule, per the strategy.
    fn draw_schedule(&mut self) -> FaultSchedule {
        let cfg = &self.cfg;
        match self.pending.pop() {
            Some(s) => s,
            None => match cfg.strategy {
                Strategy::Random => random_schedule(cfg, &mut self.rng),
                Strategy::CoverageGuided => {
                    // Mostly mutate the frontier (stacking a few operators
                    // for diversity), but keep a slice of fresh random
                    // schedules so the search never fixates on one basin.
                    if self.frontier.is_empty() || self.rng.gen_range(0..5u32) == 0 {
                        random_schedule(cfg, &mut self.rng)
                    } else {
                        let mut child =
                            self.frontier[self.rng.gen_range(0..self.frontier.len())].clone();
                        for _ in 0..self.rng.gen_range(1..=3u32) {
                            child = mutate_schedule(&child, cfg, &mut self.rng);
                        }
                        child
                    }
                }
            },
        }
    }

    /// Folds one executed schedule's coverage and verdict into the report.
    fn absorb(&mut self, schedule: FaultSchedule, exec: &ScheduleExec, extra: ExtraOracle<'_>) {
        let new_states = exec
            .fingerprints
            .iter()
            .filter(|&&fp| self.seen.insert(fp))
            .count();
        if !exec.verdict.ok() {
            let (shrunk, steps) = shrink_schedule(&schedule, extra);
            self.report.shrink_steps += steps;
            let shrunk_exec = execute_schedule_with_oracle(&shrunk, extra);
            if !self
                .report
                .counterexamples
                .iter()
                .any(|c| c.shrunk == shrunk)
            {
                self.report.counterexamples.push(Counterexample {
                    original: schedule.clone(),
                    shrunk,
                    violations: shrunk_exec.verdict.all(),
                    shrink_steps: steps,
                });
            }
        }
        if new_states > 0 {
            self.report.corpus.push(schedule.clone());
            if self.cfg.strategy == Strategy::CoverageGuided {
                self.frontier.push(schedule);
            }
        }
        self.report.unique_states = self.seen.len() as u64;
    }

    /// Executes one schedule (drawn from the seed queue, the frontier, or
    /// fresh at random, per the strategy) and folds its coverage and
    /// verdict into the report. Returns `false` — without executing — once
    /// the budget is spent.
    pub fn step(&mut self, extra: ExtraOracle<'_>) -> bool {
        if self.done() {
            return false;
        }
        let schedule = self.draw_schedule();
        let exec = execute_schedule_with_oracle(&schedule, extra);
        self.report.executed += 1;
        self.absorb(schedule, &exec, extra);
        true
    }

    /// Evaluates a whole generation of candidate schedules through the
    /// lockstep engine ([`crate::batch_eval::execute_schedules_batched`])
    /// and spends scalar executions — with the full oracle stack — only on
    /// the candidates whose batched fingerprints reached a state the
    /// session has not seen. Returns `false` once the budget is spent.
    ///
    /// Two deliberate differences from calling [`Explorer::step`] in a
    /// loop, both consequences of generation-at-a-time evaluation:
    ///
    /// * the whole generation is drawn against one frontier/coverage
    ///   snapshot (candidates cannot build on siblings of the same
    ///   generation), so the exploration trajectory differs from the
    ///   sequential mode's — the coverage is equally valid, just a
    ///   different deterministic walk;
    /// * candidates whose every fingerprint is already known are *not*
    ///   oracle-checked (that is the point: novelty triage at batch
    ///   throughput). A violation on an already-covered trajectory would
    ///   have tripped the oracles when that coverage was first discovered.
    ///
    /// Every novel candidate's scalar re-execution asserts the batched
    /// lanes reproduced the scalar fingerprint stream exactly, so the
    /// triage can never silently diverge from ground truth.
    pub fn step_generation(&mut self, generation: usize, extra: ExtraOracle<'_>) -> bool {
        if self.done() {
            return false;
        }
        let budget_left = (self.cfg.budget - self.report.executed) as usize;
        let take = generation.clamp(1, budget_left);
        let candidates: Vec<FaultSchedule> = (0..take).map(|_| self.draw_schedule()).collect();
        self.report.executed += take as u64;
        // The lockstep engine simulates `DiagJob` lanes only; a generation
        // containing membership or lowlat schedules (from the config or a
        // mixed seed corpus) is evaluated scalar, one schedule at a time,
        // with the same absorb semantics.
        if candidates
            .iter()
            .any(|s| s.protocol != ProtocolUnderTest::Diag)
        {
            for schedule in candidates {
                let exec = execute_schedule_with_oracle(&schedule, extra);
                self.absorb(schedule, &exec, extra);
            }
            self.report.unique_states = self.seen.len() as u64;
            return true;
        }
        let batched = crate::batch_eval::execute_schedules_batched(&candidates)
            .expect("explorer schedules are engine-valid");
        for (schedule, lane_fps) in candidates.into_iter().zip(batched) {
            if lane_fps.iter().all(|fp| self.seen.contains(fp)) {
                continue;
            }
            let exec = execute_schedule_with_oracle(&schedule, extra);
            assert_eq!(
                exec.fingerprints, lane_fps,
                "lockstep lane diverged from the scalar protocol"
            );
            self.absorb(schedule, &exec, extra);
        }
        self.report.unique_states = self.seen.len() as u64;
        true
    }

    /// Consumes the session and returns the final report.
    pub fn into_report(mut self) -> ExploreReport {
        self.report.unique_states = self.seen.len() as u64;
        self.report
    }
}

/// Delta-debugs a failing schedule down to a minimal one that still fails:
/// repeatedly drop whole faults, narrow bursts (`hits -= 1`), collapse
/// strides to 1 and simplify classes to benign, keeping any reduction that
/// preserves failure, until a fixpoint.
///
/// Returns the minimized schedule and the number of executions spent.
/// `schedule` itself must fail (the caller established that).
pub fn shrink_schedule(schedule: &FaultSchedule, extra: ExtraOracle<'_>) -> (FaultSchedule, u64) {
    let mut steps = 0u64;
    let mut still_fails = |cand: &FaultSchedule| {
        steps += 1;
        !execute_schedule_with_oracle(cand, extra).verdict.ok()
    };
    let mut best = schedule.clone();
    loop {
        let mut improved = false;
        if best.faults.len() > 1 {
            for i in 0..best.faults.len() {
                let mut cand = best.clone();
                cand.faults.remove(i);
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
            if improved {
                continue;
            }
        }
        'reduce: for i in 0..best.faults.len() {
            if best.faults[i].hits > 1 {
                let mut cand = best.clone();
                cand.faults[i].hits -= 1;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                    break 'reduce;
                }
            }
            if best.faults[i].stride > 1 {
                let mut cand = best.clone();
                cand.faults[i].stride = 1;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                    break 'reduce;
                }
            }
            if best.faults[i].class != ScheduledClass::Benign {
                let mut cand = best.clone();
                cand.faults[i].class = ScheduledClass::Benign;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                    break 'reduce;
                }
            }
        }
        if !improved {
            return (best, steps);
        }
    }
}

/// Draws the deterministic random schedule of `seed` within the config's
/// bounds — the public seeded generator behind campaign workers and the
/// batched-equivalence tests (`seed` indexes an independent RNG stream, so
/// consecutive seeds give independent schedules).
pub fn seeded_schedule(cfg: &ExploreConfig, seed: u64) -> FaultSchedule {
    random_schedule(cfg, &mut StdRng::seed_from_u64(seed))
}

/// Draws a fresh random schedule within the config's bounds.
fn random_schedule(cfg: &ExploreConfig, rng: &mut StdRng) -> FaultSchedule {
    let k = rng.gen_range(1..=cfg.max_faults);
    let faults = (0..k).map(|_| random_fault(cfg, rng)).collect();
    FaultSchedule {
        n: cfg.n,
        rounds: cfg.rounds,
        penalty_threshold: cfg.penalty_threshold,
        reward_threshold: cfg.reward_threshold,
        faults,
        protocol: cfg.protocol,
    }
}

/// The `CliquePartition` fault list (cf. [`crate::malicious::CliquePartition`])
/// as schedule faults: every sender *outside* the clique is hit by an
/// asymmetric fault detected only by the clique members, so the clique
/// perceives the rest of the cluster as faulty while the majority sees a
/// clean bus — the adversarial scenario behind Sec. 7's minority-clique
/// exclusion. `clique` holds 0-based node indices; it must be a nonempty
/// strict subset of the cluster.
pub fn clique_partition_faults(
    n: usize,
    clique: &[usize],
    round: u64,
    hits: u64,
) -> Vec<ScheduledFault> {
    assert!(
        !clique.is_empty() && clique.len() < n,
        "clique must be a nonempty strict subset"
    );
    let mut clique = clique.to_vec();
    clique.sort_unstable();
    clique.dedup();
    (1..=n as u32)
        .filter(|&s| !clique.contains(&((s - 1) as usize)))
        .map(|s| ScheduledFault {
            node: s,
            round,
            hits,
            stride: 1,
            class: ScheduledClass::Asymmetric {
                detected_by: clique.clone(),
            },
        })
        .collect()
}

fn random_fault(cfg: &ExploreConfig, rng: &mut StdRng) -> ScheduledFault {
    let node = rng.gen_range(1..=cfg.n as u32);
    let mut f = ScheduledFault {
        node,
        round: rng.gen_range(MIN_FAULT_ROUND..=cfg.max_fault_round()),
        hits: rng.gen_range(1..=2u64),
        stride: 1,
        class: random_class(cfg.n, node, rng),
    };
    clamp_fault(&mut f, cfg);
    f
}

fn random_class(n: usize, node: u32, rng: &mut StdRng) -> ScheduledClass {
    match rng.gen_range(0..3u32) {
        0 => ScheduledClass::Benign,
        1 => ScheduledClass::Malicious { payload: rng.gen() },
        _ => ScheduledClass::Asymmetric {
            detected_by: random_subset(n, node, rng),
        },
    }
}

/// A nonempty strict subset of the receivers of `sender` (0-based).
fn random_subset(n: usize, sender: u32, rng: &mut StdRng) -> Vec<usize> {
    let mut candidates: Vec<usize> = (0..n).filter(|&i| i != (sender - 1) as usize).collect();
    let size = rng.gen_range(1..candidates.len());
    let mut out = Vec::with_capacity(size);
    for _ in 0..size {
        out.push(candidates.swap_remove(rng.gen_range(0..candidates.len())));
    }
    out.sort_unstable();
    out
}

/// Applies one mutation operator to a copy of `parent`.
fn mutate_schedule(parent: &FaultSchedule, cfg: &ExploreConfig, rng: &mut StdRng) -> FaultSchedule {
    let mut s = parent.clone();
    let op = rng.gen_range(0..7u32);
    if op == 0 && s.faults.len() < cfg.max_faults {
        let f = random_fault(cfg, rng);
        s.faults.push(f);
    } else if op == 1 && s.faults.len() > 1 {
        let i = rng.gen_range(0..s.faults.len());
        s.faults.remove(i);
    } else if s.faults.is_empty() {
        s.faults.push(random_fault(cfg, rng));
    } else {
        let i = rng.gen_range(0..s.faults.len());
        let n = cfg.n;
        let f = &mut s.faults[i];
        match op {
            // Flip the fault class along the paper's taxonomy.
            3 => {
                f.class = match &f.class {
                    ScheduledClass::Benign => ScheduledClass::Malicious { payload: rng.gen() },
                    ScheduledClass::Malicious { .. } => ScheduledClass::Asymmetric {
                        detected_by: random_subset(n, f.node, rng),
                    },
                    ScheduledClass::Asymmetric { .. } => ScheduledClass::Benign,
                };
            }
            // Shift the fault one round earlier or later.
            4 => {
                f.round = if rng.gen_range(0..2u32) == 0 {
                    f.round.saturating_sub(1)
                } else {
                    f.round + 1
                };
            }
            // Move the fault to another sending slot.
            5 => f.node = rng.gen_range(1..=n as u32),
            // Convert to an intermittent fault.
            6 => {
                f.stride = rng.gen_range(2..=3u64);
                f.hits = f.hits.max(2);
            }
            // Widen the burst (op 2, and the fallback when 0/1 don't apply).
            _ => f.hits += 1,
        }
    }
    for f in &mut s.faults {
        clamp_fault(f, cfg);
    }
    s
}

/// Clamps a fault back into the config's bounds after mutation: the whole
/// occurrence window must lie in `[MIN_FAULT_ROUND, max_fault_round]`, and
/// an asymmetric subset must stay a nonempty strict receiver subset.
fn clamp_fault(f: &mut ScheduledFault, cfg: &ExploreConfig) {
    let n = cfg.n;
    f.node = f.node.clamp(1, n as u32);
    f.hits = f.hits.max(1);
    f.stride = f.stride.max(1);
    f.round = f.round.clamp(MIN_FAULT_ROUND, cfg.max_fault_round());
    while f.hits > 1 && f.last_round() > cfg.max_fault_round() {
        f.hits -= 1;
    }
    if let ScheduledClass::Asymmetric { detected_by } = &mut f.class {
        let sender = (f.node - 1) as usize;
        detected_by.retain(|&i| i < n && i != sender);
        detected_by.sort_unstable();
        detected_by.dedup();
        detected_by.truncate(n - 2);
        if detected_by.is_empty() {
            // Deterministic repair: detect by the first receiver.
            detected_by.push(usize::from(sender == 0));
        }
    }
}

/// Writes one schedule into `dir` as pretty-printed JSON named
/// `<prefix>-<id>.json`, creating the directory if needed. Returns the
/// path written.
pub fn save_schedule(
    dir: &Path,
    prefix: &str,
    schedule: &FaultSchedule,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut json = serde_json::to_string_pretty(schedule).expect("schedule serializes");
    json.push('\n');
    let path = dir.join(format!("{prefix}-{:016x}.json", schedule.id()));
    std::fs::write(&path, json.as_bytes())?;
    Ok(path)
}

/// Loads every `*.json` schedule in `dir`, sorted by file name for
/// deterministic replay order. A missing directory is an empty corpus.
pub fn load_corpus(dir: &Path) -> std::io::Result<Vec<(PathBuf, FaultSchedule)>> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let data = std::fs::read_to_string(&path)?;
        let schedule: FaultSchedule = serde_json::from_str(&data).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        out.push((path, schedule));
    }
    Ok(out)
}

/// Convenience for tests and the CLI: the diagnosed rounds this explorer
/// checks for a given total.
pub fn explored_rounds(rounds: u64) -> impl Iterator<Item = RoundIndex> {
    checkable_rounds(rounds, LAG)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExploreConfig {
        ExploreConfig::default()
    }

    #[test]
    fn covers_handles_strides() {
        let f = ScheduledFault {
            node: 2,
            round: 6,
            hits: 3,
            stride: 2,
            class: ScheduledClass::Benign,
        };
        let hit = |r| f.covers(r, NodeId::new(2));
        assert!(hit(6) && hit(8) && hit(10));
        assert!(!hit(5) && !hit(7) && !hit(12));
        assert!(!f.covers(6, NodeId::new(1)));
        assert_eq!(f.last_round(), 10);
    }

    #[test]
    fn generated_schedules_stay_in_bounds() {
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = random_schedule(&cfg, &mut rng);
            assert!(!s.faults.is_empty() && s.faults.len() <= cfg.max_faults);
            for f in &s.faults {
                assert!((1..=cfg.n as u32).contains(&f.node));
                assert!(f.round >= MIN_FAULT_ROUND);
                assert!(f.last_round() <= cfg.max_fault_round());
                if let ScheduledClass::Asymmetric { detected_by } = &f.class {
                    assert!(!detected_by.is_empty());
                    assert!(detected_by.len() <= cfg.n - 2);
                    assert!(detected_by.iter().all(|&i| i != (f.node - 1) as usize));
                }
            }
        }
    }

    #[test]
    fn mutants_stay_in_bounds() {
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = random_schedule(&cfg, &mut rng);
        for _ in 0..300 {
            s = mutate_schedule(&s, &cfg, &mut rng);
            assert!(!s.faults.is_empty() && s.faults.len() <= cfg.max_faults);
            for f in &s.faults {
                assert!(f.round >= MIN_FAULT_ROUND && f.last_round() <= cfg.max_fault_round());
            }
        }
    }

    #[test]
    fn empty_schedule_passes_all_oracles() {
        let s = FaultSchedule {
            n: 4,
            rounds: 16,
            penalty_threshold: 100,
            reward_threshold: 100,
            faults: Vec::new(),
            protocol: ProtocolUnderTest::Diag,
        };
        for protocol in [
            ProtocolUnderTest::Diag,
            ProtocolUnderTest::Membership,
            ProtocolUnderTest::Lowlat,
        ] {
            let s = FaultSchedule {
                protocol,
                ..s.clone()
            };
            let exec = execute_schedule(&s);
            assert!(exec.verdict.ok(), "{protocol:?}: {:?}", exec.verdict.all());
            assert!(!exec.fingerprints.is_empty(), "{protocol:?}");
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = random_schedule(&cfg(), &mut rng);
        assert_eq!(execute_schedule(&s), execute_schedule(&s));
    }

    #[test]
    fn schedule_roundtrips_through_json() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = random_schedule(&cfg(), &mut rng);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.id(), back.id());
    }

    #[test]
    fn isolation_heavy_schedule_still_satisfies_oracles() {
        // Enough hits on one node to push it past P = 3 and isolate it.
        let s = FaultSchedule {
            n: 4,
            rounds: 24,
            penalty_threshold: 3,
            reward_threshold: 2,
            faults: vec![ScheduledFault {
                node: 2,
                round: 5,
                hits: 6,
                stride: 1,
                class: ScheduledClass::Benign,
            }],
            protocol: ProtocolUnderTest::Diag,
        };
        let exec = execute_schedule(&s);
        assert!(exec.verdict.ok(), "{:?}", exec.verdict.all());
    }

    #[test]
    fn diag_schedules_keep_the_pre_variant_serialized_form() {
        // Diag schedules must omit the `protocol` field so every committed
        // corpus file name (id = hash of the JSON) stays valid.
        let mut rng = StdRng::seed_from_u64(4);
        let s = random_schedule(&cfg(), &mut rng);
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("protocol"), "{json}");
        // And pre-variant JSON (no `protocol` field) loads as Diag.
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back.protocol, ProtocolUnderTest::Diag);
    }

    #[test]
    fn variant_schedules_roundtrip_with_their_protocol() {
        let mut rng = StdRng::seed_from_u64(4);
        for protocol in [ProtocolUnderTest::Membership, ProtocolUnderTest::Lowlat] {
            let s = FaultSchedule {
                protocol,
                ..random_schedule(&cfg(), &mut rng)
            };
            let json = serde_json::to_string(&s).unwrap();
            assert!(json.contains("protocol"), "{json}");
            let back: FaultSchedule = serde_json::from_str(&json).unwrap();
            assert_eq!(s, back);
            assert_eq!(s.id(), back.id());
        }
    }

    #[test]
    fn variant_execution_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(9);
        for protocol in [ProtocolUnderTest::Membership, ProtocolUnderTest::Lowlat] {
            let s = FaultSchedule {
                protocol,
                ..random_schedule(&cfg(), &mut rng)
            };
            assert_eq!(execute_schedule(&s), execute_schedule(&s));
        }
    }

    #[test]
    fn protocol_cli_spellings_roundtrip() {
        for p in [
            ProtocolUnderTest::Diag,
            ProtocolUnderTest::Membership,
            ProtocolUnderTest::Lowlat,
        ] {
            assert_eq!(ProtocolUnderTest::parse_cli(p.as_str()), Some(p));
        }
        assert_eq!(ProtocolUnderTest::parse_cli("quorum"), None);
    }

    #[test]
    fn clique_partition_faults_build_the_asymmetric_pattern() {
        let faults = clique_partition_faults(5, &[2], 8, 2);
        assert_eq!(faults.len(), 4, "every sender outside the clique");
        for f in &faults {
            assert_ne!(f.node, 3, "clique member 2 (node 3) is not a sender");
            assert_eq!(f.round, 8);
            assert_eq!(f.hits, 2);
            assert_eq!(
                f.class,
                ScheduledClass::Asymmetric {
                    detected_by: vec![2]
                }
            );
        }
    }

    #[test]
    fn shrinker_minimizes_a_planted_weak_oracle_failure() {
        // A deliberately weak oracle: "no node is ever convicted". Any
        // detected fault violates it, so the minimum is one single-hit
        // benign fault.
        let weak = |cluster: &Cluster| -> Vec<String> {
            let job: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
            if job
                .health_log()
                .iter()
                .any(|h| h.health.iter().any(|&b| !b))
            {
                vec!["weakened-oracle violation: somebody was convicted".into()]
            } else {
                Vec::new()
            }
        };
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = cfg();
        // Find a failing schedule (any with a detectable fault).
        let failing = loop {
            let s = random_schedule(&cfg, &mut rng);
            if !execute_schedule_with_oracle(&s, &weak).verdict.ok() {
                break s;
            }
        };
        let (shrunk, steps) = shrink_schedule(&failing, &weak);
        assert!(steps > 0);
        assert_eq!(shrunk.faults.len(), 1, "{shrunk:?}");
        assert_eq!(shrunk.faults[0].hits, 1, "{shrunk:?}");
        assert_eq!(shrunk.faults[0].stride, 1, "{shrunk:?}");
        assert!(!execute_schedule_with_oracle(&shrunk, &weak).verdict.ok());
    }

    #[test]
    fn corpus_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("tt-fault-explore-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_schedule(&cfg(), &mut rng);
        let b = random_schedule(&cfg(), &mut rng);
        save_schedule(&dir, "sched", &a).unwrap();
        save_schedule(&dir, "sched", &b).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded.iter().any(|(_, s)| *s == a));
        assert!(loaded.iter().any(|(_, s)| *s == b));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_dir_is_empty() {
        let dir = std::env::temp_dir().join("tt-fault-explore-no-such-dir");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_corpus(&dir).unwrap().is_empty());
    }

    #[test]
    fn small_exploration_is_deterministic() {
        let cfg = ExploreConfig {
            budget: 25,
            ..cfg()
        };
        let a = explore(&cfg);
        let b = explore(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.executed, 25);
        assert!(a.unique_states > 0);
        assert!(a.counterexamples.is_empty(), "{:?}", a.counterexamples);
    }

    #[test]
    fn generation_stepping_is_deterministic_and_covers_states() {
        let cfg = ExploreConfig {
            budget: 40,
            ..cfg()
        };
        let run = || {
            let mut session = Explorer::new(&cfg, &[]);
            while session.step_generation(16, &no_extra_oracle) {}
            session.into_report()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.executed, 40, "budget fully spent in generations");
        assert!(a.unique_states > 0);
        assert!(a.counterexamples.is_empty(), "{:?}", a.counterexamples);
        assert!(!a.corpus.is_empty(), "novel schedules reached the corpus");
    }

    #[test]
    fn generation_stepping_respects_the_budget_tail() {
        let cfg = ExploreConfig { budget: 5, ..cfg() };
        let mut session = Explorer::new(&cfg, &[]);
        assert!(session.step_generation(3, &no_extra_oracle));
        assert_eq!(session.executed(), 3);
        assert!(session.step_generation(16, &no_extra_oracle), "clamps to 2");
        assert_eq!(session.executed(), 5);
        assert!(!session.step_generation(16, &no_extra_oracle));
    }

    #[test]
    fn seeded_schedules_are_stable_and_distinct() {
        let cfg = cfg();
        assert_eq!(seeded_schedule(&cfg, 7), seeded_schedule(&cfg, 7));
        assert_ne!(seeded_schedule(&cfg, 7), seeded_schedule(&cfg, 8));
    }

    #[test]
    fn checkpointed_resume_is_byte_identical() {
        let cfg = ExploreConfig {
            budget: 20,
            ..cfg()
        };
        let uninterrupted = explore(&cfg);
        // Interrupt after every possible number of steps; resuming from
        // the snapshot must reproduce the uninterrupted report exactly.
        for interrupt_at in [0u64, 1, 7, 10, 19, 20] {
            let mut session = Explorer::new(&cfg, &[]);
            for _ in 0..interrupt_at {
                assert!(session.step(&no_extra_oracle));
            }
            let cp = session.checkpoint();
            drop(session); // the "crash"
            let mut resumed = Explorer::from_checkpoint(&cp).expect("valid checkpoint");
            while resumed.step(&no_extra_oracle) {}
            assert_eq!(
                resumed.into_report(),
                uninterrupted,
                "interrupted after {interrupt_at} steps"
            );
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let cfg = ExploreConfig {
            budget: 10,
            ..cfg()
        };
        let mut session = Explorer::new(&cfg, &[]);
        for _ in 0..4 {
            session.step(&no_extra_oracle);
        }
        let cp = session.checkpoint();
        let json = serde_json::to_string(&cp).unwrap();
        let back: crate::checkpoint::ExploreCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(cp, back);
        let mut a = Explorer::from_checkpoint(&cp).unwrap();
        let mut b = Explorer::from_checkpoint(&back).unwrap();
        while a.step(&no_extra_oracle) {
            assert!(b.step(&no_extra_oracle));
        }
        assert_eq!(a.into_report(), b.into_report());
    }

    #[test]
    fn incompatible_checkpoints_are_rejected() {
        let cfg = ExploreConfig { budget: 5, ..cfg() };
        let mut cp = Explorer::new(&cfg, &[]).checkpoint();
        cp.version += 1;
        assert!(Explorer::from_checkpoint(&cp).is_err());
        let mut cp = Explorer::new(&cfg, &[]).checkpoint();
        cp.rng.key.pop();
        assert!(Explorer::from_checkpoint(&cp).is_err());
    }

    #[test]
    fn seeded_session_resumes_with_pending_seeds_intact() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = ExploreConfig {
            budget: 12,
            ..cfg()
        };
        let seeds: Vec<FaultSchedule> = (0..6).map(|_| random_schedule(&cfg, &mut rng)).collect();
        let uninterrupted = explore_with(&cfg, &seeds, &no_extra_oracle);
        // Interrupt while seed schedules are still pending.
        let mut session = Explorer::new(&cfg, &seeds);
        for _ in 0..3 {
            session.step(&no_extra_oracle);
        }
        let cp = session.checkpoint();
        assert_eq!(cp.pending.len(), 3, "three seeds still queued");
        let mut resumed = Explorer::from_checkpoint(&cp).unwrap();
        while resumed.step(&no_extra_oracle) {}
        assert_eq!(resumed.into_report(), uninterrupted);
    }
}
