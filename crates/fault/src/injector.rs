//! The disturbance node: a composable fault pipeline.
//!
//! The paper's testbed used "an additional disturbance node, which is able
//! to emulate hardware faults in the communication network. As the protocol
//! does not discriminate between node and link faults, a fault in a node
//! can be emulated by corrupting or dropping a message it sends." (Sec. 8)
//!
//! [`DisturbanceNode`] composes any number of [`Disturbance`] sources; for
//! each transmission the first source that claims the slot decides its
//! [`SlotEffect`]. All randomness comes from one seeded RNG, so campaigns
//! are exactly reproducible from `(configuration, seed)`.

use std::sync::Arc;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use tt_sim::{apply_effect_into, FaultPipeline, MetricsSink, SlotEffect, SlotOutcome, TxCtx};

/// One source of injected faults.
pub trait Disturbance: Send {
    /// Returns the effect this source applies to the transmission, or
    /// `None` if it leaves the slot alone.
    fn effect(&mut self, ctx: &TxCtx, rng: &mut StdRng) -> Option<SlotEffect>;
}

impl<F> Disturbance for F
where
    F: FnMut(&TxCtx, &mut StdRng) -> Option<SlotEffect> + Send,
{
    fn effect(&mut self, ctx: &TxCtx, rng: &mut StdRng) -> Option<SlotEffect> {
        self(ctx, rng)
    }
}

/// A seeded, composable fault pipeline (the disturbance node).
///
/// ```
/// use tt_fault::{Burst, DisturbanceNode};
/// use tt_sim::{ClusterBuilder, TraceMode};
///
/// let pipeline = DisturbanceNode::new(42).with(Burst::slots(10, 2));
/// let mut cluster = ClusterBuilder::new(4)
///     .trace_mode(TraceMode::Anomalies)
///     .build(Box::new(pipeline))?;
/// cluster.run_rounds(5);
/// assert_eq!(cluster.trace().records().len(), 2);
/// # Ok::<(), tt_sim::SimError>(())
/// ```
pub struct DisturbanceNode {
    disturbances: Vec<Box<dyn Disturbance>>,
    rng: StdRng,
    metrics: Option<Arc<dyn MetricsSink>>,
}

impl std::fmt::Debug for DisturbanceNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisturbanceNode")
            .field("disturbances", &self.disturbances.len())
            .finish()
    }
}

impl DisturbanceNode {
    /// Creates an empty (harmless) disturbance node with the given seed.
    pub fn new(seed: u64) -> Self {
        DisturbanceNode {
            disturbances: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: None,
        }
    }

    /// Reports every injected (non-`Correct`) effect to `sink` as a
    /// `fault.injected.*` counter keyed by effect kind. The disturbance
    /// node is the chokepoint every fault flows through, so these counters
    /// are the injection-side ground truth an instrumented run compares
    /// its protocol-side events against.
    pub fn with_metrics(mut self, sink: Arc<dyn MetricsSink>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Adds a disturbance source (builder style). Earlier sources take
    /// precedence when several claim the same slot.
    pub fn with(mut self, d: impl Disturbance + 'static) -> Self {
        self.disturbances.push(Box::new(d));
        self
    }

    /// Adds a disturbance source in place.
    pub fn push(&mut self, d: impl Disturbance + 'static) {
        self.disturbances.push(Box::new(d));
    }
}

impl FaultPipeline for DisturbanceNode {
    fn effect(&mut self, ctx: &TxCtx) -> SlotEffect {
        for d in &mut self.disturbances {
            if let Some(e) = d.effect(ctx, &mut self.rng) {
                if let Some(sink) = &self.metrics {
                    let name = match &e {
                        SlotEffect::Correct => "fault.injected.correct",
                        SlotEffect::Benign => "fault.injected.benign",
                        SlotEffect::SymmetricMalicious { .. } => "fault.injected.malicious",
                        SlotEffect::Asymmetric { .. } => "fault.injected.asymmetric",
                    };
                    sink.counter(name, 1);
                }
                return e;
            }
        }
        SlotEffect::Correct
    }

    fn transmit_into(&mut self, ctx: &TxCtx, payload: &Bytes, out: &mut SlotOutcome) {
        // In-place fill: undisturbed slots (the steady state of a campaign)
        // allocate nothing on the transmission path.
        let effect = FaultPipeline::effect(self, ctx);
        apply_effect_into(&effect, ctx, payload, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sim::{NodeId, RoundIndex};

    fn ctx(abs: u64) -> TxCtx {
        let n = 4;
        TxCtx {
            round: RoundIndex::new(abs / n as u64),
            sender: NodeId::from_slot((abs % n as u64) as usize),
            n_nodes: n,
            abs_slot: abs,
        }
    }

    #[test]
    fn empty_node_is_harmless() {
        let mut d = DisturbanceNode::new(1);
        assert_eq!(FaultPipeline::effect(&mut d, &ctx(0)), SlotEffect::Correct);
    }

    #[test]
    fn first_matching_source_wins() {
        let benign = |c: &TxCtx, _: &mut StdRng| (c.abs_slot == 5).then_some(SlotEffect::Benign);
        let asym = |c: &TxCtx, _: &mut StdRng| {
            (c.abs_slot >= 5).then_some(SlotEffect::Asymmetric {
                detected_by: vec![0],
                collision_ok: true,
            })
        };
        let mut d = DisturbanceNode::new(1).with(benign).with(asym);
        assert_eq!(FaultPipeline::effect(&mut d, &ctx(5)), SlotEffect::Benign);
        assert!(matches!(
            FaultPipeline::effect(&mut d, &ctx(6)),
            SlotEffect::Asymmetric { .. }
        ));
        assert_eq!(FaultPipeline::effect(&mut d, &ctx(4)), SlotEffect::Correct);
    }

    #[test]
    fn metrics_count_injected_effects_by_kind() {
        let sink = Arc::new(tt_sim::RecordingSink::new());
        let benign = |c: &TxCtx, _: &mut StdRng| (c.abs_slot < 3).then_some(SlotEffect::Benign);
        let asym = |c: &TxCtx, _: &mut StdRng| {
            (c.abs_slot == 5).then_some(SlotEffect::Asymmetric {
                detected_by: vec![0],
                collision_ok: true,
            })
        };
        let mut d = DisturbanceNode::new(1)
            .with(benign)
            .with(asym)
            .with_metrics(sink.clone());
        for a in 0..10 {
            let _ = FaultPipeline::effect(&mut d, &ctx(a));
        }
        assert_eq!(sink.counter_value("fault.injected.benign"), 3);
        assert_eq!(sink.counter_value("fault.injected.asymmetric"), 1);
        assert_eq!(sink.counter_value("fault.injected.malicious"), 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| -> Vec<bool> {
            let noisy = |_: &TxCtx, rng: &mut StdRng| {
                rand::Rng::gen_bool(rng, 0.3).then_some(SlotEffect::Benign)
            };
            let mut d = DisturbanceNode::new(seed).with(noisy);
            (0..100)
                .map(|a| FaultPipeline::effect(&mut d, &ctx(a)) == SlotEffect::Benign)
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge");
    }
}
