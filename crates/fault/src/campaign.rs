//! The Sec. 8 validation campaign: experiment classes, seeded repetitions,
//! and machine-checked verdicts.
//!
//! The paper validates the protocols with physical fault injection on a
//! four-node cluster, repeating each *experiment class* 100 times:
//!
//! * bursty faults of one slot, two slots, and two TDMA rounds, starting in
//!   any of the four sending slots (12 classes);
//! * a penalty/reward stepping class: a fault in a node's sending slot
//!   every second round for 20 rounds, so one of the two counters must
//!   step at every round;
//! * one malicious node disseminating random local syndromes (4 classes,
//!   one per possible culprit);
//! * clique formation: one node partitioned from the rest of the cluster,
//!   to be detected and excluded by the membership protocol.
//!
//! Every experiment here is checked by the property oracles of
//! [`tt_core::properties`] plus class-specific expectations, and is
//! reproducible from `(class, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use std::sync::{Arc, OnceLock};

use tt_core::properties::{check_diag_cluster, checkable_rounds, PropertyReport};
use tt_core::{DiagJob, MembershipJob, ProtocolConfig};
use tt_sim::{
    CancellationToken, Cluster, ClusterBuilder, MetricsSink, NodeId, NoopSink, NoopTraceSink,
    RoundIndex, TraceSink,
};

use crate::burst::Burst;
use crate::injector::DisturbanceNode;
use crate::malicious::{CliquePartition, RandomSyndromeJob};

/// One experiment class of the validation campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentClass {
    /// A bus burst of `len_slots` slots starting in sending slot
    /// `start_slot` (0-based) of a randomly drawn round.
    Burst {
        /// Burst length in slots (1, 2, or `2N` for two TDMA rounds).
        len_slots: u64,
        /// The sending slot the burst starts in.
        start_slot: usize,
    },
    /// Faults in `node`'s sending slot every second round for 20 rounds;
    /// penalty/reward counters must step every round.
    PenaltyRewardStepping {
        /// The periodically faulty node.
        node: NodeId,
    },
    /// `node`'s diagnostic job disseminates random local syndromes; no
    /// correct node may be diagnosed faulty.
    MaliciousSyndromes {
        /// The malicious node.
        node: NodeId,
    },
    /// `victim` is partitioned from the rest of the cluster for one round;
    /// the membership protocol must exclude the minority clique.
    CliqueFormation {
        /// The partitioned node.
        victim: NodeId,
    },
}

impl ExperimentClass {
    /// A short human-readable label (used in campaign summaries).
    pub fn label(&self) -> String {
        match self {
            ExperimentClass::Burst {
                len_slots,
                start_slot,
            } => format!("burst/{len_slots}slots@s{start_slot}"),
            ExperimentClass::PenaltyRewardStepping { node } => format!("pr-stepping/{node}"),
            ExperimentClass::MaliciousSyndromes { node } => format!("malicious/{node}"),
            ExperimentClass::CliqueFormation { victim } => format!("clique/{victim}"),
        }
    }
}

/// The full set of Sec. 8 experiment classes for an `n`-node cluster.
pub fn sec8_classes(n: usize) -> Vec<ExperimentClass> {
    let mut classes = Vec::new();
    for len in [1, 2, 2 * n as u64] {
        for start in 0..n {
            classes.push(ExperimentClass::Burst {
                len_slots: len,
                start_slot: start,
            });
        }
    }
    classes.push(ExperimentClass::PenaltyRewardStepping {
        node: NodeId::new(2),
    });
    for node in NodeId::all(n) {
        classes.push(ExperimentClass::MaliciousSyndromes { node });
    }
    classes.push(ExperimentClass::CliqueFormation {
        victim: NodeId::new(1),
    });
    classes
}

/// Extended experiment classes beyond the paper's Sec. 8 set: the same
/// oracle discipline applied to the newer substrates (bit-level corruption,
/// random-subset SOS faults, every clique victim, scenario survival).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtendedClass {
    /// Frame bit flips at the given per-slot probability for 20 rounds;
    /// CRC-grounded detection, Theorem 1 oracles.
    BitNoise {
        /// Per-slot hit probability in percent (integer, for hashability).
        percent: u8,
    },
    /// A random strict receiver subset misses one sender's frames for one
    /// round (SOS-like); consistency is required, detection is not.
    RandomSos {
        /// The affected sender.
        sender: NodeId,
    },
    /// Clique formation with an arbitrary victim (the paper used node 1).
    Clique {
        /// The partitioned node.
        victim: NodeId,
    },
}

impl ExtendedClass {
    /// A short human-readable label.
    pub fn label(&self) -> String {
        match self {
            ExtendedClass::BitNoise { percent } => format!("bitnoise/{percent}%"),
            ExtendedClass::RandomSos { sender } => format!("sos/{sender}"),
            ExtendedClass::Clique { victim } => format!("clique/{victim}"),
        }
    }
}

/// The extended class list for an `n`-node cluster.
pub fn extended_classes(n: usize) -> Vec<ExtendedClass> {
    let mut out = vec![
        ExtendedClass::BitNoise { percent: 5 },
        ExtendedClass::BitNoise { percent: 15 },
    ];
    for node in NodeId::all(n) {
        out.push(ExtendedClass::RandomSos { sender: node });
        out.push(ExtendedClass::Clique { victim: node });
    }
    out
}

/// Runs one extended experiment.
pub fn run_extended(class: ExtendedClass, n: usize, seed: u64) -> ExperimentOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let fault_round = RoundIndex::new(rng.gen_range(5..15));
    let lag = 3;
    let all: Vec<NodeId> = NodeId::all(n).collect();
    match class {
        ExtendedClass::BitNoise { percent } => {
            let from = fault_round.as_u64() * n as u64;
            let until = from + 20 * n as u64;
            let gate = move |ctx: &tt_sim::TxCtx, _: &mut StdRng| {
                (ctx.abs_slot < from || ctx.abs_slot >= until)
                    .then_some(tt_sim::SlotEffect::Correct)
            };
            let pipeline = DisturbanceNode::new(seed)
                .with(gate)
                .with(crate::bitflip::BitNoise::new(percent as f64 / 100.0, 3));
            let mut cluster = diag_cluster(n, pipeline);
            let total = fault_round.as_u64() + 20 + 10;
            cluster.run_rounds(total);
            let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, lag));
            let passed = report.ok();
            let notes = if passed {
                vec![]
            } else {
                vec![format!("{:?}", report.violations)]
            };
            ExperimentOutcome {
                label: class.label(),
                seed,
                passed,
                report,
                notes,
                mean_detection_latency: None,
            }
        }
        ExtendedClass::RandomSos { sender } => {
            let pipeline =
                DisturbanceNode::new(seed).with(crate::malicious::AsymmetricDisturbance::new(
                    sender,
                    fault_round,
                    1,
                    crate::malicious::AsymmetricTarget::RandomSubset,
                ));
            let mut cluster = diag_cluster(n, pipeline);
            let total = fault_round.as_u64() + 12;
            cluster.run_rounds(total);
            let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, lag));
            ExperimentOutcome {
                label: class.label(),
                seed,
                passed: report.ok(),
                notes: if report.ok() {
                    vec![]
                } else {
                    vec![format!("{:?}", report.violations)]
                },
                report,
                mean_detection_latency: None,
            }
        }
        ExtendedClass::Clique { victim } => {
            run_experiment(ExperimentClass::CliqueFormation { victim }, n, seed)
        }
    }
}

/// The verdict of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Label of the class this run belongs to (see
    /// [`ExperimentClass::label`] / [`ExtendedClass::label`]).
    pub label: String,
    /// The seed that reproduces this run exactly.
    pub seed: u64,
    /// Whether all expectations held.
    pub passed: bool,
    /// The property-oracle report (for diagnostic-protocol classes).
    pub report: PropertyReport,
    /// Human-readable details on any failure.
    pub notes: Vec<String>,
    /// Mean detection latency in rounds (fault occurrence to decision),
    /// where the class has a meaningful notion of it (burst classes).
    pub mean_detection_latency: Option<f64>,
}

fn base_config(n: usize) -> ProtocolConfig {
    // Large thresholds: validation observes detection, not isolation.
    ProtocolConfig::builder(n)
        .penalty_threshold(1_000_000)
        .reward_threshold(1_000_000)
        .build()
        .expect("static config is valid")
}

/// A round length close to the paper's 2.5 ms that divides into `n` equal
/// slots (the builder default only suits divisors of 2 500 000 ns).
fn round_for(n: usize) -> tt_sim::Nanos {
    tt_sim::Nanos::from_nanos(2_500_000 - (2_500_000 % n as u64))
}

/// The observability sinks attached to every cluster an experiment runner
/// builds. [`ExperimentSinks::noop`] (the default) keeps the campaign hot
/// path exactly as before — disabled sinks cost nothing; `ttdiag serve`
/// passes streaming sinks here so campaign experiments feed the live
/// `metrics`/`spans` subscribers.
#[derive(Clone)]
pub struct ExperimentSinks {
    /// Metrics sink cloned into every experiment cluster.
    pub metrics: Arc<dyn MetricsSink>,
    /// Trace sink cloned into every experiment cluster.
    pub trace: Arc<dyn TraceSink>,
}

impl std::fmt::Debug for ExperimentSinks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentSinks")
            .field("metrics_enabled", &self.metrics.enabled())
            .field("trace_enabled", &self.trace.enabled())
            .finish()
    }
}

impl ExperimentSinks {
    /// Disabled sinks (shared process-wide, so per-experiment cost is two
    /// reference-count bumps).
    pub fn noop() -> Self {
        static NOOP: OnceLock<ExperimentSinks> = OnceLock::new();
        NOOP.get_or_init(|| ExperimentSinks {
            metrics: Arc::new(NoopSink),
            trace: Arc::new(NoopTraceSink),
        })
        .clone()
    }
}

impl Default for ExperimentSinks {
    fn default() -> Self {
        Self::noop()
    }
}

fn diag_cluster(n: usize, pipeline: DisturbanceNode) -> Cluster {
    diag_cluster_cancellable(
        n,
        pipeline,
        CancellationToken::new(),
        &ExperimentSinks::noop(),
    )
}

fn diag_cluster_cancellable(
    n: usize,
    pipeline: DisturbanceNode,
    token: CancellationToken,
    sinks: &ExperimentSinks,
) -> Cluster {
    let cfg = base_config(n);
    ClusterBuilder::new(n)
        .round_length(round_for(n))
        .cancel_token(token)
        .metrics_sink(sinks.metrics.clone())
        .trace_sink(sinks.trace.clone())
        .build_with_jobs(
            move |id| Box::new(DiagJob::new(id, cfg.clone())),
            Box::new(pipeline),
        )
}

/// Runs one experiment and checks its expectations.
pub fn run_experiment(class: ExperimentClass, n: usize, seed: u64) -> ExperimentOutcome {
    run_experiment_cancellable(class, n, seed, &CancellationToken::new())
        .expect("a fresh token never cancels")
}

/// The outcome recorded in place of an experiment whose execution
/// panicked: failed, with the panic message and reproduction seed in the
/// notes. Worker pools record this instead of letting the panic poison the
/// pool; the experiment never produced a verdict, so `passed` is `false`
/// and the oracle report is empty.
pub fn quarantined_outcome(
    class: ExperimentClass,
    seed: u64,
    panic_msg: &str,
) -> ExperimentOutcome {
    ExperimentOutcome {
        label: class.label(),
        seed,
        passed: false,
        report: PropertyReport::default(),
        notes: vec![format!("quarantined: panic: {panic_msg}")],
        mean_detection_latency: None,
    }
}

/// Like [`run_experiment`], but observing `token` at round granularity:
/// once the token is cancelled the simulation stops at the next round
/// boundary and `None` is returned (a partially executed experiment has no
/// meaningful verdict). Supervisors use this to enforce watchdog deadlines
/// on hung or oversized experiments without killing the hosting thread.
pub fn run_experiment_cancellable(
    class: ExperimentClass,
    n: usize,
    seed: u64,
    token: &CancellationToken,
) -> Option<ExperimentOutcome> {
    run_experiment_observed(class, n, seed, token, &ExperimentSinks::noop())
}

/// Like [`run_experiment_cancellable`], but attaching `sinks` to the
/// experiment cluster so metrics events and provenance spans stream out
/// while the experiment runs (`ttdiag serve` live feeds). With
/// [`ExperimentSinks::noop`] this is exactly [`run_experiment_cancellable`].
pub fn run_experiment_observed(
    class: ExperimentClass,
    n: usize,
    seed: u64,
    token: &CancellationToken,
    sinks: &ExperimentSinks,
) -> Option<ExperimentOutcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    let fault_round = RoundIndex::new(rng.gen_range(5..15));
    let lag = 3; // conservative send alignment in all campaign configs
    let mut notes = Vec::new();
    let all: Vec<NodeId> = NodeId::all(n).collect();

    match class {
        ExperimentClass::Burst {
            len_slots,
            start_slot,
        } => {
            let pipeline = DisturbanceNode::new(seed).with(Burst::in_round(
                fault_round,
                start_slot,
                len_slots,
                n,
            ));
            let mut cluster = diag_cluster_cancellable(n, pipeline, token.clone(), sinks);
            let total = fault_round.as_u64() + len_slots.div_ceil(n as u64) + 10;
            if cluster.run_rounds(total) < total {
                return None;
            }
            let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, lag));
            let mut passed = report.ok();
            // The burst must actually have been detected: every benign slot
            // appears as a conviction in the (consistent) health vectors.
            let sample: &DiagJob = cluster.job_as(all[0]).expect("diag job");
            let mut latencies: Vec<f64> = Vec::new();
            for rec in cluster.trace().records() {
                let verdict = sample.health_for(rec.round);
                match verdict {
                    Some(h) if !h.health[rec.sender.index()] => {
                        latencies.push((h.decided_at.as_u64() - rec.round.as_u64()) as f64);
                    }
                    _ => {
                        passed = false;
                        notes.push(format!(
                            "benign slot {}@{} not convicted",
                            rec.sender, rec.round
                        ));
                    }
                }
            }
            let mean_detection_latency = (!latencies.is_empty())
                .then(|| latencies.iter().sum::<f64>() / latencies.len() as f64);
            if report.rounds_checked == 0 {
                passed = false;
                notes.push("no rounds checked".into());
            }
            Some(ExperimentOutcome {
                label: class.label(),
                seed,
                passed,
                report,
                notes,
                mean_detection_latency,
            })
        }
        ExperimentClass::PenaltyRewardStepping { node } => {
            // A fault in `node`'s slot every second round for 20 rounds.
            let first = fault_round;
            let stepper = move |ctx: &tt_sim::TxCtx, _: &mut StdRng| {
                let r = ctx.round.as_u64();
                let active = r >= first.as_u64() && r < first.as_u64() + 20;
                (active && ctx.sender == node && (r - first.as_u64()).is_multiple_of(2))
                    .then_some(tt_sim::SlotEffect::Benign)
            };
            let pipeline = DisturbanceNode::new(seed).with(stepper);
            let mut cluster = diag_cluster_cancellable(n, pipeline, token.clone(), sinks);
            let total = first.as_u64() + 20 + 10;
            if cluster.run_rounds(total) < total {
                return None;
            }
            let report = check_diag_cluster(&cluster, &all, checkable_rounds(total, lag));
            let mut passed = report.ok();
            for &obs in &all {
                let job: &DiagJob = cluster.job_as(obs).expect("diag job");
                // 10 faults, criticality 1, thresholds never reached.
                if job.penalty(node) != 10 {
                    passed = false;
                    notes.push(format!("{obs}: penalty {} != 10", job.penalty(node)));
                }
                // Every round inside the window stepped exactly one of the
                // two counters: faulty rounds convicted, healthy acquitted.
                for d in 0..20u64 {
                    let dr = first + d;
                    let Some(h) = job.health_for(dr) else {
                        passed = false;
                        notes.push(format!("{obs}: no verdict for {dr}"));
                        continue;
                    };
                    let expect_faulty = d % 2 == 0;
                    if h.health[node.index()] == expect_faulty {
                        passed = false;
                        notes.push(format!("{obs}: wrong verdict at {dr}"));
                    }
                }
            }
            Some(ExperimentOutcome {
                label: class.label(),
                seed,
                passed,
                report,
                notes,
                mean_detection_latency: None,
            })
        }
        ExperimentClass::MaliciousSyndromes { node } => {
            let cfg = base_config(n);
            let mal_seed = rng.gen();
            let mut cluster = ClusterBuilder::new(n)
                .round_length(round_for(n))
                .cancel_token(token.clone())
                .metrics_sink(sinks.metrics.clone())
                .trace_sink(sinks.trace.clone())
                .build_with_jobs(
                    |id| {
                        if id == node {
                            Box::new(RandomSyndromeJob::new(id, n, mal_seed))
                        } else {
                            Box::new(DiagJob::new(id, cfg.clone()))
                        }
                    },
                    Box::new(DisturbanceNode::new(seed)),
                );
            let total = 30;
            if cluster.run_rounds(total) < total {
                return None;
            }
            let obedient: Vec<NodeId> = all.iter().copied().filter(|&x| x != node).collect();
            let report = check_diag_cluster(&cluster, &obedient, checkable_rounds(total, lag));
            let mut passed = report.ok();
            // Stronger statement: nobody is ever convicted (the bus is
            // clean; random syndromes alone cannot frame a correct node).
            for &obs in &obedient {
                let job: &DiagJob = cluster.job_as(obs).expect("diag job");
                if !job.health_log().iter().all(|h| h.health.iter().all(|&b| b)) {
                    passed = false;
                    notes.push(format!("{obs}: convicted a correct node"));
                }
            }
            Some(ExperimentOutcome {
                label: class.label(),
                seed,
                passed,
                report,
                notes,
                mean_detection_latency: None,
            })
        }
        ExperimentClass::CliqueFormation { victim } => {
            let cfg = base_config(n);
            let pipeline =
                DisturbanceNode::new(seed).with(CliquePartition::new(victim, fault_round, 1));
            let mut cluster = ClusterBuilder::new(n)
                .round_length(round_for(n))
                .cancel_token(token.clone())
                .metrics_sink(sinks.metrics.clone())
                .trace_sink(sinks.trace.clone())
                .build_with_jobs(
                    |id| Box::new(MembershipJob::new(id, cfg.clone())),
                    Box::new(pipeline),
                );
            let total = fault_round.as_u64() + 2 * lag + 6;
            if cluster.run_rounds(total) < total {
                return None;
            }
            let mut passed = true;
            let majority: Vec<NodeId> = all.iter().copied().filter(|&x| x != victim).collect();
            let mut views = Vec::new();
            for &obs in &all {
                let job: &MembershipJob = cluster.job_as(obs).expect("membership job");
                views.push((obs, job.current_view().members.clone()));
            }
            for (obs, view) in &views {
                if view.contains(&victim) {
                    passed = false;
                    notes.push(format!("{obs}: victim still in view"));
                }
                if view.len() != n - 1 {
                    passed = false;
                    notes.push(format!("{obs}: unexpected view {view:?}"));
                }
            }
            if !views.windows(2).all(|w| w[0].1 == w[1].1) {
                passed = false;
                notes.push("views disagree across nodes".into());
            }
            // Liveness: exclusion within two protocol executions.
            for &obs in &majority {
                let job: &MembershipJob = cluster.job_as(obs).expect("membership job");
                if let Some(v) = job.views().last() {
                    if v.diagnosed.as_u64() > fault_round.as_u64() + 2 * lag {
                        passed = false;
                        notes.push(format!("{obs}: late view change at {:?}", v.diagnosed));
                    }
                }
            }
            Some(ExperimentOutcome {
                label: class.label(),
                seed,
                passed,
                report: PropertyReport::default(),
                notes,
                mean_detection_latency: None,
            })
        }
    }
}

/// Aggregate result of a campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignResult {
    /// All individual outcomes.
    pub outcomes: Vec<ExperimentOutcome>,
}

impl CampaignResult {
    /// `(label, passed, total)` per class, in first-seen order.
    pub fn summary(&self) -> Vec<(String, usize, usize)> {
        let mut rows: Vec<(String, usize, usize)> = Vec::new();
        for o in &self.outcomes {
            let label = o.label.clone();
            match rows.iter_mut().find(|(l, _, _)| *l == label) {
                Some((_, p, t)) => {
                    *t += 1;
                    if o.passed {
                        *p += 1;
                    }
                }
                None => rows.push((label, usize::from(o.passed), 1)),
            }
        }
        rows
    }

    /// Whether every experiment passed.
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.passed)
    }

    /// Total number of injection experiments.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }
}

/// Derives the seed of repetition `rep` of class index `class_idx` from a
/// campaign's base seed.
///
/// This is the *only* seed derivation used by campaign runners (the
/// sequential [`run_campaign`] and any parallel executor), so their
/// outcomes are bit-identical for the same `(classes, n, reps, base_seed)`.
pub fn experiment_seed(base_seed: u64, class_idx: usize, rep: u64) -> u64 {
    base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((class_idx as u64) << 32)
        .wrapping_add(rep)
}

/// Runs `reps` seeded repetitions of each class.
pub fn run_campaign(
    classes: &[ExperimentClass],
    n: usize,
    reps: u64,
    base_seed: u64,
) -> CampaignResult {
    let mut result = CampaignResult::default();
    for (ci, &class) in classes.iter().enumerate() {
        for rep in 0..reps {
            let seed = experiment_seed(base_seed, ci, rep);
            result.outcomes.push(run_experiment(class, n, seed));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_list_matches_sec8() {
        let classes = sec8_classes(4);
        // 12 burst + 1 stepping + 4 malicious + 1 clique.
        assert_eq!(classes.len(), 18);
        assert_eq!(
            classes
                .iter()
                .filter(|c| matches!(c, ExperimentClass::Burst { .. }))
                .count(),
            12
        );
    }

    #[test]
    fn one_slot_burst_experiments_pass() {
        for start in 0..4 {
            let o = run_experiment(
                ExperimentClass::Burst {
                    len_slots: 1,
                    start_slot: start,
                },
                4,
                7,
            );
            assert!(o.passed, "start {start}: {:?}", o.notes);
        }
    }

    #[test]
    fn two_slot_burst_experiments_pass() {
        let o = run_experiment(
            ExperimentClass::Burst {
                len_slots: 2,
                start_slot: 3, // straddles a round boundary
            },
            4,
            11,
        );
        assert!(o.passed, "{:?}", o.notes);
    }

    #[test]
    fn two_round_blackout_experiments_pass() {
        for start in 0..4 {
            let o = run_experiment(
                ExperimentClass::Burst {
                    len_slots: 8,
                    start_slot: start,
                },
                4,
                13,
            );
            assert!(o.passed, "start {start}: {:?}", o.notes);
        }
    }

    #[test]
    fn pr_stepping_experiment_passes() {
        let o = run_experiment(
            ExperimentClass::PenaltyRewardStepping {
                node: NodeId::new(2),
            },
            4,
            17,
        );
        assert!(o.passed, "{:?}", o.notes);
    }

    #[test]
    fn malicious_experiments_pass_for_every_culprit() {
        for node in NodeId::all(4) {
            let o = run_experiment(ExperimentClass::MaliciousSyndromes { node }, 4, 19);
            assert!(o.passed, "{node}: {:?}", o.notes);
        }
    }

    #[test]
    fn clique_experiment_passes() {
        let o = run_experiment(
            ExperimentClass::CliqueFormation {
                victim: NodeId::new(1),
            },
            4,
            23,
        );
        assert!(o.passed, "{:?}", o.notes);
    }

    #[test]
    fn small_campaign_all_green() {
        let classes = sec8_classes(4);
        let result = run_campaign(&classes, 4, 2, 1);
        assert_eq!(result.total(), classes.len() * 2);
        assert!(
            result.all_passed(),
            "failures: {:?}",
            result
                .outcomes
                .iter()
                .filter(|o| !o.passed)
                .map(|o| (o.label.clone(), &o.notes))
                .collect::<Vec<_>>()
        );
        let summary = result.summary();
        assert_eq!(summary.len(), classes.len());
        assert!(summary.iter().all(|(_, p, t)| p == t));
    }

    #[test]
    fn outcomes_are_reproducible() {
        let class = ExperimentClass::Burst {
            len_slots: 2,
            start_slot: 1,
        };
        let a = run_experiment(class, 4, 99);
        let b = run_experiment(class, 4, 99);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn extended_class_list_covers_all_nodes() {
        let classes = extended_classes(4);
        assert_eq!(classes.len(), 2 + 4 + 4);
        assert!(classes.contains(&ExtendedClass::Clique {
            victim: NodeId::new(3)
        }));
    }

    #[test]
    fn bitnoise_classes_pass() {
        for percent in [5u8, 15] {
            for seed in [1u64, 2, 3] {
                let o = run_extended(ExtendedClass::BitNoise { percent }, 4, seed);
                assert!(o.passed, "{percent}% seed {seed}: {:?}", o.notes);
                assert_eq!(o.label, format!("bitnoise/{percent}%"));
            }
        }
    }

    #[test]
    fn random_sos_classes_pass() {
        for sender in NodeId::all(4) {
            for seed in [7u64, 8] {
                let o = run_extended(ExtendedClass::RandomSos { sender }, 4, seed);
                assert!(o.passed, "{sender} seed {seed}: {:?}", o.notes);
            }
        }
    }

    #[test]
    fn clique_classes_pass_for_every_victim() {
        for victim in NodeId::all(4) {
            let o = run_extended(ExtendedClass::Clique { victim }, 4, 11);
            assert!(o.passed, "{victim}: {:?}", o.notes);
        }
    }
}
