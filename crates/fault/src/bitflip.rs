//! Bit-level corruption grounded in the frame encoding.
//!
//! The effect-level disturbances declare detectability; these operate a
//! layer lower: they flip bits on the *encoded wire frame*
//! ([`tt_sim::Frame`]) and let the outcome emerge from the CRC check —
//! exactly how a controller's local error detection classifies corruption
//! in reality. A flip that breaks the CRC yields a benign (locally
//! detected) fault; a flip pattern that forges a consistent CRC — possible
//! only for an adversarial injector, modelled by [`CrcForger`] — yields an
//! undetectable, semantically wrong frame: the malicious fault class made
//! concrete.

use rand::rngs::StdRng;
use rand::Rng;

use tt_sim::{crc32, Frame, SlotEffect, TxCtx};

use crate::injector::Disturbance;

/// Random bit flips on the whole bus: every receiver sees the same
/// corrupted frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitNoise {
    /// Probability that a given slot's frame is hit at all.
    p_slot: f64,
    /// Number of random bit flips applied when hit.
    flips: usize,
}

impl BitNoise {
    /// Noise hitting each slot with probability `p_slot`, flipping `flips`
    /// random bits of the encoded frame.
    ///
    /// # Panics
    ///
    /// Panics if the probability is out of range or `flips` is zero.
    pub fn new(p_slot: f64, flips: usize) -> Self {
        assert!((0.0..=1.0).contains(&p_slot), "probability out of range");
        assert!(flips > 0, "zero flips would be a no-op");
        BitNoise { p_slot, flips }
    }

    /// Classifies a corrupted wire image by actually decoding it.
    fn classify(wire: &[u8], original_payload: &[u8], ctx: &TxCtx) -> SlotEffect {
        match Frame::decode(wire, ctx.sender, ctx.round) {
            // Flips cancelled out entirely (e.g. the same bit twice): the
            // frame is intact.
            Ok(frame) if frame.payload == original_payload => SlotEffect::Correct,
            // A CRC collision: accepted but semantically wrong — the
            // malicious class emerging from the arithmetic (~2^-32 odds
            // for random flips).
            Ok(frame) => SlotEffect::SymmetricMalicious {
                payload: frame.payload,
            },
            Err(_) => SlotEffect::Benign,
        }
    }
}

impl Disturbance for BitNoise {
    fn effect(&mut self, ctx: &TxCtx, rng: &mut StdRng) -> Option<SlotEffect> {
        if !rng.gen_bool(self.p_slot) {
            return None;
        }
        // Reconstruct the wire image the controller would have sent. The
        // payload travels opaque through the simulator, so the frame is
        // synthesized here with a placeholder payload of the real length;
        // only its *detectability* feeds back into the effect.
        let frame = Frame {
            sender: ctx.sender,
            round: ctx.round,
            payload: bytes::Bytes::from(vec![0u8; 8]),
        };
        let original_payload = frame.payload.clone();
        let mut wire = frame.encode().to_vec();
        for _ in 0..self.flips {
            let bit = rng.gen_range(0..wire.len() * 8);
            wire[bit / 8] ^= 1 << (bit % 8);
        }
        Some(Self::classify(&wire, &original_payload, ctx))
    }
}

/// Bit flips on the taps of specific receivers only (EMI near part of the
/// bus): those receivers' CRC checks fail while the rest decode fine — an
/// asymmetric fault grounded in the physical layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiverLocalBitNoise {
    p_slot: f64,
    victims: Vec<usize>,
}

impl ReceiverLocalBitNoise {
    /// Noise hitting the taps of `victims` (receiver indices) with
    /// probability `p_slot` per slot.
    ///
    /// # Panics
    ///
    /// Panics if the probability is out of range or no victim is given.
    pub fn new(p_slot: f64, victims: Vec<usize>) -> Self {
        assert!((0.0..=1.0).contains(&p_slot), "probability out of range");
        assert!(!victims.is_empty(), "need at least one victim tap");
        ReceiverLocalBitNoise { p_slot, victims }
    }
}

impl Disturbance for ReceiverLocalBitNoise {
    fn effect(&mut self, ctx: &TxCtx, rng: &mut StdRng) -> Option<SlotEffect> {
        if !rng.gen_bool(self.p_slot) {
            return None;
        }
        // A random bit flip breaks the CRC with certainty (single-bit
        // errors are always detected), so the affected receivers locally
        // detect the frame.
        Some(SlotEffect::Asymmetric {
            detected_by: self
                .victims
                .iter()
                .copied()
                .filter(|&v| v != ctx.sender.index() && v < ctx.n_nodes)
                .collect(),
            collision_ok: true,
        })
    }
}

/// An adversarial injector that corrupts the payload *and* recomputes the
/// CRC: the frame passes local error detection everywhere while carrying
/// wrong semantics — the concrete construction of a symmetric malicious
/// fault on a CRC-protected bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcForger {
    /// Absolute slot to attack.
    abs_slot: u64,
    /// XOR mask applied to the first payload byte.
    mask: u8,
}

impl CrcForger {
    /// Forges the frame of `abs_slot`, XOR-ing `mask` into the payload.
    pub fn new(abs_slot: u64, mask: u8) -> Self {
        CrcForger { abs_slot, mask }
    }

    /// Demonstrates the forgery at frame level: returns the forged wire
    /// image for a given payload (used by tests; the [`Disturbance`] impl
    /// applies the equivalent effect).
    pub fn forge_wire(frame: &Frame, mask: u8) -> Vec<u8> {
        let wire = frame.encode();
        let mut body = wire[..wire.len() - 4].to_vec();
        let payload_start = 1 + 8;
        if body.len() > payload_start {
            body[payload_start] ^= mask;
        }
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        body
    }
}

impl Disturbance for CrcForger {
    fn effect(&mut self, ctx: &TxCtx, rng: &mut StdRng) -> Option<SlotEffect> {
        if ctx.abs_slot != self.abs_slot {
            return None;
        }
        // The forged payload: the simulator carries payloads opaquely, so
        // the mask is applied to a random-but-seeded byte image of the
        // right shape; receivers accept it (CRC valid by construction).
        let mut payload = vec![rng.gen::<u8>()];
        payload[0] ^= self.mask;
        Some(SlotEffect::SymmetricMalicious {
            payload: bytes::Bytes::from(payload),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tt_sim::{NodeId, RoundIndex, SlotFaultClass};

    fn ctx(abs: u64) -> TxCtx {
        TxCtx {
            round: RoundIndex::new(abs / 4),
            sender: NodeId::from_slot((abs % 4) as usize),
            n_nodes: 4,
            abs_slot: abs,
        }
    }

    #[test]
    fn random_bit_flips_are_always_detected() {
        // 10_000 corrupted frames, 1..=4 flips each: the CRC catches every
        // single one (the undetected-corruption probability is ~2^-32).
        let mut rng = StdRng::seed_from_u64(9);
        for flips in 1..=4usize {
            let mut noise = BitNoise::new(1.0, flips);
            for abs in 0..2_500u64 {
                match noise.effect(&ctx(abs), &mut rng) {
                    Some(SlotEffect::Benign) => {}
                    // Even flips can cancel pairwise (same bit twice).
                    Some(SlotEffect::Correct) if flips % 2 == 0 => {}
                    other => panic!("flips {flips}, slot {abs}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn slot_probability_gates_the_noise() {
        let mut noise = BitNoise::new(0.25, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000u64)
            .filter(|&a| noise.effect(&ctx(a), &mut rng).is_some())
            .count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn receiver_local_noise_is_asymmetric() {
        let mut noise = ReceiverLocalBitNoise::new(1.0, vec![0, 2]);
        let mut rng = StdRng::seed_from_u64(0);
        // Sender 2 (index 1): victims 0 and 2 detect, the rest don't.
        let e = noise.effect(&ctx(1), &mut rng).unwrap();
        assert_eq!(e.classify(4, NodeId::new(2)), SlotFaultClass::Asymmetric);
        // When the sender itself is a victim its own tap is excluded.
        let e = noise.effect(&ctx(0), &mut rng).unwrap();
        assert_eq!(
            e,
            SlotEffect::Asymmetric {
                detected_by: vec![2],
                collision_ok: true
            }
        );
    }

    #[test]
    fn crc_forgery_is_undetectable_at_frame_level() {
        let frame = Frame {
            sender: NodeId::new(2),
            round: RoundIndex::new(9),
            payload: bytes::Bytes::from_static(b"\x0f\x00"),
        };
        let forged = CrcForger::forge_wire(&frame, 0xFF);
        let decoded = Frame::decode(&forged, NodeId::new(2), RoundIndex::new(9))
            .expect("forged CRC passes local error detection");
        assert_ne!(decoded.payload, frame.payload, "semantics corrupted");
    }

    #[test]
    fn forger_effect_targets_one_slot() {
        let mut f = CrcForger::new(13, 0xAA);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(f.effect(&ctx(12), &mut rng).is_none());
        assert!(matches!(
            f.effect(&ctx(13), &mut rng),
            Some(SlotEffect::SymmetricMalicious { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = BitNoise::new(1.5, 1);
    }
}
