//! Application jobs and their execution context.
//!
//! Jobs are the unit of application-level computation in the paper's system
//! model: each node's internal schedule runs its jobs once per round, and
//! jobs communicate exclusively through interface variables. The add-on
//! diagnostic protocol is implemented as an ordinary [`Job`] — it has no
//! access to anything a real application-level middleware module would not
//! have.

use std::any::Any;

use bytes::Bytes;

use crate::controller::Controller;
use crate::metrics::{MetricsSink, NOOP_SINK};
use crate::schedule::NodeSchedule;
use crate::time::{NodeId, RoundIndex};
use crate::tracing::{TraceSink, NOOP_TRACE_SINK};

/// An application-level job executed once per TDMA round.
///
/// Implementors must also provide [`Job::as_any`] so that test harnesses and
/// experiment runners can recover the concrete job type after a simulation
/// (see [`crate::Cluster::job_as`]).
pub trait Job: Send {
    /// Runs the job for the current round.
    ///
    /// The context exposes exactly the application-level facilities of the
    /// paper's system model: interface variables with validity bits, the
    /// node's transmit buffer, the two node-schedule parameters, and the
    /// local collision detector.
    fn execute(&mut self, ctx: &mut JobCtx<'_>);

    /// Upcasts to [`Any`] for post-simulation inspection.
    fn as_any(&self) -> &dyn Any;
}

/// The execution context of one job activation.
///
/// Borrow of the hosting node's communication controller plus the static
/// schedule information the paper allows the application to know
/// (`l_i`, `send_curr_round_i`; Sec. 10).
pub struct JobCtx<'a> {
    controller: &'a mut Controller,
    schedule: NodeSchedule,
    round: RoundIndex,
    metrics: &'a dyn MetricsSink,
    tracing: &'a dyn TraceSink,
}

impl std::fmt::Debug for JobCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobCtx")
            .field("controller", &self.controller)
            .field("schedule", &self.schedule)
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

impl<'a> JobCtx<'a> {
    /// Creates a context with no metrics or trace sink; used by unit tests
    /// that drive a job manually (the engine uses [`JobCtx::with_sinks`]).
    pub fn new(controller: &'a mut Controller, schedule: NodeSchedule, round: RoundIndex) -> Self {
        Self::with_sinks(controller, schedule, round, &NOOP_SINK, &NOOP_TRACE_SINK)
    }

    /// Creates a context reporting to `metrics` (no provenance tracing).
    pub fn with_metrics(
        controller: &'a mut Controller,
        schedule: NodeSchedule,
        round: RoundIndex,
        metrics: &'a dyn MetricsSink,
    ) -> Self {
        Self::with_sinks(controller, schedule, round, metrics, &NOOP_TRACE_SINK)
    }

    /// Creates a context reporting metrics to `metrics` and provenance
    /// spans to `tracing`.
    pub fn with_sinks(
        controller: &'a mut Controller,
        schedule: NodeSchedule,
        round: RoundIndex,
        metrics: &'a dyn MetricsSink,
        tracing: &'a dyn TraceSink,
    ) -> Self {
        JobCtx {
            controller,
            schedule,
            round,
            metrics,
            tracing,
        }
    }

    /// The cluster's metrics sink.
    ///
    /// The returned reference carries the context's full lifetime, so jobs
    /// can hold it across later mutable uses of the context (e.g. capture it
    /// before an [`JobCtx::isolate`] call).
    pub fn metrics(&self) -> &'a dyn MetricsSink {
        self.metrics
    }

    /// The cluster's provenance-trace sink (same lifetime contract as
    /// [`JobCtx::metrics`]).
    pub fn tracing(&self) -> &'a dyn TraceSink {
        self.tracing
    }

    /// The hosting node's id.
    pub fn node(&self) -> NodeId {
        self.schedule.node()
    }

    /// The current round `k` (the round in which this activation runs).
    pub fn round(&self) -> RoundIndex {
        self.round
    }

    /// Cluster size `N`.
    pub fn n_nodes(&self) -> usize {
        self.controller.validity().len()
    }

    /// The paper's `l_i` for this node's schedule.
    pub fn l(&self) -> usize {
        self.schedule.l()
    }

    /// The paper's `send_curr_round_i` predicate for this node's schedule.
    pub fn send_curr_round(&self) -> bool {
        self.schedule.send_curr_round()
    }

    /// Reads all interface variables (`read_iface` in Alg. 1).
    ///
    /// Index = sender index; `None` if never successfully received.
    pub fn read_iface(&self) -> Vec<Option<Bytes>> {
        self.controller.iface_snapshot()
    }

    /// Borrows all interface variables without copying (the allocation-free
    /// counterpart of [`JobCtx::read_iface`]).
    pub fn iface(&self) -> &[Option<Bytes>] {
        self.controller.iface()
    }

    /// Reads all validity bits (`read_vbits` in Alg. 1).
    pub fn validity_bits(&self) -> Vec<bool> {
        self.controller.validity_snapshot()
    }

    /// Borrows all validity bits without copying (the allocation-free
    /// counterpart of [`JobCtx::validity_bits`]).
    pub fn validity(&self) -> &[bool] {
        self.controller.validity()
    }

    /// Writes the node's outgoing interface variable (`write_iface`).
    ///
    /// Whether the value is transmitted in the current or the next round
    /// depends on [`JobCtx::send_curr_round`].
    pub fn write_iface(&mut self, payload: impl Into<Bytes>) {
        self.controller.write_tx(payload.into());
    }

    /// Queries the local collision detector for the node's own slot in
    /// `round` (`coll-det` in Alg. 1, line 14).
    ///
    /// Returns `None` if no observation is available for that round.
    pub fn collision_ok(&self, round: RoundIndex) -> Option<bool> {
        self.controller.collision_ok(round)
    }

    /// Instructs the local communication controller to ignore traffic from
    /// `node` from now on (isolation decision of the p/r algorithm).
    pub fn isolate(&mut self, node: NodeId) {
        self.controller.isolate(node);
    }

    /// Whether the local controller currently accepts traffic from `node`.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.controller.is_active(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Reception;

    struct Echo {
        last_seen_valid: usize,
    }

    impl Job for Echo {
        fn execute(&mut self, ctx: &mut JobCtx<'_>) {
            self.last_seen_valid = ctx.validity_bits().iter().filter(|&&v| v).count();
            ctx.write_iface(vec![self.last_seen_valid as u8]);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn job_reads_and_writes_through_ctx() {
        let node = NodeId::new(2);
        let mut controller = Controller::new(node, 4);
        controller.deliver(
            NodeId::new(1),
            RoundIndex::new(0),
            Reception::Valid(Bytes::from_static(b"\x01")),
        );
        let sched = NodeSchedule::new(node, 1, 4).unwrap();
        let mut job = Echo { last_seen_valid: 0 };
        let mut ctx = JobCtx::new(&mut controller, sched, RoundIndex::new(0));
        assert_eq!(ctx.node(), node);
        assert_eq!(ctx.n_nodes(), 4);
        assert_eq!(ctx.l(), 1);
        assert!(ctx.send_curr_round());
        job.execute(&mut ctx);
        assert_eq!(job.last_seen_valid, 1);
        assert_eq!(controller.tx_payload(), Bytes::from(vec![1u8]));
    }

    #[test]
    fn ctx_isolation_affects_only_local_controller() {
        let node = NodeId::new(1);
        let mut controller = Controller::new(node, 4);
        let sched = NodeSchedule::new(node, 0, 4).unwrap();
        let mut ctx = JobCtx::new(&mut controller, sched, RoundIndex::ZERO);
        assert!(ctx.is_active(NodeId::new(3)));
        ctx.isolate(NodeId::new(3));
        assert!(!ctx.is_active(NodeId::new(3)));
    }
}
