//! Frame-level encoding: header, payload and CRC.
//!
//! The effect-level fault model ([`crate::SlotEffect`]) declares each
//! frame's detectability directly. This module grounds that abstraction:
//! a wire [`Frame`] carries a header (sender + round), the payload, and a
//! CRC-32 checksum, and *local error detection is the CRC check* — exactly
//! the mechanism behind a real controller's validity bit. The
//! bit-corruption disturbances in `tt-fault` flip bits on the encoded
//! frame and let detection (or, on a CRC collision, malicious acceptance)
//! emerge from the arithmetic.

use bytes::Bytes;

use crate::time::{NodeId, RoundIndex};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), computed bitwise —
/// no tables, no dependencies, deterministic.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// A wire frame: `sender (1 byte) | round (8 bytes LE) | payload | crc (4
/// bytes LE)`, CRC over everything before it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The sending node.
    pub sender: NodeId,
    /// The round the frame was transmitted in.
    pub round: RoundIndex,
    /// Application payload (e.g. an encoded local syndrome).
    pub payload: Bytes,
}

/// Why a received byte string failed frame decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the fixed header + CRC.
    Truncated,
    /// CRC mismatch: corruption detected.
    CrcMismatch,
    /// Header names a different sender/round than the slot implies
    /// (mistimed or misdirected frame).
    HeaderMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::CrcMismatch => write!(f, "crc mismatch"),
            FrameError::HeaderMismatch => write!(f, "header mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

const HEADER_LEN: usize = 1 + 8;
const CRC_LEN: usize = 4;

impl Frame {
    /// Encodes the frame for the wire.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + CRC_LEN);
        out.push(self.sender.get() as u8);
        out.extend_from_slice(&self.round.as_u64().to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes and verifies a wire frame, checking the CRC and that the
    /// header matches the slot's expected `sender` and `round`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] for underlength input,
    /// [`FrameError::CrcMismatch`] on checksum failure (the normal fate of
    /// corrupted frames), [`FrameError::HeaderMismatch`] when the checksum
    /// passes but the header disagrees with the slot.
    pub fn decode(
        wire: &[u8],
        expected_sender: NodeId,
        expected_round: RoundIndex,
    ) -> Result<Frame, FrameError> {
        if wire.len() < HEADER_LEN + CRC_LEN {
            return Err(FrameError::Truncated);
        }
        let (body, crc_bytes) = wire.split_at(wire.len() - CRC_LEN);
        let wire_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != wire_crc {
            return Err(FrameError::CrcMismatch);
        }
        let sender = body[0] as u32;
        let round = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
        if sender != expected_sender.get() || round != expected_round.as_u64() {
            return Err(FrameError::HeaderMismatch);
        }
        Ok(Frame {
            sender: expected_sender,
            round: expected_round,
            payload: Bytes::copy_from_slice(&body[HEADER_LEN..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame {
            sender: NodeId::new(3),
            round: RoundIndex::new(77),
            payload: Bytes::from_static(b"\x0d\x0e"),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = frame();
        let wire = f.encode();
        assert_eq!(wire.len(), 1 + 8 + 2 + 4);
        let back = Frame::decode(&wire, NodeId::new(3), RoundIndex::new(77)).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        // CRC-32 detects all single-bit errors: flip every bit in turn.
        let wire = frame().encode();
        for bit in 0..wire.len() * 8 {
            let mut corrupted = wire.to_vec();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let result = Frame::decode(&corrupted, NodeId::new(3), RoundIndex::new(77));
            assert!(result.is_err(), "bit {bit} slipped through");
        }
    }

    #[test]
    fn burst_errors_up_to_32_bits_are_detected() {
        // CRC-32 guarantees detection of any burst shorter than 33 bits.
        let wire = frame().encode();
        for start in 0..(wire.len() * 8 - 32) {
            let mut corrupted = wire.to_vec();
            for bit in start..start + 32 {
                corrupted[bit / 8] ^= 1 << (bit % 8);
            }
            assert!(
                Frame::decode(&corrupted, NodeId::new(3), RoundIndex::new(77)).is_err(),
                "burst at {start} slipped through"
            );
        }
    }

    #[test]
    fn mistimed_frames_fail_the_header_check() {
        let wire = frame().encode();
        assert_eq!(
            Frame::decode(&wire, NodeId::new(2), RoundIndex::new(77)),
            Err(FrameError::HeaderMismatch)
        );
        assert_eq!(
            Frame::decode(&wire, NodeId::new(3), RoundIndex::new(78)),
            Err(FrameError::HeaderMismatch)
        );
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(
            Frame::decode(b"\x01\x02", NodeId::new(1), RoundIndex::ZERO),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn forged_crc_makes_corruption_undetectable() {
        // The malicious fault class made concrete: corrupt the payload AND
        // recompute the CRC — local detection passes, semantics are wrong.
        let wire = frame().encode().to_vec();
        let mut body = wire[..wire.len() - 4].to_vec();
        let payload_start = 1 + 8;
        body[payload_start] ^= 0xFF;
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        let decoded = Frame::decode(&body, NodeId::new(3), RoundIndex::new(77)).unwrap();
        assert_ne!(decoded.payload, frame().payload, "accepted but wrong");
    }
}
