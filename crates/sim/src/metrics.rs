//! Zero-overhead observability hooks for the simulator and the protocol.
//!
//! The engine and the diagnostic jobs report what they do through a shared
//! [`MetricsSink`]. The default [`NoopSink`] compiles every hook down to an
//! empty inlined call, so the allocation-free `Cluster::run_round` fast path
//! is preserved exactly (enforced by the counting-allocator test in
//! `tests/alloc_free.rs`). Swapping in a [`RecordingSink`] turns the same run
//! into an inspectable diagnostic session: named counters, gauges, histogram
//! summaries, and a round-stamped structured [`MetricsEvent`] stream that
//! `tt-analysis` renders into reports and `ttdiag metrics` dumps as
//! JSON/CSV.
//!
//! Instrumentation discipline: anything that costs more than reading a flag
//! — building an event payload, walking a matrix column — must be guarded by
//! [`MetricsSink::enabled`], which a [`NoopSink`] answers `false`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::bus::SlotFaultClass;
use crate::time::{NodeId, RoundIndex};

/// A structured, round-stamped observation emitted by the engine, the
/// diagnostic protocol, or the fault injector.
///
/// Events are serde-serializable and ordered: within one run, events appear
/// in simulation order (slot by slot, and node-id order within a slot), so a
/// recorded stream is a stable golden artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricsEvent {
    /// One TDMA round finished executing (engine).
    ///
    /// `wall_ns` is host wall-clock time for the round; it is the one
    /// nondeterministic field in the stream and is normalized to zero by
    /// golden tests.
    RoundCompleted {
        /// The completed round `k`.
        round: RoundIndex,
        /// Host wall-clock nanoseconds spent executing the round.
        wall_ns: u64,
    },
    /// The fault pipeline disturbed a sending slot (engine; ground truth).
    SlotFault {
        /// Round of the disturbed slot.
        round: RoundIndex,
        /// Owner of the disturbed slot.
        sender: NodeId,
        /// Ground-truth fault class the pipeline applied.
        class: SlotFaultClass,
    },
    /// A protocol instance disseminated its local syndrome (phase 2).
    Dissemination {
        /// The observing/transmitting node.
        node: NodeId,
        /// Round in which the dissemination executed.
        round: RoundIndex,
        /// Round whose slot carries the syndrome on the bus.
        tx_round: RoundIndex,
        /// Accusation bits folded into the outgoing syndrome
        /// (membership-variant minority accusations; 0 for plain diagnosis).
        accusations: u64,
    },
    /// A protocol instance aggregated received syndromes into its
    /// diagnostic-matrix window (phases 1 and 3).
    Aggregation {
        /// The aggregating node.
        node: NodeId,
        /// Round in which the aggregation executed.
        round: RoundIndex,
        /// Rows of the aligned matrix that were missing (ε rows).
        epsilon_rows: u64,
    },
    /// An H-maj vote over one diagnostic-matrix column was *contested*:
    /// at least one explicit faulty opinion or ε entry, or an undecidable
    /// outcome. (All-healthy unanimous columns are not emitted — they are
    /// the steady state and would dominate the stream.)
    VoteTally {
        /// The analyzing node.
        node: NodeId,
        /// Round in which the analysis executed.
        decided_at: RoundIndex,
        /// The diagnosed round (`decided_at` minus the diagnosis lag).
        diagnosed: RoundIndex,
        /// The node being voted on.
        subject: NodeId,
        /// Explicit "healthy" opinions.
        ok: u64,
        /// Explicit "faulty" opinions.
        faulty: u64,
        /// Missing opinions (ε).
        epsilon: u64,
        /// `Some(healthy?)` when decided, `None` when undecidable.
        decided: Option<bool>,
    },
    /// A penalty counter increased (subject convicted for the diagnosed
    /// round).
    PenaltyCharged {
        /// The observing node running the p/r algorithm.
        node: NodeId,
        /// Round in which the update executed.
        decided_at: RoundIndex,
        /// The diagnosed round the conviction refers to.
        diagnosed: RoundIndex,
        /// The convicted node.
        subject: NodeId,
        /// Penalty counter value after the charge.
        penalty: u64,
    },
    /// A reward counter increased (subject healthy while carrying a
    /// pending penalty).
    RewardEarned {
        /// The observing node running the p/r algorithm.
        node: NodeId,
        /// Round in which the update executed.
        decided_at: RoundIndex,
        /// The diagnosed round the acquittal refers to.
        diagnosed: RoundIndex,
        /// The rewarded node.
        subject: NodeId,
        /// Reward counter value after the increment.
        reward: u64,
    },
    /// The reward threshold was reached: both counters reset (forgiveness).
    Forgiveness {
        /// The observing node running the p/r algorithm.
        node: NodeId,
        /// Round in which the update executed.
        decided_at: RoundIndex,
        /// The diagnosed round that completed the reward streak.
        diagnosed: RoundIndex,
        /// The forgiven node.
        subject: NodeId,
    },
    /// The penalty threshold was exceeded: the subject is isolated.
    Isolation {
        /// The observing node running the p/r algorithm.
        node: NodeId,
        /// Round in which the update executed.
        decided_at: RoundIndex,
        /// The diagnosed round whose conviction crossed the threshold.
        diagnosed: RoundIndex,
        /// The isolated node.
        subject: NodeId,
        /// Penalty counter value that crossed the threshold.
        penalty: u64,
    },
    /// The reintegration extension readmitted a previously isolated node
    /// after observing enough healthy rounds.
    Reintegration {
        /// The observing node running the p/r algorithm.
        node: NodeId,
        /// Round in which the update executed.
        decided_at: RoundIndex,
        /// The diagnosed round that completed the observation streak.
        diagnosed: RoundIndex,
        /// The readmitted node.
        subject: NodeId,
    },
    /// The membership variant installed a new view.
    ViewInstalled {
        /// The node installing the view.
        node: NodeId,
        /// Monotonic view identifier.
        view_id: u64,
        /// Round in which the view was installed.
        installed_at: RoundIndex,
        /// The diagnosed round the view reflects.
        diagnosed: RoundIndex,
        /// Members of the new view, in node-id order.
        members: Vec<NodeId>,
    },
}

impl MetricsEvent {
    /// The round the event is stamped with (execution round for protocol
    /// events, slot round for engine events).
    pub fn round(&self) -> RoundIndex {
        match *self {
            MetricsEvent::RoundCompleted { round, .. }
            | MetricsEvent::SlotFault { round, .. }
            | MetricsEvent::Dissemination { round, .. }
            | MetricsEvent::Aggregation { round, .. } => round,
            MetricsEvent::VoteTally { decided_at, .. }
            | MetricsEvent::PenaltyCharged { decided_at, .. }
            | MetricsEvent::RewardEarned { decided_at, .. }
            | MetricsEvent::Forgiveness { decided_at, .. }
            | MetricsEvent::Isolation { decided_at, .. }
            | MetricsEvent::Reintegration { decided_at, .. } => decided_at,
            MetricsEvent::ViewInstalled { installed_at, .. } => installed_at,
        }
    }

    /// A short stable label for the event kind (used by CSV export and
    /// summary reports).
    pub fn kind(&self) -> &'static str {
        match self {
            MetricsEvent::RoundCompleted { .. } => "round_completed",
            MetricsEvent::SlotFault { .. } => "slot_fault",
            MetricsEvent::Dissemination { .. } => "dissemination",
            MetricsEvent::Aggregation { .. } => "aggregation",
            MetricsEvent::VoteTally { .. } => "vote_tally",
            MetricsEvent::PenaltyCharged { .. } => "penalty_charged",
            MetricsEvent::RewardEarned { .. } => "reward_earned",
            MetricsEvent::Forgiveness { .. } => "forgiveness",
            MetricsEvent::Isolation { .. } => "isolation",
            MetricsEvent::Reintegration { .. } => "reintegration",
            MetricsEvent::ViewInstalled { .. } => "view_installed",
        }
    }
}

/// A sink for simulator and protocol observability signals.
///
/// Every hook has a no-op default, so implementors opt into exactly the
/// signals they care about. All hooks take `&self`: sinks are shared between
/// the engine and every job context of a cluster, and must synchronize
/// internally if they record (the [`RecordingSink`] uses a mutex; the
/// [`NoopSink`] needs nothing).
pub trait MetricsSink: Send + Sync {
    /// Whether expensive instrumentation (event payload construction,
    /// per-column tallies) should run at all.
    ///
    /// The engine and the protocol guard every allocating code path behind
    /// this, which is how the [`NoopSink`] keeps the hot path
    /// allocation-free.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge to `value`.
    fn gauge(&self, name: &'static str, value: i64) {
        let _ = (name, value);
    }

    /// Records one observation of the named histogram.
    fn histogram(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Consumes one structured event.
    ///
    /// Callers only construct events behind an [`MetricsSink::enabled`]
    /// check, so implementors answering `false` never see this called from
    /// the engine or the bundled protocol jobs.
    fn emit(&self, event: &MetricsEvent) {
        let _ = event;
    }
}

/// The do-nothing sink: every hook is an empty default method and
/// [`MetricsSink::enabled`] answers `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl MetricsSink for NoopSink {}

/// The process-wide [`NoopSink`] instance uninstrumented clusters point at,
/// so defaulting the sink allocates nothing.
pub static NOOP_SINK: NoopSink = NoopSink;

/// Summary statistics of one named histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSummary {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One named counter value in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedCounter {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One named gauge value in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedGauge {
    /// Gauge name.
    pub name: String,
    /// Last set value.
    pub value: i64,
}

/// One named histogram summary in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedHistogram {
    /// Histogram name.
    pub name: String,
    /// Summary statistics.
    pub summary: HistogramSummary,
}

/// A serializable snapshot of everything a [`RecordingSink`] captured.
///
/// Counters, gauges and histograms are sorted by name; events are in
/// emission (simulation) order.
///
/// # Serialized stream framing
///
/// `Serialize`/`Deserialize` are hand-written: each event in the `events`
/// array is framed as `{"seq": N, "event": {...}}` with a monotone `seq`
/// equal to its position in the stream (the same [`crate::stream::Framed`]
/// unit the live feeds of `ttdiag serve` use), so any consumer of a
/// serialized report or feed can detect gaps. Deserialization is
/// back-compatible: a report written before framing existed — bare event
/// objects in `events` — still parses, and seq numbers are re-derived from
/// stream position.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// All counters, sorted by name.
    pub counters: Vec<NamedCounter>,
    /// All gauges, sorted by name.
    pub gauges: Vec<NamedGauge>,
    /// All histogram summaries, sorted by name.
    pub histograms: Vec<NamedHistogram>,
    /// The structured event stream, in emission order.
    pub events: Vec<MetricsEvent>,
}

impl Serialize for MetricsReport {
    fn to_value(&self) -> serde::Value {
        use crate::stream::Framed;
        use serde::Value;
        let events = self
            .events
            .iter()
            .enumerate()
            .map(|(i, event)| {
                Framed {
                    seq: i as u64,
                    event: event.clone(),
                }
                .to_value()
            })
            .collect();
        Value::Map(vec![
            ("counters".to_string(), self.counters.to_value()),
            ("gauges".to_string(), self.gauges.to_value()),
            ("histograms".to_string(), self.histograms.to_value()),
            ("events".to_string(), Value::Seq(events)),
        ])
    }
}

impl Deserialize for MetricsReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use crate::stream::Framed;
        use serde::{DeError, Value};
        let map = v
            .as_map()
            .ok_or_else(|| DeError::custom("MetricsReport: expected map"))?;
        let field = |key: &str| {
            Value::get_field(map, key)
                .ok_or_else(|| DeError::custom(format!("MetricsReport: missing field `{key}`")))
        };
        let events = field("events")?
            .as_seq()
            .ok_or_else(|| DeError::custom("MetricsReport: `events` must be a sequence"))?
            .iter()
            .map(|e| Framed::<MetricsEvent>::from_value(e).map(|f| f.event))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MetricsReport {
            counters: Deserialize::from_value(field("counters")?)?,
            gauges: Deserialize::from_value(field("gauges")?)?,
            histograms: Deserialize::from_value(field("histograms")?)?,
            events,
        })
    }
}

#[derive(Debug, Default)]
struct Recorded {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, HistogramSummary>,
    events: Vec<MetricsEvent>,
}

/// An in-memory sink that records everything: counters, gauges, histogram
/// summaries, and the full structured event stream.
///
/// Shared across the engine and all job contexts of a cluster (wrap in an
/// `Arc`); a mutex serializes concurrent access, which is uncontended in the
/// single-threaded engine.
#[derive(Debug, Default)]
pub struct RecordingSink {
    inner: Mutex<Recorded>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of the named counter (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// A clone of the recorded event stream.
    pub fn events(&self) -> Vec<MetricsEvent> {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .events
            .clone()
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .events
            .len()
    }

    /// Snapshots everything recorded so far into a serializable report.
    pub fn report(&self) -> MetricsReport {
        let inner = self.inner.lock().expect("metrics mutex poisoned");
        MetricsReport {
            counters: inner
                .counters
                .iter()
                .map(|(&name, &value)| NamedCounter {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&name, &value)| NamedGauge {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&name, &summary)| NamedHistogram {
                    name: name.to_string(),
                    summary,
                })
                .collect(),
            events: inner.events.clone(),
        }
    }
}

impl MetricsSink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        *self
            .inner
            .lock()
            .expect("metrics mutex poisoned")
            .counters
            .entry(name)
            .or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: i64) {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .gauges
            .insert(name, value);
    }

    fn histogram(&self, name: &'static str, value: u64) {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .histograms
            .entry(name)
            .or_default()
            .observe(value);
    }

    fn emit(&self, event: &MetricsEvent) {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .events
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.counter("x", 1);
        sink.gauge("x", 1);
        sink.histogram("x", 1);
        sink.emit(&MetricsEvent::RoundCompleted {
            round: RoundIndex::ZERO,
            wall_ns: 0,
        });
    }

    #[test]
    fn recording_sink_accumulates_counters_and_events() {
        let sink = RecordingSink::new();
        assert!(sink.enabled());
        sink.counter("sim.slots", 4);
        sink.counter("sim.slots", 4);
        sink.gauge("cluster.n_nodes", 8);
        sink.histogram("sim.round_ns", 10);
        sink.histogram("sim.round_ns", 30);
        sink.emit(&MetricsEvent::SlotFault {
            round: RoundIndex::new(3),
            sender: NodeId::new(2),
            class: SlotFaultClass::Benign,
        });
        assert_eq!(sink.counter_value("sim.slots"), 8);
        assert_eq!(sink.counter_value("absent"), 0);
        assert_eq!(sink.event_count(), 1);
        let report = sink.report();
        assert_eq!(
            report.counters,
            vec![NamedCounter {
                name: "sim.slots".into(),
                value: 8
            }]
        );
        assert_eq!(report.gauges[0].value, 8);
        let h = &report.histograms[0].summary;
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 40, 10, 30));
        assert!((h.mean() - 20.0).abs() < 1e-9);
        assert_eq!(report.events[0].round(), RoundIndex::new(3));
        assert_eq!(report.events[0].kind(), "slot_fault");
    }

    #[test]
    fn histogram_summary_handles_empty_and_single() {
        let mut h = HistogramSummary::default();
        assert_eq!(h.mean(), 0.0);
        h.observe(7);
        assert_eq!((h.count, h.min, h.max), (1, 7, 7));
    }

    #[test]
    fn event_round_stamps_cover_all_variants() {
        let r = RoundIndex::new(9);
        let n = NodeId::new(1);
        let events = [
            MetricsEvent::RoundCompleted {
                round: r,
                wall_ns: 1,
            },
            MetricsEvent::SlotFault {
                round: r,
                sender: n,
                class: SlotFaultClass::Asymmetric,
            },
            MetricsEvent::Dissemination {
                node: n,
                round: r,
                tx_round: r,
                accusations: 0,
            },
            MetricsEvent::Aggregation {
                node: n,
                round: r,
                epsilon_rows: 0,
            },
            MetricsEvent::VoteTally {
                node: n,
                decided_at: r,
                diagnosed: RoundIndex::new(7),
                subject: n,
                ok: 2,
                faulty: 1,
                epsilon: 0,
                decided: Some(true),
            },
            MetricsEvent::PenaltyCharged {
                node: n,
                decided_at: r,
                diagnosed: RoundIndex::new(7),
                subject: n,
                penalty: 1,
            },
            MetricsEvent::RewardEarned {
                node: n,
                decided_at: r,
                diagnosed: RoundIndex::new(7),
                subject: n,
                reward: 1,
            },
            MetricsEvent::Forgiveness {
                node: n,
                decided_at: r,
                diagnosed: RoundIndex::new(7),
                subject: n,
            },
            MetricsEvent::Isolation {
                node: n,
                decided_at: r,
                diagnosed: RoundIndex::new(7),
                subject: n,
                penalty: 4,
            },
            MetricsEvent::Reintegration {
                node: n,
                decided_at: r,
                diagnosed: RoundIndex::new(7),
                subject: n,
            },
            MetricsEvent::ViewInstalled {
                node: n,
                view_id: 2,
                installed_at: r,
                diagnosed: RoundIndex::new(7),
                members: vec![n],
            },
        ];
        let mut kinds = std::collections::BTreeSet::new();
        for e in &events {
            assert_eq!(e.round(), r, "{}", e.kind());
            kinds.insert(e.kind());
        }
        assert_eq!(kinds.len(), events.len());
    }
}
