//! The shared broadcast bus and the fault pipeline that shapes receptions.
//!
//! Every transmission on the bus produces, for each receiver, a
//! [`Reception`] outcome. Faults are injected by an implementation of
//! [`FaultPipeline`] — the software analogue of the paper's *disturbance
//! node* (Sec. 8), which corrupted or dropped messages on the physical bus.
//!
//! The pipeline expresses faults at the *effect* level ([`SlotEffect`]),
//! following the paper's Customizable Fault-Effect Model (Sec. 4):
//!
//! * **benign** (symmetric): the message is locally detectable by *all*
//!   receivers (syntactically incorrect, or early/late/missing);
//! * **symmetric malicious**: all receivers accept the same, semantically
//!   incorrect message (not locally detectable);
//! * **asymmetric**: the message is locally detectable by at least one but
//!   not all receivers. Per the broadcast-channel assumption, receivers that
//!   do not detect it all receive the *same* message.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::time::{NodeId, RoundIndex};

/// What a single receiver observes for one sending slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reception {
    /// The frame was received and passed local error detection; the
    /// interface variable is updated and its validity bit set to 1.
    Valid(Bytes),
    /// Local error detection flagged the frame (corrupt / missing /
    /// mistimed); the validity bit is set to 0 and the variable not updated.
    Detected,
}

impl Reception {
    /// True iff the reception passed local error detection.
    pub fn is_valid(&self) -> bool {
        matches!(self, Reception::Valid(_))
    }
}

/// Ground-truth classification of what the fault pipeline did to one slot.
///
/// This is recorded in the trace and consumed by the test oracles; the
/// protocol under test never sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotFaultClass {
    /// The frame was delivered correctly to everyone.
    Correct,
    /// Symmetric benign fault: locally detected by all receivers.
    Benign,
    /// Symmetric malicious fault: all receivers accepted a wrong payload.
    SymmetricMalicious,
    /// Asymmetric fault: detected by a strict, non-empty subset of receivers.
    Asymmetric,
}

/// The effect of the fault pipeline on one transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotEffect {
    /// Deliver the payload unmodified to every receiver.
    Correct,
    /// All receivers locally detect the fault (validity bit 0). Models
    /// crashes, omissions, noise bursts, silence, spikes.
    Benign,
    /// All receivers accept `payload` instead of the real one (validity bit
    /// 1, wrong value). Not locally detectable.
    SymmetricMalicious {
        /// The corrupted payload delivered to all receivers.
        payload: Bytes,
    },
    /// Receivers in `detected_by` (0-based node indices) locally detect the
    /// fault; all others receive the true payload. Models
    /// Slightly-Off-Specification faults and spatially partial disturbances.
    Asymmetric {
        /// 0-based indices of the receivers that locally detect the fault.
        detected_by: Vec<usize>,
        /// What the sender's local collision detector observes on its own
        /// bus tap: `true` if the frame read back syntactically correct.
        collision_ok: bool,
    },
}

impl SlotEffect {
    /// The ground-truth class of this effect, validating subset sizes.
    ///
    /// An `Asymmetric` effect that is detected by nobody degenerates to
    /// `Correct`; one detected by all `n - 1` receivers degenerates to
    /// `Benign`.
    pub fn classify(&self, n_nodes: usize, sender: NodeId) -> SlotFaultClass {
        match self {
            SlotEffect::Correct => SlotFaultClass::Correct,
            SlotEffect::Benign => SlotFaultClass::Benign,
            SlotEffect::SymmetricMalicious { .. } => SlotFaultClass::SymmetricMalicious,
            SlotEffect::Asymmetric { detected_by, .. } => {
                let detected = detected_by
                    .iter()
                    .filter(|&&r| r != sender.index() && r < n_nodes)
                    .count();
                if detected == 0 {
                    SlotFaultClass::Correct
                } else if detected == n_nodes - 1 {
                    SlotFaultClass::Benign
                } else {
                    SlotFaultClass::Asymmetric
                }
            }
        }
    }

    /// What the sender's local collision detector reports for this effect.
    ///
    /// A benign fault is observed on the sender's own tap too (`false`); a
    /// malicious frame is syntactically fine (`true`); for asymmetric
    /// effects the outcome depends on where the disturbance hit and is
    /// carried explicitly.
    pub fn collision_ok(&self) -> bool {
        match self {
            SlotEffect::Correct | SlotEffect::SymmetricMalicious { .. } => true,
            SlotEffect::Benign => false,
            SlotEffect::Asymmetric { collision_ok, .. } => *collision_ok,
        }
    }

    /// Computes the reception outcome for receiver index `rx` (0-based).
    pub fn reception_for(&self, rx: usize, true_payload: &Bytes) -> Reception {
        match self {
            SlotEffect::Correct => Reception::Valid(true_payload.clone()),
            SlotEffect::Benign => Reception::Detected,
            SlotEffect::SymmetricMalicious { payload } => Reception::Valid(payload.clone()),
            SlotEffect::Asymmetric { detected_by, .. } => {
                if detected_by.contains(&rx) {
                    Reception::Detected
                } else {
                    Reception::Valid(true_payload.clone())
                }
            }
        }
    }
}

/// Context handed to the fault pipeline for each transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxCtx {
    /// The round in which the slot lies.
    pub round: RoundIndex,
    /// The sending node (slot position = `sender.slot()`).
    pub sender: NodeId,
    /// Cluster size.
    pub n_nodes: usize,
    /// Absolute slot number since simulation start
    /// (`round * n_nodes + sender.slot()`).
    pub abs_slot: u64,
}

/// The result of pushing one frame through the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxOutcome {
    /// Reception per receiver index (length `n_nodes`; the entry at the
    /// sender's own index reflects its loop-back reception).
    pub receptions: Vec<Reception>,
    /// What the sender's local collision detector observed.
    pub collision_ok: bool,
    /// Ground-truth classification for the trace/oracles.
    pub class: SlotFaultClass,
}

/// A reusable, caller-owned buffer holding one slot's transmission outcome.
///
/// [`FaultPipeline::transmit_into`] fills it in place, reusing the
/// `receptions` allocation across slots; the engine owns one per cluster, so
/// steady-state rounds do not allocate on the transmission path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotOutcome {
    /// Reception per receiver index (length `n_nodes` after a fill; the
    /// entry at the sender's own index reflects its loop-back reception).
    pub receptions: Vec<Reception>,
    /// What the sender's local collision detector observed.
    pub collision_ok: bool,
    /// Ground-truth classification for the trace/oracles.
    pub class: SlotFaultClass,
}

impl Default for SlotOutcome {
    fn default() -> Self {
        SlotOutcome::new()
    }
}

impl SlotOutcome {
    /// An empty buffer; the first fill sizes it.
    pub fn new() -> Self {
        SlotOutcome {
            receptions: Vec::new(),
            collision_ok: true,
            class: SlotFaultClass::Correct,
        }
    }

    /// An empty buffer pre-sized for an `n_nodes` cluster.
    pub fn with_capacity(n_nodes: usize) -> Self {
        SlotOutcome {
            receptions: Vec::with_capacity(n_nodes),
            collision_ok: true,
            class: SlotFaultClass::Correct,
        }
    }

    /// Moves a by-value outcome into the buffer, reusing its allocation.
    pub fn fill_from(&mut self, outcome: TxOutcome) {
        self.receptions.clear();
        self.receptions.extend(outcome.receptions);
        self.collision_ok = outcome.collision_ok;
        self.class = outcome.class;
    }

    /// Converts the buffer into an owned [`TxOutcome`], consuming it.
    pub fn into_outcome(self) -> TxOutcome {
        TxOutcome {
            receptions: self.receptions,
            collision_ok: self.collision_ok,
            class: self.class,
        }
    }
}

/// A pluggable model of disturbances on the broadcast bus.
///
/// Implementations decide, per transmission, which [`SlotEffect`] applies.
/// They may keep state (e.g. a burst spanning several slots) and may use
/// their own seeded randomness; the simulator itself adds none.
///
/// Most pipelines only implement [`FaultPipeline::effect`]; pipelines that
/// need finer, per-receiver control than one [`SlotEffect`] can express —
/// e.g. a replicated bus whose channels fail independently
/// ([`crate::ReplicatedBus`]) — override [`FaultPipeline::transmit`]
/// instead.
pub trait FaultPipeline: Send {
    /// Chooses the effect applied to the transmission described by `ctx`.
    fn effect(&mut self, ctx: &TxCtx) -> SlotEffect;

    /// Produces the full per-receiver outcome of the transmission. The
    /// default applies [`FaultPipeline::effect`] uniformly via
    /// [`apply_effect`].
    fn transmit(&mut self, ctx: &TxCtx, payload: &Bytes) -> TxOutcome {
        apply_effect(&self.effect(ctx), ctx, payload)
    }

    /// Fills `out` with the per-receiver outcome of the transmission,
    /// reusing the buffer's allocations. The engine's hot path goes through
    /// this method once per slot.
    ///
    /// The default delegates to [`FaultPipeline::transmit`], so existing
    /// pipelines — including plain `FnMut` closures and pipelines that
    /// override `transmit` — keep working unchanged. Allocation-conscious
    /// pipelines override it with an in-place fill (usually via
    /// [`apply_effect_into`]); the contract is that after the call `out` is
    /// entirely overwritten and equal to what `transmit` would have
    /// returned.
    fn transmit_into(&mut self, ctx: &TxCtx, payload: &Bytes, out: &mut SlotOutcome) {
        out.fill_from(self.transmit(ctx, payload));
    }
}

/// The identity pipeline: a perfectly healthy bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultPipeline for NoFaults {
    fn effect(&mut self, _ctx: &TxCtx) -> SlotEffect {
        SlotEffect::Correct
    }

    fn transmit_into(&mut self, ctx: &TxCtx, payload: &Bytes, out: &mut SlotOutcome) {
        apply_effect_into(&SlotEffect::Correct, ctx, payload, out);
    }
}

impl<F> FaultPipeline for F
where
    F: FnMut(&TxCtx) -> SlotEffect + Send,
{
    fn effect(&mut self, ctx: &TxCtx) -> SlotEffect {
        self(ctx)
    }

    fn transmit_into(&mut self, ctx: &TxCtx, payload: &Bytes, out: &mut SlotOutcome) {
        apply_effect_into(&self(ctx), ctx, payload, out);
    }
}

/// Classifies a per-receiver outcome against the true payload, for traces
/// and oracles: all-valid-and-true = correct, all-detected = benign,
/// all-valid-but-wrong = symmetric malicious, anything mixed = asymmetric.
pub fn classify_receptions(
    receptions: &[Reception],
    true_payload: &Bytes,
    sender: NodeId,
) -> SlotFaultClass {
    let mut valid_true = 0usize;
    let mut valid_wrong = 0usize;
    let mut detected = 0usize;
    for (rx, r) in receptions.iter().enumerate() {
        if rx == sender.index() {
            continue; // the sender's loop-back does not classify the slot
        }
        match r {
            Reception::Valid(p) if p == true_payload => valid_true += 1,
            Reception::Valid(_) => valid_wrong += 1,
            Reception::Detected => detected += 1,
        }
    }
    let others = valid_true + valid_wrong + detected;
    if detected == others && others > 0 {
        SlotFaultClass::Benign
    } else if detected > 0 {
        SlotFaultClass::Asymmetric
    } else if valid_wrong > 0 {
        SlotFaultClass::SymmetricMalicious
    } else {
        SlotFaultClass::Correct
    }
}

/// Applies an effect to a transmission, producing the per-receiver outcome.
///
/// Exposed publicly so protocol variants that model the bus at slot
/// granularity (e.g. the low-latency system-level variant of the paper's
/// Sec. 10) can reuse the exact reception semantics of the simulator.
pub fn apply_effect(effect: &SlotEffect, ctx: &TxCtx, payload: &Bytes) -> TxOutcome {
    let mut out = SlotOutcome::with_capacity(ctx.n_nodes);
    apply_effect_into(effect, ctx, payload, &mut out);
    out.into_outcome()
}

/// In-place variant of [`apply_effect`]: fills `out`, reusing its buffers.
///
/// [`Reception`] payloads are reference-counted [`Bytes`] handles, so
/// applying `Correct` / `SymmetricMalicious` / `Asymmetric` effects clones
/// no payload bytes; with a warm buffer the fill performs no heap
/// allocation at all.
pub fn apply_effect_into(effect: &SlotEffect, ctx: &TxCtx, payload: &Bytes, out: &mut SlotOutcome) {
    out.receptions.clear();
    out.receptions
        .extend((0..ctx.n_nodes).map(|rx| effect.reception_for(rx, payload)));
    out.collision_ok = effect.collision_ok();
    out.class = effect.classify(ctx.n_nodes, ctx.sender);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> TxCtx {
        TxCtx {
            round: RoundIndex::new(7),
            sender: NodeId::new(2),
            n_nodes: 4,
            abs_slot: 29,
        }
    }

    #[test]
    fn correct_effect_delivers_everywhere() {
        let payload = Bytes::from_static(b"\x0f");
        let out = apply_effect(&SlotEffect::Correct, &ctx(), &payload);
        assert_eq!(out.class, SlotFaultClass::Correct);
        assert!(out.collision_ok);
        assert!(out
            .receptions
            .iter()
            .all(|r| *r == Reception::Valid(payload.clone())));
    }

    #[test]
    fn benign_effect_detected_by_all() {
        let out = apply_effect(&SlotEffect::Benign, &ctx(), &Bytes::from_static(b"x"));
        assert_eq!(out.class, SlotFaultClass::Benign);
        assert!(!out.collision_ok);
        assert!(out.receptions.iter().all(|r| *r == Reception::Detected));
    }

    #[test]
    fn malicious_effect_swaps_payload_without_detection() {
        let wrong = Bytes::from_static(b"\xff");
        let out = apply_effect(
            &SlotEffect::SymmetricMalicious {
                payload: wrong.clone(),
            },
            &ctx(),
            &Bytes::from_static(b"\x00"),
        );
        assert_eq!(out.class, SlotFaultClass::SymmetricMalicious);
        assert!(out.collision_ok, "malicious frames are syntactically fine");
        assert!(out
            .receptions
            .iter()
            .all(|r| *r == Reception::Valid(wrong.clone())));
    }

    #[test]
    fn asymmetric_effect_splits_receivers() {
        let payload = Bytes::from_static(b"\x05");
        let eff = SlotEffect::Asymmetric {
            detected_by: vec![0, 3],
            collision_ok: true,
        };
        let out = apply_effect(&eff, &ctx(), &payload);
        assert_eq!(out.class, SlotFaultClass::Asymmetric);
        assert_eq!(out.receptions[0], Reception::Detected);
        assert_eq!(out.receptions[1], Reception::Valid(payload.clone()));
        assert_eq!(out.receptions[2], Reception::Valid(payload.clone()));
        assert_eq!(out.receptions[3], Reception::Detected);
    }

    #[test]
    fn asymmetric_degenerates_to_correct_or_benign() {
        let none = SlotEffect::Asymmetric {
            detected_by: vec![],
            collision_ok: true,
        };
        assert_eq!(none.classify(4, NodeId::new(2)), SlotFaultClass::Correct);
        // Detected by all three *other* nodes => benign; the sender's own
        // index in the list does not count.
        let all = SlotEffect::Asymmetric {
            detected_by: vec![0, 1, 2, 3],
            collision_ok: false,
        };
        assert_eq!(all.classify(4, NodeId::new(2)), SlotFaultClass::Benign);
    }

    #[test]
    fn closures_are_pipelines() {
        let mut p = |c: &TxCtx| {
            if c.sender == NodeId::new(1) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        assert_eq!(FaultPipeline::effect(&mut p, &ctx()), SlotEffect::Correct);
    }

    #[test]
    fn no_faults_is_identity() {
        assert_eq!(NoFaults.effect(&ctx()), SlotEffect::Correct);
    }

    #[test]
    fn transmit_into_overwrites_reused_buffer() {
        let payload = Bytes::from_static(b"\x2a");
        let mut pipeline = |c: &TxCtx| {
            if c.abs_slot.is_multiple_of(2) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let mut out = SlotOutcome::new();
        for abs_slot in 0..6u64 {
            let c = TxCtx {
                round: RoundIndex::new(abs_slot / 4),
                sender: NodeId::from_slot((abs_slot % 4) as usize),
                n_nodes: 4,
                abs_slot,
            };
            let legacy = FaultPipeline::transmit(&mut pipeline, &c, &payload);
            FaultPipeline::transmit_into(&mut pipeline, &c, &payload, &mut out);
            assert_eq!(out.receptions, legacy.receptions);
            assert_eq!(out.collision_ok, legacy.collision_ok);
            assert_eq!(out.class, legacy.class);
        }
    }

    #[test]
    fn default_transmit_into_delegates_to_transmit() {
        // A pipeline implementing only `effect` exercises the trait default.
        struct EffectOnly;
        impl FaultPipeline for EffectOnly {
            fn effect(&mut self, _ctx: &TxCtx) -> SlotEffect {
                SlotEffect::Asymmetric {
                    detected_by: vec![0, 3],
                    collision_ok: true,
                }
            }
        }
        let payload = Bytes::from_static(b"\x07");
        let legacy = EffectOnly.transmit(&ctx(), &payload);
        let mut out = SlotOutcome::new();
        EffectOnly.transmit_into(&ctx(), &payload, &mut out);
        assert_eq!(out.clone().into_outcome(), legacy);
    }
}
