//! Seeded Poisson transient arrivals, discretized to TDMA rounds.
//!
//! The Sec. 9 trade-off model treats independent external transients as a
//! Poisson process with rate `λ`. On a time-triggered bus a transient is
//! only observable at slot/round granularity, so the Monte Carlo tuning
//! sweeps discretize the process to one Bernoulli trial per round with
//! success probability `p = 1 − exp(−λ·T)` — the probability of at least
//! one arrival within a round of length `T`.
//!
//! The discretization is *exact* for the quantity the tuning studies
//! estimate: the probability that another arrival falls within `R` rounds
//! of a given one is `1 − (1 − p)^R = 1 − exp(−λ·R·T)`, precisely the
//! analytic false-correlation probability of the Fig. 3 model
//! (`tt_analysis::correlation_probability`). Sampling per round rather
//! than drawing exponential gaps keeps the draw count — and therefore the
//! RNG stream position — a pure function of the sampled round range, which
//! the sweep checkpoints rely on for byte-identical halt/resume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::Nanos;

/// Probability of at least one Poisson arrival at `rate_per_hour` within
/// one round of length `round`.
///
/// # Panics
///
/// Panics if `rate_per_hour` is negative or not finite.
pub fn per_round_probability(rate_per_hour: f64, round: Nanos) -> f64 {
    assert!(
        rate_per_hour.is_finite() && rate_per_hour >= 0.0,
        "invalid rate: {rate_per_hour}"
    );
    1.0 - (-rate_per_hour * round.as_secs_f64() / 3600.0).exp()
}

/// Samples which rounds in `first..=last` contain at least one Poisson
/// arrival, as one Bernoulli trial per round under a generator seeded with
/// `seed`. Returns the arrival rounds in increasing order (empty when
/// `first > last`).
///
/// Deterministic: the same `(rate, round, first, last, seed)` always
/// yields the same arrivals.
pub fn sample_arrival_rounds(
    rate_per_hour: f64,
    round: Nanos,
    first: u64,
    last: u64,
    seed: u64,
) -> Vec<u64> {
    let p = per_round_probability(rate_per_hour, round);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    if first > last {
        return out;
    }
    for r in first..=last {
        if rng.gen_bool(p) {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Nanos = Nanos::from_micros(2_500);

    #[test]
    fn per_round_probability_matches_closed_form() {
        // λ·T in hours for λ = 72 000/h, T = 2.5 ms: 0.05.
        let p = per_round_probability(72_000.0, T);
        assert!((p - (1.0 - (-0.05f64).exp())).abs() < 1e-15);
        assert_eq!(per_round_probability(0.0, T), 0.0);
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let a = sample_arrival_rounds(72_000.0, T, 4, 200, 7);
        let b = sample_arrival_rounds(72_000.0, T, 4, 200, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&r| (4..=200).contains(&r)));
        let c = sample_arrival_rounds(72_000.0, T, 4, 200, 8);
        assert_ne!(a, c, "different seeds draw different arrivals");
    }

    #[test]
    fn zero_rate_never_arrives_and_empty_range_is_empty() {
        assert!(sample_arrival_rounds(0.0, T, 4, 1_000, 1).is_empty());
        assert!(sample_arrival_rounds(1e9, T, 10, 9, 1).is_empty());
    }

    #[test]
    fn empirical_rate_tracks_p() {
        // 20 000 rounds at p ≈ 0.0488 ⇒ ~976 arrivals; loose 3σ band.
        let p = per_round_probability(72_000.0, T);
        let n = sample_arrival_rounds(72_000.0, T, 0, 19_999, 42).len() as f64;
        let expect = 20_000.0 * p;
        let sigma = (20_000.0 * p * (1.0 - p)).sqrt();
        assert!((n - expect).abs() < 3.0 * sigma, "n = {n}, expect {expect}");
    }
}
