//! ASCII timeline rendering of a simulation's fault trace.
//!
//! Produces a compact rounds × slots chart of what happened on the bus —
//! the textual analogue of the round diagrams in the paper's figures:
//!
//! ```text
//! round | s0 s1 s2 s3
//! ------+------------
//! r9    |  .  .  .  .
//! r10   |  .  B  .  .
//! r11   |  .  .  A  .
//! ```
//!
//! `.` = correct, `B` = benign, `M` = symmetric malicious, `A` =
//! asymmetric.

use crate::bus::SlotFaultClass;
use crate::time::{NodeId, RoundIndex};
use crate::trace::Trace;

/// Glyph for one slot outcome.
fn glyph(class: SlotFaultClass) -> char {
    match class {
        SlotFaultClass::Correct => '.',
        SlotFaultClass::Benign => 'B',
        SlotFaultClass::SymmetricMalicious => 'M',
        SlotFaultClass::Asymmetric => 'A',
    }
}

/// Renders rounds `from..=to` of a trace as an ASCII chart.
///
/// Requires the trace to have been recorded with at least
/// [`crate::TraceMode::Anomalies`] (absent records render as correct).
///
/// ```
/// use tt_sim::timeline::render;
/// use tt_sim::{NodeId, RoundIndex, SlotFaultClass, Trace, TraceMode};
///
/// let mut trace = Trace::new(TraceMode::Anomalies);
/// trace.record(RoundIndex::new(1), NodeId::new(2), SlotFaultClass::Benign);
/// let chart = render(&trace, 4, RoundIndex::new(0), RoundIndex::new(1));
/// assert!(chart.contains("r1    |  .  B  .  ."));
/// ```
pub fn render(trace: &Trace, n_nodes: usize, from: RoundIndex, to: RoundIndex) -> String {
    let mut out = String::from("round | ");
    for p in 0..n_nodes {
        out.push_str(&format!("s{p} "));
    }
    out.push('\n');
    out.push_str(&format!("------+{}\n", "-".repeat(3 * n_nodes)));
    let mut r = from;
    while r <= to {
        out.push_str(&format!("r{:<5}|", r.as_u64()));
        for p in 0..n_nodes {
            let class = trace.class_of(r, NodeId::from_slot(p));
            out.push_str(&format!("  {}", glyph(class)));
        }
        out.push('\n');
        r = r.next();
    }
    out
}

/// Renders only the rounds around recorded anomalies (with `context` rounds
/// of padding), keeping charts of long runs short.
pub fn render_anomalies(trace: &Trace, n_nodes: usize, context: u64) -> String {
    let Some(last) = trace.last_round() else {
        return String::from("(no anomalies recorded)\n");
    };
    let first = trace
        .records()
        .iter()
        .map(|rec| rec.round)
        .min()
        .unwrap_or(last);
    let from = RoundIndex::new(first.as_u64().saturating_sub(context));
    let to = last + context;
    render(trace, n_nodes, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceMode;

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMode::Anomalies);
        t.record(RoundIndex::new(5), NodeId::new(1), SlotFaultClass::Benign);
        t.record(
            RoundIndex::new(5),
            NodeId::new(3),
            SlotFaultClass::Asymmetric,
        );
        t.record(
            RoundIndex::new(6),
            NodeId::new(2),
            SlotFaultClass::SymmetricMalicious,
        );
        t
    }

    #[test]
    fn renders_glyphs_in_slot_order() {
        let chart = render(&sample(), 4, RoundIndex::new(5), RoundIndex::new(6));
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("r5"));
        assert!(lines[2].contains("B  .  A  ."), "{chart}");
        assert!(lines[3].contains(".  M  .  ."), "{chart}");
    }

    #[test]
    fn anomaly_rendering_pads_context() {
        let chart = render_anomalies(&sample(), 4, 1);
        assert!(chart.contains("r4"), "{chart}");
        assert!(chart.contains("r7"), "{chart}");
        assert!(!chart.contains("r3"), "{chart}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Trace::new(TraceMode::Anomalies);
        assert!(render_anomalies(&t, 4, 2).contains("no anomalies"));
    }
}
