//! Clock synchronization and the emergence of SOS faults.
//!
//! Time-triggered communication rests on synchronized clocks: every node
//! runs a local oscillator with physical drift, periodically corrected by a
//! fault-tolerant clock synchronization algorithm. A receiver accepts a
//! frame only if it arrives inside its *reception window*; a sender whose
//! clock sits close to the allowed offset is seen as timely by some
//! receivers and as mistimed by others — a **Slightly-Off-Specification
//! (SOS) fault**, the paper's canonical source of *asymmetric* faults
//! (Sec. 4, citing Ademaj et al. \[17\]).
//!
//! This module provides:
//!
//! * [`ClockEnsemble`] — per-node oscillators with configurable drift,
//!   resynchronized once per round by the Welch–Lynch fault-tolerant
//!   average (drop the `k` highest and lowest offset measurements, average
//!   the rest);
//! * [`ClockDrivenPipeline`] — a [`FaultPipeline`] in which reception
//!   outcomes *emerge* from clock state: a frame is locally detected by
//!   receiver `r` iff the sender–receiver clock offset exceeds the
//!   reception window. No fault class is ever injected directly; SOS
//!   asymmetry appears by itself when an oscillator degrades.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bus::{FaultPipeline, SlotEffect, TxCtx};
use crate::time::Nanos;

/// Configuration of a simulated clock ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockConfig {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Per-node oscillator drift in parts-per-million (signed; index =
    /// node index). A healthy quartz is within ±100 ppm.
    pub drift_ppm: Vec<f64>,
    /// Round length (drift accumulates over it between resyncs).
    pub round_length: Nanos,
    /// Half-width of the reception window: a frame is accepted iff the
    /// sender–receiver offset magnitude is below this.
    pub window_half: Nanos,
    /// How many extreme offset measurements the fault-tolerant average
    /// drops at each end (`k` in Welch–Lynch; tolerates `k` faulty clocks).
    pub fta_drop: usize,
    /// Standard deviation of the offset-measurement noise, in nanoseconds
    /// (jitter of the arrival-time reading).
    pub measurement_jitter_ns: f64,
    /// Maximum correction a clock can apply per resync, in nanoseconds
    /// (rate-correction hardware is bounded). A drift faster than
    /// `max_correction_ns` per round cannot be compensated: the node walks
    /// out of the ensemble — through the SOS zone — no matter how well it
    /// follows the protocol.
    pub max_correction_ns: f64,
}

impl ClockConfig {
    /// A healthy ensemble: small random drifts well inside the window.
    pub fn healthy(n_nodes: usize) -> Self {
        ClockConfig {
            n_nodes,
            drift_ppm: (0..n_nodes).map(|i| (i as f64 - 1.5) * 2.0).collect(),
            round_length: Nanos::from_micros(2_500),
            window_half: Nanos::from_micros(5),
            fta_drop: 1,
            measurement_jitter_ns: 20.0,
            max_correction_ns: 300.0,
        }
    }
}

/// The clock state of all nodes: offsets from ideal time, in nanoseconds.
#[derive(Debug, Clone)]
pub struct ClockEnsemble {
    config: ClockConfig,
    /// Current offset of each node's clock from ideal time (ns).
    offsets: Vec<f64>,
    rng: StdRng,
}

impl ClockEnsemble {
    /// Creates an ensemble with all clocks initially perfectly aligned.
    ///
    /// # Panics
    ///
    /// Panics if the drift vector length mismatches `n_nodes` or the FTA
    /// drop count would discard every measurement.
    pub fn new(config: ClockConfig, seed: u64) -> Self {
        assert_eq!(
            config.drift_ppm.len(),
            config.n_nodes,
            "one drift rate per node"
        );
        assert!(
            2 * config.fta_drop < config.n_nodes,
            "FTA would drop all measurements"
        );
        ClockEnsemble {
            offsets: vec![0.0; config.n_nodes],
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// The current offset of node index `i` from ideal time, in ns.
    pub fn offset_ns(&self, i: usize) -> f64 {
        self.offsets[i]
    }

    /// Overrides node `i`'s drift rate (e.g. a degrading oscillator).
    pub fn set_drift_ppm(&mut self, i: usize, ppm: f64) {
        self.config.drift_ppm[i] = ppm;
    }

    /// Advances all clocks by one round of free-running drift, then
    /// resynchronizes with the Welch–Lynch fault-tolerant average.
    pub fn advance_round(&mut self) {
        let round_ns = self.config.round_length.as_nanos() as f64;
        for (off, ppm) in self.offsets.iter_mut().zip(&self.config.drift_ppm) {
            *off += ppm * 1e-6 * round_ns;
        }
        // Each node measures every clock's offset relative to itself (with
        // jitter), drops the k extremes, averages, and corrects.
        let mut corrections = vec![0.0; self.config.n_nodes];
        #[allow(clippy::needless_range_loop)] // i is also the measuring node's identity
        for i in 0..self.config.n_nodes {
            let mut measured: Vec<f64> = (0..self.config.n_nodes)
                .map(|j| {
                    let true_delta = self.offsets[j] - self.offsets[i];
                    if i == j {
                        0.0
                    } else {
                        true_delta
                            + self.rng.gen_range(-1.0..1.0) * self.config.measurement_jitter_ns
                    }
                })
                .collect();
            measured.sort_by(|a, b| a.partial_cmp(b).expect("finite offsets"));
            let k = self.config.fta_drop;
            let kept = &measured[k..measured.len() - k];
            corrections[i] = kept.iter().sum::<f64>() / kept.len() as f64;
        }
        let limit = self.config.max_correction_ns;
        for (off, corr) in self.offsets.iter_mut().zip(&corrections) {
            *off += corr.clamp(-limit, limit);
        }
    }

    /// The set of receivers that locally detect the frame of sender `s` as
    /// mistimed: those whose clock differs from the sender's by more than
    /// the reception window.
    pub fn detected_by(&self, s: usize) -> Vec<usize> {
        let w = self.config.window_half.as_nanos() as f64;
        (0..self.config.n_nodes)
            .filter(|&r| r != s && (self.offsets[s] - self.offsets[r]).abs() > w)
            .collect()
    }

    /// Maximum pairwise clock offset (the achieved precision), in ns.
    pub fn precision_ns(&self) -> f64 {
        let max = self.offsets.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.offsets.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

/// A fault pipeline in which every reception outcome is derived from the
/// clock ensemble: timely frames pass, mistimed frames are locally
/// detected by exactly the receivers whose windows they miss.
///
/// The ensemble advances one round of drift + resync whenever slot 0 is
/// transmitted.
#[derive(Debug)]
pub struct ClockDrivenPipeline {
    clocks: ClockEnsemble,
    /// Scheduled oscillator degradations: (round, node index, new ppm).
    degradations: Vec<(u64, usize, f64)>,
}

impl ClockDrivenPipeline {
    /// Creates the pipeline around an ensemble.
    pub fn new(clocks: ClockEnsemble) -> Self {
        ClockDrivenPipeline {
            clocks,
            degradations: Vec::new(),
        }
    }

    /// Schedules node index `i`'s oscillator to change to `ppm` drift at
    /// the start of `round` (builder style).
    pub fn degrade_at(mut self, round: u64, i: usize, ppm: f64) -> Self {
        self.degradations.push((round, i, ppm));
        self
    }

    /// Read access to the ensemble (for instrumentation).
    pub fn clocks(&self) -> &ClockEnsemble {
        &self.clocks
    }
}

impl FaultPipeline for ClockDrivenPipeline {
    fn effect(&mut self, ctx: &TxCtx) -> SlotEffect {
        if ctx.sender.slot() == 0 {
            // New round: apply scheduled degradations, then drift + resync.
            let round = ctx.round.as_u64();
            for &(r, i, ppm) in &self.degradations {
                if r == round {
                    self.clocks.set_drift_ppm(i, ppm);
                }
            }
            self.clocks.advance_round();
        }
        let detected_by = self.clocks.detected_by(ctx.sender.index());
        if detected_by.is_empty() {
            SlotEffect::Correct
        } else {
            // The sender's own collision detector runs on the sender's own
            // clock: it sees its frame as timely.
            SlotEffect::Asymmetric {
                detected_by,
                collision_ok: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::SlotFaultClass;
    use crate::time::{NodeId, RoundIndex};

    #[test]
    fn healthy_ensemble_stays_synchronized() {
        let mut c = ClockEnsemble::new(ClockConfig::healthy(4), 42);
        for _ in 0..1_000 {
            c.advance_round();
        }
        // Precision stays far inside the 5 µs window.
        assert!(c.precision_ns() < 1_000.0, "{}", c.precision_ns());
        assert!(c.detected_by(0).is_empty());
    }

    #[test]
    fn fta_tolerates_one_runaway_clock() {
        let mut cfg = ClockConfig::healthy(4);
        cfg.drift_ppm[2] = 400.0; // 1 µs/round, far beyond the 300 ns correction limit
        let mut c = ClockEnsemble::new(cfg, 1);
        for _ in 0..200 {
            c.advance_round();
        }
        // The three healthy clocks stay mutually synchronized: the FTA
        // dropped the runaway's measurements.
        let healthy: Vec<f64> = [0, 1, 3].iter().map(|&i| c.offset_ns(i)).collect();
        let spread = healthy.iter().cloned().fold(f64::MIN, f64::max)
            - healthy.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1_000.0, "healthy spread {spread}");
        // The runaway is eventually outside everyone's window.
        assert_eq!(c.detected_by(2), vec![0, 1, 3]);
    }

    #[test]
    fn sos_zone_produces_asymmetric_detection() {
        // Construct an ensemble where node 0 sits right at the window edge:
        // beyond node 3's window, inside node 1's.
        let cfg = ClockConfig {
            n_nodes: 4,
            drift_ppm: vec![0.0; 4],
            round_length: Nanos::from_micros(2_500),
            window_half: Nanos::from_micros(5),
            fta_drop: 1,
            measurement_jitter_ns: 0.0,
            max_correction_ns: 300.0,
        };
        let mut c = ClockEnsemble::new(cfg, 0);
        c.offsets = vec![4_000.0, 0.0, -500.0, -1_500.0];
        let d = c.detected_by(0);
        assert_eq!(d, vec![3], "only the farthest receiver rejects");
    }

    #[test]
    fn degrading_oscillator_walks_through_sos_into_benign() {
        // Node 2's oscillator degrades to +140 ppm at round 10: it gains
        // 350 ns per round but can only correct 300, so it walks out of the
        // ensemble at ~50 ns/round. On its way out of spec it must pass
        // through a phase where only *some* receivers reject it (SOS =
        // asymmetric), before all do (benign).
        let mut cfg = ClockConfig::healthy(4);
        cfg.window_half = Nanos::from_micros(2);
        cfg.measurement_jitter_ns = 120.0;
        let clocks = ClockEnsemble::new(cfg, 7);
        let mut pipeline = ClockDrivenPipeline::new(clocks).degrade_at(10, 1, 140.0);
        let mut classes = Vec::new();
        for round in 0..400u64 {
            for slot in 0..4usize {
                let ctx = TxCtx {
                    round: RoundIndex::new(round),
                    sender: NodeId::from_slot(slot),
                    n_nodes: 4,
                    abs_slot: round * 4 + slot as u64,
                };
                let class = pipeline.effect(&ctx).classify(4, NodeId::from_slot(slot));
                if slot == 1 {
                    classes.push(class);
                }
            }
        }
        assert!(
            classes.contains(&SlotFaultClass::Asymmetric),
            "the SOS zone was crossed"
        );
        assert_eq!(
            *classes.last().unwrap(),
            SlotFaultClass::Benign,
            "fully out of spec in the end"
        );
        // Before the degradation everything was timely.
        assert!(classes[..9].iter().all(|&c| c == SlotFaultClass::Correct));
    }

    #[test]
    fn ensemble_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = ClockEnsemble::new(ClockConfig::healthy(4), seed);
            for _ in 0..100 {
                c.advance_round();
            }
            (0..4).map(|i| c.offset_ns(i)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "drop all measurements")]
    fn rejects_excessive_fta_drop() {
        let mut cfg = ClockConfig::healthy(4);
        cfg.fta_drop = 2;
        let _ = ClockEnsemble::new(cfg, 0);
    }
}
