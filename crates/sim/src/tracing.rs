//! Span-based **causal tracing** of the diagnostic pipeline.
//!
//! Where [`crate::metrics`] answers *what happened* (counters, histograms,
//! a flat event stream), this module answers *why*: every span carries a
//! [`CauseId`] — the `(accused node, diagnosed round)` pair a detection
//! event refers to — so consumers can reconstruct the full provenance chain
//! of a conviction or forgiveness across the five pipelined phases of
//! Alg. 1:
//!
//! ```text
//! SlotFault ─▶ Detection ─▶ Dissemination ─▶ Aggregation ─▶ Analysis ─▶ Update
//! (ground     (local        (send-aligned     (ε rows in     (H-maj       (p/r counter
//!  truth)      syndrome)     tx round)         the matrix)    tally)       transition)
//! ```
//!
//! The design mirrors [`crate::metrics::MetricsSink`] exactly: the engine
//! and every job context share one [`TraceSink`], the default
//! [`NoopTraceSink`] answers [`TraceSink::enabled`] `false`, and all span
//! construction in the engine and the protocol jobs is guarded by that
//! flag — so an uninstrumented (or noop-instrumented) cluster stays
//! allocation-free on the hot path (`tests/alloc_free.rs` proves it).
//!
//! Not to be confused with [`crate::trace`], the *ground-truth
//! injected-fault* trace: that records what the fault pipeline did to the
//! bus; this records what the protocol concluded, and how.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::bus::SlotFaultClass;
use crate::time::{NodeId, RoundIndex};

/// The causal identity of one detection event: which node stands accused,
/// and which diagnosed round the accusation refers to.
///
/// Every span of one provenance chain carries the same `CauseId`, so a
/// chain can be reassembled from an unordered span stream by grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CauseId {
    /// The accused (diagnosed) node.
    pub subject: NodeId,
    /// The round whose sending slot the accusation refers to.
    pub diagnosed: RoundIndex,
}

impl CauseId {
    /// Creates the causal id for `(subject, diagnosed)`.
    pub fn new(subject: NodeId, diagnosed: RoundIndex) -> Self {
        CauseId { subject, diagnosed }
    }

    /// A packed correlation key (subject in the high 16 bits), used as a
    /// Perfetto flow/correlation id and as a compact grouping key.
    pub fn key(self) -> u64 {
        ((self.subject.get() as u64) << 48) | (self.diagnosed.as_u64() & 0xFFFF_FFFF_FFFF)
    }
}

/// The pipeline phase a span belongs to, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TracePhase {
    /// Ground truth: the fault pipeline disturbed the subject's slot.
    SlotFault,
    /// Phase 1: the subject showed up faulty in an aligned local syndrome.
    Detection,
    /// Phase 2: a syndrome accusing the subject was put on the bus.
    Dissemination,
    /// Phase 3: the aggregated matrix column for the diagnosed round.
    Aggregation,
    /// Phase 4: the H-maj tally over that column.
    Analysis,
    /// Phase 5: the resulting p/r counter transition.
    Update,
}

impl TracePhase {
    /// All phases, in causal order.
    pub const ALL: [TracePhase; 6] = [
        TracePhase::SlotFault,
        TracePhase::Detection,
        TracePhase::Dissemination,
        TracePhase::Aggregation,
        TracePhase::Analysis,
        TracePhase::Update,
    ];

    /// A short stable label (used by exports and summaries).
    pub fn label(self) -> &'static str {
        match self {
            TracePhase::SlotFault => "slot_fault",
            TracePhase::Detection => "detection",
            TracePhase::Dissemination => "dissemination",
            TracePhase::Aggregation => "aggregation",
            TracePhase::Analysis => "analysis",
            TracePhase::Update => "update",
        }
    }

    /// The phase's position in causal order (0-based).
    pub fn index(self) -> usize {
        match self {
            TracePhase::SlotFault => 0,
            TracePhase::Detection => 1,
            TracePhase::Dissemination => 2,
            TracePhase::Aggregation => 3,
            TracePhase::Analysis => 4,
            TracePhase::Update => 5,
        }
    }
}

/// The kind of p/r counter transition an [`SpanEvent::Update`] span records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UpdateKind {
    /// Penalty counter grew (conviction).
    Penalty,
    /// Reward counter grew (acquittal with pending penalty).
    Reward,
    /// Reward threshold reached; counters reset.
    Forgiveness,
    /// Penalty threshold exceeded; subject isolated.
    Isolation,
    /// Reintegration extension readmitted the subject.
    Reintegration,
}

impl UpdateKind {
    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            UpdateKind::Penalty => "penalty",
            UpdateKind::Reward => "reward",
            UpdateKind::Forgiveness => "forgiveness",
            UpdateKind::Isolation => "isolation",
            UpdateKind::Reintegration => "reintegration",
        }
    }
}

/// One span of a provenance chain: a phase of Alg. 1, stamped with the
/// [`CauseId`] it refers to, the observing node and the execution round.
///
/// Spans are `Copy` (no heap fields), so emitting one costs a stack write
/// plus a virtual call; recording sinks clone into their own storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanEvent {
    /// Ground truth from the engine: the subject's slot in
    /// `cause.diagnosed` was disturbed.
    SlotFault {
        /// Causal id: `(disturbed sender, slot round)`.
        cause: CauseId,
        /// Ground-truth fault class the pipeline applied.
        class: SlotFaultClass,
    },
    /// Phase 1: `node`'s aligned local syndrome for `cause.diagnosed`
    /// reported the subject faulty.
    Detection {
        /// Causal id of the accusation.
        cause: CauseId,
        /// The detecting node.
        node: NodeId,
        /// Round in which the detecting activation ran.
        round: RoundIndex,
    },
    /// Phase 2: `node` put a syndrome accusing the subject on the bus (or
    /// queued it for the next round, per send alignment).
    Dissemination {
        /// Causal id of the accusation carried by the syndrome.
        cause: CauseId,
        /// The disseminating node.
        node: NodeId,
        /// Round in which the disseminating activation ran.
        round: RoundIndex,
        /// Round whose sending slot carries the syndrome on the bus.
        tx_round: RoundIndex,
    },
    /// Phase 3: the aggregated matrix column for the subject, as seen by
    /// `node` when analyzing `cause.diagnosed`.
    Aggregation {
        /// Causal id of the column.
        cause: CauseId,
        /// The aggregating node.
        node: NodeId,
        /// Round in which the aggregating activation ran.
        round: RoundIndex,
        /// ε entries in the subject's column (missing opinions).
        epsilon: u64,
    },
    /// Phase 4: the H-maj tally over the subject's column.
    Analysis {
        /// Causal id of the vote.
        cause: CauseId,
        /// The analyzing node.
        node: NodeId,
        /// Round in which the analyzing activation ran.
        round: RoundIndex,
        /// Explicit "not faulty" opinions.
        ok: u64,
        /// Explicit "faulty" opinions.
        faulty: u64,
        /// Excluded ε opinions.
        epsilon: u64,
        /// `Some(healthy?)` when decided, `None` when undecidable.
        decided: Option<bool>,
    },
    /// Phase 5: the p/r counter transition the verdict produced.
    Update {
        /// Causal id of the verdict.
        cause: CauseId,
        /// The node running the p/r algorithm.
        node: NodeId,
        /// Round in which the updating activation ran.
        round: RoundIndex,
        /// The transition kind.
        kind: UpdateKind,
        /// The counter value after the transition (0 for resets).
        counter: u64,
    },
}

impl SpanEvent {
    /// The pipeline phase this span belongs to.
    pub fn phase(&self) -> TracePhase {
        match self {
            SpanEvent::SlotFault { .. } => TracePhase::SlotFault,
            SpanEvent::Detection { .. } => TracePhase::Detection,
            SpanEvent::Dissemination { .. } => TracePhase::Dissemination,
            SpanEvent::Aggregation { .. } => TracePhase::Aggregation,
            SpanEvent::Analysis { .. } => TracePhase::Analysis,
            SpanEvent::Update { .. } => TracePhase::Update,
        }
    }

    /// The causal id this span is part of.
    pub fn cause(&self) -> CauseId {
        match *self {
            SpanEvent::SlotFault { cause, .. }
            | SpanEvent::Detection { cause, .. }
            | SpanEvent::Dissemination { cause, .. }
            | SpanEvent::Aggregation { cause, .. }
            | SpanEvent::Analysis { cause, .. }
            | SpanEvent::Update { cause, .. } => cause,
        }
    }

    /// The observing node (for the ground-truth [`SpanEvent::SlotFault`],
    /// the disturbed sender itself).
    pub fn node(&self) -> NodeId {
        match *self {
            SpanEvent::SlotFault { cause, .. } => cause.subject,
            SpanEvent::Detection { node, .. }
            | SpanEvent::Dissemination { node, .. }
            | SpanEvent::Aggregation { node, .. }
            | SpanEvent::Analysis { node, .. }
            | SpanEvent::Update { node, .. } => node,
        }
    }

    /// The execution round the span is stamped with (for the ground-truth
    /// [`SpanEvent::SlotFault`], the disturbed slot's round).
    pub fn round(&self) -> RoundIndex {
        match *self {
            SpanEvent::SlotFault { cause, .. } => cause.diagnosed,
            SpanEvent::Detection { round, .. }
            | SpanEvent::Dissemination { round, .. }
            | SpanEvent::Aggregation { round, .. }
            | SpanEvent::Analysis { round, .. }
            | SpanEvent::Update { round, .. } => round,
        }
    }

    /// A short stable label for the span kind (the phase label).
    pub fn kind(&self) -> &'static str {
        self.phase().label()
    }
}

/// A sink for provenance spans, shared by the engine and every job context
/// of a cluster.
///
/// Same contract as [`crate::metrics::MetricsSink`]: span construction more
/// expensive than reading a flag must be guarded by [`TraceSink::enabled`],
/// which the default implementation (and [`NoopTraceSink`]) answers
/// `false` — keeping the uninstrumented hot path allocation-free.
pub trait TraceSink: Send + Sync {
    /// Whether span construction should run at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Consumes one span.
    ///
    /// Callers only construct spans behind a [`TraceSink::enabled`] check,
    /// so implementors answering `false` never see this called from the
    /// engine or the bundled protocol jobs.
    fn span(&self, span: &SpanEvent) {
        let _ = span;
    }
}

/// The do-nothing trace sink: [`TraceSink::enabled`] answers `false` and
/// every span is dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTraceSink;

impl TraceSink for NoopTraceSink {}

/// The process-wide [`NoopTraceSink`] instance untraced clusters point at,
/// so defaulting the sink allocates nothing.
pub static NOOP_TRACE_SINK: NoopTraceSink = NoopTraceSink;

/// An in-memory sink that records every span in emission order.
///
/// Share it between the builder and the post-run analysis via `Arc`; the
/// mutex is uncontended in the single-threaded engine.
#[derive(Debug, Default)]
pub struct RecordingTraceSink {
    spans: Mutex<Vec<SpanEvent>>,
}

impl RecordingTraceSink {
    /// Creates an empty recording trace sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clone of the recorded span stream, in emission order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.spans.lock().expect("trace mutex poisoned").clone()
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.spans.lock().expect("trace mutex poisoned").len()
    }
}

impl TraceSink for RecordingTraceSink {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&self, span: &SpanEvent) {
        self.spans.lock().expect("trace mutex poisoned").push(*span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> [SpanEvent; 6] {
        let cause = CauseId::new(NodeId::new(2), RoundIndex::new(10));
        let node = NodeId::new(1);
        [
            SpanEvent::SlotFault {
                cause,
                class: SlotFaultClass::Benign,
            },
            SpanEvent::Detection {
                cause,
                node,
                round: RoundIndex::new(11),
            },
            SpanEvent::Dissemination {
                cause,
                node,
                round: RoundIndex::new(11),
                tx_round: RoundIndex::new(12),
            },
            SpanEvent::Aggregation {
                cause,
                node,
                round: RoundIndex::new(13),
                epsilon: 0,
            },
            SpanEvent::Analysis {
                cause,
                node,
                round: RoundIndex::new(13),
                ok: 0,
                faulty: 3,
                epsilon: 0,
                decided: Some(false),
            },
            SpanEvent::Update {
                cause,
                node,
                round: RoundIndex::new(13),
                kind: UpdateKind::Penalty,
                counter: 1,
            },
        ]
    }

    #[test]
    fn spans_cover_all_phases_in_causal_order() {
        let spans = sample_spans();
        for (span, phase) in spans.iter().zip(TracePhase::ALL) {
            assert_eq!(span.phase(), phase);
            assert_eq!(span.kind(), phase.label());
            assert_eq!(span.phase().index(), phase.index());
            assert_eq!(span.cause().subject, NodeId::new(2));
            assert_eq!(span.cause().diagnosed, RoundIndex::new(10));
        }
        // Phases are ordered by causal index.
        assert!(TracePhase::ALL.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn node_and_round_accessors() {
        let spans = sample_spans();
        // Ground-truth span is stamped with the subject and slot round.
        assert_eq!(spans[0].node(), NodeId::new(2));
        assert_eq!(spans[0].round(), RoundIndex::new(10));
        // Protocol spans are stamped with the observer and execution round.
        assert_eq!(spans[1].node(), NodeId::new(1));
        assert_eq!(spans[1].round(), RoundIndex::new(11));
        assert_eq!(spans[5].round(), RoundIndex::new(13));
    }

    #[test]
    fn cause_key_packs_subject_and_round() {
        let a = CauseId::new(NodeId::new(2), RoundIndex::new(10));
        let b = CauseId::new(NodeId::new(3), RoundIndex::new(10));
        let c = CauseId::new(NodeId::new(2), RoundIndex::new(11));
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(
            a.key(),
            CauseId::new(NodeId::new(2), RoundIndex::new(10)).key()
        );
    }

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let sink = NoopTraceSink;
        assert!(!sink.enabled());
        for span in sample_spans() {
            sink.span(&span);
        }
    }

    #[test]
    fn recording_sink_collects_spans_in_order() {
        let sink = RecordingTraceSink::new();
        assert!(sink.enabled());
        for span in sample_spans() {
            sink.span(&span);
        }
        assert_eq!(sink.span_count(), 6);
        let recorded = sink.spans();
        assert_eq!(recorded.as_slice(), sample_spans().as_slice());
    }

    #[test]
    fn update_kind_labels_are_distinct() {
        let kinds = [
            UpdateKind::Penalty,
            UpdateKind::Reward,
            UpdateKind::Forgiveness,
            UpdateKind::Isolation,
            UpdateKind::Reintegration,
        ];
        let labels: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
