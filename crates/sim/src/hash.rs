//! A stable, dependency-free hasher for state fingerprints.
//!
//! `std::collections::HashMap`'s default hasher is randomly keyed per
//! process, so it cannot produce fingerprints that are comparable across
//! runs, machines, or serialized corpora. [`Fnv1a64`] is the classic
//! FNV-1a 64-bit hash: deterministic, well distributed for short keys, and
//! stable across platforms — exactly what the coverage-guided fault
//! explorer needs to dedupe protocol states between sessions.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A 64-bit FNV-1a [`Hasher`] with a platform-independent result.
///
/// ```
/// use std::hash::{Hash, Hasher};
/// use tt_sim::Fnv1a64;
///
/// let mut h = Fnv1a64::new();
/// 42u64.hash(&mut h);
/// assert_eq!(h.finish(), {
///     let mut h2 = Fnv1a64::new();
///     42u64.hash(&mut h2);
///     h2.finish()
/// });
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64(u64);

impl Fnv1a64 {
    /// A hasher starting from the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a64(FNV_OFFSET)
    }

    /// Convenience: hashes one byte slice from a fresh state.
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a64::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

impl Hasher for Fnv1a64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Fnv1a64::hash_bytes(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(Fnv1a64::hash_bytes(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(Fnv1a64::hash_bytes(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn is_deterministic_for_hashed_values() {
        let fp = |vals: &[u64]| {
            let mut h = Fnv1a64::new();
            for v in vals {
                v.hash(&mut h);
            }
            h.finish()
        };
        assert_eq!(fp(&[1, 2, 3]), fp(&[1, 2, 3]));
        assert_ne!(fp(&[1, 2, 3]), fp(&[3, 2, 1]));
    }
}
