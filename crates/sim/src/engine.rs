//! The deterministic, slot-granular simulation engine.
//!
//! A [`Cluster`] advances one sending slot at a time. Before slot `p` of a
//! round is transmitted, every job scheduled with `l = p` executes (it has
//! seen slots `0..p` of the current round); then the slot is transmitted,
//! pushed through the fault pipeline, and delivered to all controllers.
//! This realizes the paper's interleaving of node schedules with the global
//! communication schedule exactly, with no wall-clock nondeterminism.

use std::sync::Arc;

use bytes::Bytes;

use crate::bus::{FaultPipeline, SlotFaultClass, SlotOutcome, TxCtx};
use crate::cancel::CancellationToken;
use crate::controller::Controller;
use crate::error::SimError;
use crate::job::{Job, JobCtx};
use crate::metrics::{MetricsEvent, MetricsSink, NoopSink};
use crate::node::Node;
use crate::schedule::{CommunicationSchedule, NodeSchedule};
use crate::time::{Nanos, NodeId, RoundIndex};
use crate::trace::{Trace, TraceMode};
use crate::tracing::{CauseId, NoopTraceSink, SpanEvent, TraceSink};

/// A complete simulated TDMA cluster: nodes, controllers, bus and trace.
pub struct Cluster {
    schedule: CommunicationSchedule,
    nodes: Vec<Node>,
    controllers: Vec<Controller>,
    pipeline: Box<dyn FaultPipeline>,
    round: RoundIndex,
    trace: Trace,
    /// Per-node resolved job schedules, refilled (not reallocated) each
    /// round.
    resolved: Vec<Vec<NodeSchedule>>,
    /// Transmission outcome buffer, reused for every slot.
    slot_out: SlotOutcome,
    /// Observability sink shared with every job context (a [`NoopSink`] by
    /// default, keeping the hot path untouched).
    metrics: Arc<dyn MetricsSink>,
    /// Provenance-trace sink shared with every job context (a
    /// [`NoopTraceSink`] by default, same zero-overhead contract).
    trace_sink: Arc<dyn TraceSink>,
    /// Cooperative cancellation flag, observed at round granularity: one
    /// relaxed-cost atomic load per round, nothing on the slot path.
    cancel: CancellationToken,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("n_nodes", &self.schedule.n_nodes())
            .field("round", &self.round)
            .finish()
    }
}

impl Cluster {
    /// The global communication schedule.
    pub fn schedule(&self) -> &CommunicationSchedule {
        &self.schedule
    }

    /// The next round to be executed (rounds already completed: `0..round`).
    pub fn round(&self) -> RoundIndex {
        self.round
    }

    /// Physical time at the start of the next round to execute.
    pub fn now(&self) -> Nanos {
        self.round.start_time(self.schedule.round_length())
    }

    /// The ground-truth *injected-fault* trace recorded so far (what the
    /// fault pipeline did to the bus — not protocol tracing; see
    /// [`Cluster::tracing`] for provenance spans).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The observability sink this cluster reports to.
    pub fn metrics(&self) -> &dyn MetricsSink {
        &*self.metrics
    }

    /// The provenance-trace sink this cluster reports spans to.
    pub fn tracing(&self) -> &dyn TraceSink {
        &*self.trace_sink
    }

    /// Immutable access to the controller of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for out-of-range ids.
    pub fn controller(&self, node: NodeId) -> Result<&Controller, SimError> {
        self.controllers
            .get(node.index())
            .ok_or(SimError::UnknownNode(node))
    }

    /// Mutable access to the controller of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for out-of-range ids.
    pub fn controller_mut(&mut self, node: NodeId) -> Result<&mut Controller, SimError> {
        self.controllers
            .get_mut(node.index())
            .ok_or(SimError::UnknownNode(node))
    }

    /// Replaces the fault pipeline (e.g. between phases of an experiment).
    pub fn set_pipeline(&mut self, pipeline: Box<dyn FaultPipeline>) {
        self.pipeline = pipeline;
    }

    /// Adds `job` to `node`, executing after `exec_offset` slots each round.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for out-of-range ids.
    pub fn add_job(
        &mut self,
        node: NodeId,
        exec_offset: usize,
        job: Box<dyn Job>,
    ) -> Result<(), SimError> {
        let n = self.schedule.n_nodes();
        let sched = NodeSchedule::new(node, exec_offset, n)?;
        self.nodes
            .get_mut(node.index())
            .ok_or(SimError::UnknownNode(node))?
            .add_job(sched, job);
        Ok(())
    }

    /// Returns the first job of concrete type `T` hosted on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] or [`SimError::JobTypeMismatch`].
    pub fn job_as<T: Job + 'static>(&self, node: NodeId) -> Result<&T, SimError> {
        let n = self
            .nodes
            .get(node.index())
            .ok_or(SimError::UnknownNode(node))?;
        n.jobs()
            .iter()
            .find_map(|s| s.job.as_any().downcast_ref::<T>())
            .ok_or(SimError::JobTypeMismatch(node))
    }

    /// Adds a *dynamically scheduled* job to `node`: the OS decides the
    /// execution offset anew each round via `offset_of` (normalized modulo
    /// `N`), and the job reads the resulting `l_i` / `send_curr_round_i`
    /// from its context at run-time — the paper's Sec. 10 dynamic-
    /// scheduling case.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for out-of-range ids.
    pub fn add_dynamic_job(
        &mut self,
        node: NodeId,
        offset_of: impl FnMut(RoundIndex) -> usize + Send + 'static,
        job: Box<dyn Job>,
    ) -> Result<(), SimError> {
        let n = self.schedule.n_nodes();
        self.nodes
            .get_mut(node.index())
            .ok_or(SimError::UnknownNode(node))?
            .add_dynamic_job(n, Box::new(offset_of), job);
        Ok(())
    }

    /// The cancellation token this cluster observes between rounds.
    /// Cancelling it (from any thread) stops the simulation at the next
    /// round boundary.
    pub fn cancel_token(&self) -> &CancellationToken {
        &self.cancel
    }

    /// Executes exactly one TDMA round (all `N` slots, plus the job
    /// activations interleaved between them).
    ///
    /// Returns `false` — without executing anything — once the cluster's
    /// [`CancellationToken`] has been cancelled; the cluster state then
    /// stays frozen at the last completed round boundary.
    pub fn run_round(&mut self) -> bool {
        if self.cancel.is_cancelled() {
            return false;
        }
        let k = self.round;
        let n = self.schedule.n_nodes();
        // With a `NoopSink` the whole observability block reduces to one
        // virtual `enabled()` call; with a recording sink, round timing and
        // the structured event stream are captured.
        let metrics_on = self.metrics.enabled();
        let tracing_on = self.trace_sink.enabled();
        let round_start = metrics_on.then(std::time::Instant::now);
        // Resolve every job's schedule for this round up front (dynamic
        // schedules are queried exactly once per round, like an OS would),
        // refilling the cluster-owned scratch buffers in place.
        for (node, resolved) in self.nodes.iter_mut().zip(self.resolved.iter_mut()) {
            resolved.clear();
            resolved.extend(
                node.jobs_mut()
                    .iter_mut()
                    .map(|slot| slot.schedule.resolve(k)),
            );
        }
        let trace_off = self.trace.mode() == TraceMode::Off;
        for p in 0..n {
            // 1. Jobs scheduled at offset p execute (they have seen slots
            //    0..p of round k).
            for ((node, controller), resolved) in self
                .nodes
                .iter_mut()
                .zip(self.controllers.iter_mut())
                .zip(self.resolved.iter())
            {
                for (slot, &sched) in node.jobs_mut().iter_mut().zip(resolved.iter()) {
                    if sched.l() == p {
                        let mut ctx = JobCtx::with_sinks(
                            controller,
                            sched,
                            k,
                            &*self.metrics,
                            &*self.trace_sink,
                        );
                        slot.job.execute(&mut ctx);
                    }
                }
            }
            // 2. The node owning slot p transmits, filling the reusable
            //    outcome buffer in place.
            let sender = NodeId::from_slot(p);
            let payload: Bytes = self.controllers[p].tx_payload();
            let tx_ctx = TxCtx {
                round: k,
                sender,
                n_nodes: n,
                abs_slot: k.as_u64() * n as u64 + p as u64,
            };
            self.pipeline
                .transmit_into(&tx_ctx, &payload, &mut self.slot_out);
            if self.slot_out.class != SlotFaultClass::Correct {
                self.metrics.counter("sim.slot_faults", 1);
                if metrics_on {
                    self.metrics.emit(&MetricsEvent::SlotFault {
                        round: k,
                        sender,
                        class: self.slot_out.class,
                    });
                }
                if tracing_on {
                    // Root of every provenance chain: the ground-truth
                    // disturbance of (sender, round k).
                    self.trace_sink.span(&SpanEvent::SlotFault {
                        cause: CauseId::new(sender, k),
                        class: self.slot_out.class,
                    });
                }
            }
            // With tracing off, skip effect-record construction entirely.
            if !trace_off && self.trace.wants(self.slot_out.class) {
                let effect =
                    crate::trace::EffectRecord::from_slot_outcome(&self.slot_out, &payload, sender);
                self.trace
                    .record_with_effect(k, sender, self.slot_out.class, Some(effect));
            }
            // 3. Delivery: receivers update interface variables + validity
            //    bits; the sender records its collision-detector view.
            //    Receptions are read out of the reusable buffer; cloning one
            //    only bumps the payload's reference count.
            for (rx, controller) in self.controllers.iter_mut().enumerate() {
                if rx == p {
                    controller.record_collision(k, self.slot_out.collision_ok);
                } else {
                    controller.deliver(sender, k, self.slot_out.receptions[rx].clone());
                }
            }
        }
        self.metrics.counter("sim.rounds", 1);
        self.metrics.counter("sim.slots", n as u64);
        if let Some(start) = round_start {
            let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.metrics.histogram("sim.round_ns", wall_ns);
            self.metrics
                .emit(&MetricsEvent::RoundCompleted { round: k, wall_ns });
        }
        self.round = k.next();
        true
    }

    /// Executes up to `rounds` consecutive TDMA rounds, stopping early if
    /// the cluster's [`CancellationToken`] is cancelled. Returns the number
    /// of rounds actually executed.
    pub fn run_rounds(&mut self, rounds: u64) -> u64 {
        for executed in 0..rounds {
            if !self.run_round() {
                return executed;
            }
        }
        rounds
    }

    /// Runs rounds until `stop` returns true (checked after each round),
    /// `max_rounds` have executed, or the cluster's cancellation token is
    /// cancelled. Returns the number of rounds executed.
    pub fn run_until(&mut self, max_rounds: u64, mut stop: impl FnMut(&Cluster) -> bool) -> u64 {
        for executed in 0..max_rounds {
            if !self.run_round() {
                return executed;
            }
            if stop(self) {
                return executed + 1;
            }
        }
        max_rounds
    }
}

/// Builder for [`Cluster`].
///
/// ```
/// use tt_sim::{ClusterBuilder, NoFaults};
/// let cluster = ClusterBuilder::new(4)
///     .round_length_ns(2_500_000)
///     .trace_mode(tt_sim::TraceMode::Full)
///     .build(Box::new(NoFaults))
///     .unwrap();
/// assert_eq!(cluster.schedule().n_nodes(), 4);
/// ```
pub struct ClusterBuilder {
    n_nodes: usize,
    round_length: Nanos,
    trace_mode: TraceMode,
    metrics: Option<Arc<dyn MetricsSink>>,
    trace_sink: Option<Arc<dyn TraceSink>>,
    cancel: Option<CancellationToken>,
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("n_nodes", &self.n_nodes)
            .field("round_length", &self.round_length)
            .field("trace_mode", &self.trace_mode)
            .field("instrumented", &self.metrics.is_some())
            .field("traced", &self.trace_sink.is_some())
            .finish()
    }
}

impl ClusterBuilder {
    /// Starts a builder for an `n_nodes` cluster with the paper's default
    /// round length of 2.5 ms.
    pub fn new(n_nodes: usize) -> Self {
        ClusterBuilder {
            n_nodes,
            round_length: Nanos::from_micros(2_500),
            trace_mode: TraceMode::default(),
            metrics: None,
            trace_sink: None,
            cancel: None,
        }
    }

    /// Installs a cancellation token observed between rounds (defaults to
    /// a fresh, never-cancelled token). Supervisors keep a clone and
    /// cancel it to stop the simulation cooperatively at the next round
    /// boundary.
    pub fn cancel_token(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Installs an observability sink shared by the engine and every job
    /// context (defaults to a [`NoopSink`]).
    pub fn metrics_sink(mut self, sink: Arc<dyn MetricsSink>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Installs a provenance-trace sink shared by the engine and every job
    /// context (defaults to a [`NoopTraceSink`]).
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Sets the TDMA round length.
    pub fn round_length(mut self, t: Nanos) -> Self {
        self.round_length = t;
        self
    }

    /// Sets the TDMA round length in nanoseconds.
    pub fn round_length_ns(mut self, ns: u64) -> Self {
        self.round_length = Nanos::from_nanos(ns);
        self
    }

    /// Sets how much ground truth the trace records.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Builds a cluster with no jobs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid schedules.
    pub fn build(self, pipeline: Box<dyn FaultPipeline>) -> Result<Cluster, SimError> {
        let schedule = CommunicationSchedule::new(self.n_nodes, self.round_length)?;
        let nodes = NodeId::all(self.n_nodes).map(Node::new).collect();
        let controllers = NodeId::all(self.n_nodes)
            .map(|id| Controller::new(id, self.n_nodes))
            .collect();
        Ok(Cluster {
            schedule,
            nodes,
            controllers,
            pipeline,
            round: RoundIndex::ZERO,
            trace: Trace::new(self.trace_mode),
            resolved: vec![Vec::new(); self.n_nodes],
            slot_out: SlotOutcome::with_capacity(self.n_nodes),
            metrics: self.metrics.unwrap_or_else(|| Arc::new(NoopSink)),
            trace_sink: self.trace_sink.unwrap_or_else(|| Arc::new(NoopTraceSink)),
            cancel: self.cancel.unwrap_or_default(),
        })
    }

    /// Builds a cluster and installs one job per node from `factory`, all at
    /// execution offset 0 (start of round).
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (use [`ClusterBuilder::build`] plus
    /// [`Cluster::add_job`] for fallible construction).
    pub fn build_with_jobs(
        self,
        mut factory: impl FnMut(NodeId) -> Box<dyn Job>,
        pipeline: Box<dyn FaultPipeline>,
    ) -> Cluster {
        let n = self.n_nodes;
        let mut cluster = self.build(pipeline).expect("invalid cluster configuration");
        for id in NodeId::all(n) {
            cluster
                .add_job(id, 0, factory(id))
                .expect("node ids are in range by construction");
        }
        cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{NoFaults, SlotEffect, SlotFaultClass};

    /// Records, per activation, which senders' variables were valid and the
    /// freshness pattern visible at the job's offset.
    struct Probe {
        valid_history: Vec<Vec<bool>>,
    }

    impl Job for Probe {
        fn execute(&mut self, ctx: &mut JobCtx<'_>) {
            self.valid_history.push(ctx.validity_bits());
            ctx.write_iface(vec![ctx.round().as_u64() as u8]);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn probe() -> Box<dyn Job> {
        Box::new(Probe {
            valid_history: Vec::new(),
        })
    }

    #[test]
    fn healthy_cluster_reaches_all_valid() {
        let mut cluster = ClusterBuilder::new(4).build_with_jobs(|_| probe(), Box::new(NoFaults));
        cluster.run_rounds(3);
        let job: &Probe = cluster.job_as(NodeId::new(1)).unwrap();
        // After the first round every variable has been received once.
        assert!(job.valid_history[1].iter().all(|&v| v));
        assert!(job.valid_history[2].iter().all(|&v| v));
    }

    #[test]
    fn job_offset_controls_freshness() {
        // A job at offset 2 on node 1 sees slots 0 and 1 of the current
        // round; we verify via last_update freshness on the controller.
        let mut cluster = ClusterBuilder::new(4).build(Box::new(NoFaults)).unwrap();
        cluster.add_job(NodeId::new(1), 2, probe()).unwrap();
        cluster.run_rounds(2);
        let c = cluster.controller(NodeId::new(1)).unwrap();
        // After 2 full rounds every slot of round 1 was delivered.
        assert_eq!(c.last_update(NodeId::new(4)), Some(RoundIndex::new(1)));
    }

    #[test]
    fn benign_fault_clears_validity_at_all_receivers() {
        // Node 3's slot is benign faulty in round 1.
        let pipeline = |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(1) && ctx.sender == NodeId::new(3) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let mut cluster = ClusterBuilder::new(4).build_with_jobs(|_| probe(), Box::new(pipeline));
        cluster.run_rounds(2);
        for id in NodeId::all(4) {
            if id == NodeId::new(3) {
                // Sender: collision detector saw the failure.
                let c = cluster.controller(id).unwrap();
                assert_eq!(c.collision_ok(RoundIndex::new(1)), Some(false));
            } else {
                let v = cluster.controller(id).unwrap().validity_snapshot();
                assert!(!v[2], "receiver {id} must have validity 0 for node 3");
            }
        }
        assert_eq!(
            cluster.trace().class_of(RoundIndex::new(1), NodeId::new(3)),
            SlotFaultClass::Benign
        );
        assert_eq!(
            cluster.trace().class_of(RoundIndex::new(0), NodeId::new(3)),
            SlotFaultClass::Correct
        );
    }

    #[test]
    fn determinism_same_config_same_trace() {
        let mk = || {
            let pipeline = |ctx: &TxCtx| {
                // A deterministic pseudo-pattern: every 7th slot benign.
                if ctx.abs_slot % 7 == 3 {
                    SlotEffect::Benign
                } else {
                    SlotEffect::Correct
                }
            };
            let mut c = ClusterBuilder::new(4)
                .trace_mode(TraceMode::Full)
                .build_with_jobs(|_| probe(), Box::new(pipeline));
            c.run_rounds(50);
            c.trace().records().to_vec()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut cluster = ClusterBuilder::new(4).build_with_jobs(|_| probe(), Box::new(NoFaults));
        let executed = cluster.run_until(100, |c| c.round() == RoundIndex::new(5));
        assert_eq!(executed, 5);
        let executed = cluster.run_until(7, |_| false);
        assert_eq!(executed, 7);
    }

    #[test]
    fn cancelled_token_freezes_cluster_at_round_boundary() {
        let token = CancellationToken::new();
        let mut cluster = ClusterBuilder::new(4)
            .cancel_token(token.clone())
            .build_with_jobs(|_| probe(), Box::new(NoFaults));
        assert_eq!(cluster.run_rounds(3), 3);
        token.cancel();
        assert!(!cluster.run_round());
        assert_eq!(cluster.run_rounds(5), 0);
        assert_eq!(cluster.run_until(5, |_| false), 0);
        assert_eq!(cluster.round(), RoundIndex::new(3));
        // State is frozen, not corrupted: the last completed round's
        // deliveries are all still visible.
        let job: &Probe = cluster.job_as(NodeId::new(1)).unwrap();
        assert_eq!(job.valid_history.len(), 3);
    }

    #[test]
    fn mid_run_cancellation_stops_via_stop_hook() {
        let token = CancellationToken::new();
        let mut cluster = ClusterBuilder::new(4)
            .cancel_token(token.clone())
            .build_with_jobs(|_| probe(), Box::new(NoFaults));
        // Cancel from inside the stop predicate after round 2 completes:
        // the next run_round call observes it.
        let executed = cluster.run_until(100, |c| {
            if c.round() == RoundIndex::new(2) {
                token.cancel();
            }
            false
        });
        assert_eq!(executed, 2);
        assert_eq!(cluster.round(), RoundIndex::new(2));
    }

    #[test]
    fn unknown_node_errors() {
        let cluster = ClusterBuilder::new(4).build(Box::new(NoFaults)).unwrap();
        assert_eq!(
            cluster.controller(NodeId::new(9)).unwrap_err(),
            SimError::UnknownNode(NodeId::new(9))
        );
    }

    #[test]
    fn job_type_mismatch_errors() {
        struct Other;
        impl Job for Other {
            fn execute(&mut self, _: &mut JobCtx<'_>) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let mut cluster = ClusterBuilder::new(4).build(Box::new(NoFaults)).unwrap();
        cluster.add_job(NodeId::new(1), 0, Box::new(Other)).unwrap();
        assert!(matches!(
            cluster.job_as::<Probe>(NodeId::new(1)),
            Err(SimError::JobTypeMismatch(_))
        ));
    }

    #[test]
    fn recording_sink_observes_rounds_and_faults() {
        let sink = Arc::new(crate::metrics::RecordingSink::new());
        let pipeline = |ctx: &TxCtx| {
            if ctx.abs_slot % 5 == 2 {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let mut cluster = ClusterBuilder::new(4)
            .metrics_sink(sink.clone())
            .build_with_jobs(|_| probe(), Box::new(pipeline));
        cluster.run_rounds(10);
        assert_eq!(sink.counter_value("sim.rounds"), 10);
        assert_eq!(sink.counter_value("sim.slots"), 40);
        assert_eq!(sink.counter_value("sim.slot_faults"), 8);
        let events = sink.events();
        let faults = events
            .iter()
            .filter(|e| matches!(e, crate::metrics::MetricsEvent::SlotFault { .. }))
            .count();
        let rounds = events
            .iter()
            .filter(|e| matches!(e, crate::metrics::MetricsEvent::RoundCompleted { .. }))
            .count();
        assert_eq!(faults, 8);
        assert_eq!(rounds, 10);
        // Ground-truth trace and metrics stream agree on fault slots.
        for e in &events {
            if let crate::metrics::MetricsEvent::SlotFault {
                round,
                sender,
                class,
            } = e
            {
                assert_eq!(cluster.trace().class_of(*round, *sender), *class);
            }
        }
        let report = sink.report();
        assert_eq!(report.histograms[0].name, "sim.round_ns");
        assert_eq!(report.histograms[0].summary.count, 10);
    }

    #[test]
    fn default_cluster_uses_noop_sink() {
        let cluster = ClusterBuilder::new(4).build(Box::new(NoFaults)).unwrap();
        assert!(!cluster.metrics().enabled());
    }

    #[test]
    fn now_tracks_round_starts() {
        let mut cluster = ClusterBuilder::new(4)
            .round_length_ns(2_500_000)
            .build(Box::new(NoFaults))
            .unwrap();
        assert_eq!(cluster.now(), Nanos::ZERO);
        cluster.run_rounds(4);
        assert_eq!(cluster.now(), Nanos::from_millis(10));
    }
}
