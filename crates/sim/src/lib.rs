//! # tt-sim — a deterministic time-triggered (TDMA) cluster simulator
//!
//! This crate is the *substrate* for the reproduction of the DSN 2007 paper
//! "A Tunable Add-On Diagnostic Protocol for Time-Triggered Systems".
//! It simulates, deterministically and at slot granularity, the system model
//! of Sec. 3 of the paper:
//!
//! * `N` nodes with unique IDs `1..=N`, assigned in sending-slot order;
//! * a periodic **global communication schedule**: each TDMA round contains
//!   one **sending slot** per node ([`CommunicationSchedule`]);
//! * a shared **broadcast bus** ([`bus`]) on which each transmission yields a
//!   per-receiver [`Reception`] outcome, shaped by a pluggable
//!   [`FaultPipeline`] (the disturbance node of the paper's testbed);
//! * a **communication controller** per node ([`Controller`]) that updates
//!   **interface variables** and their **validity bits** using its local
//!   error-detection mechanisms, and features a **local collision detector**;
//! * per-node **node schedules** ([`JobSlot`]) that determine when
//!   application jobs run inside a round, from which the paper's `l_i` and
//!   `send_curr_round_i` parameters are derived.
//!
//! The simulator is fully deterministic: given the same configuration, job
//! set and fault pipeline, every run is bit-identical. There is no wall
//! clock; simulated time is tracked in integer [`Nanos`] and rounds.
//!
//! ## Quick example
//!
//! ```
//! use tt_sim::{ClusterBuilder, Job, JobCtx, NoFaults};
//!
//! /// A job that broadcasts its round number and counts valid receptions.
//! struct Counter { seen: u64 }
//! impl Job for Counter {
//!     fn execute(&mut self, ctx: &mut JobCtx<'_>) {
//!         ctx.write_iface(ctx.round().as_u64().to_le_bytes().to_vec());
//!         self.seen += ctx.validity_bits().iter().filter(|&&v| v).count() as u64;
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//! }
//!
//! let mut cluster = ClusterBuilder::new(4)
//!     .round_length_ns(2_500_000) // 2.5 ms rounds, as in the paper
//!     .build_with_jobs(|_id| Box::new(Counter { seen: 0 }), Box::new(NoFaults));
//! cluster.run_rounds(10);
//! let job = cluster.job_as::<Counter>(tt_sim::NodeId::new(1)).unwrap();
//! assert!(job.seen > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bus;
pub mod cancel;
pub mod channels;
pub mod clock;
pub mod controller;
pub mod engine;
pub mod error;
pub mod frame;
pub mod hash;
pub mod job;
pub mod metrics;
pub mod node;
pub mod poisson;
pub mod schedule;
pub mod stream;
pub mod time;
pub mod timeline;
pub mod trace;
pub mod tracing;

pub use batch::{
    BatchCluster, BatchFaultPlan, BatchLanes, LaneEffect, LaneFault, LockstepJob, MAX_BATCH_NODES,
};
pub use bus::{
    apply_effect, apply_effect_into, classify_receptions, FaultPipeline, NoFaults, Reception,
    SlotEffect, SlotFaultClass, SlotOutcome, TxCtx, TxOutcome,
};
pub use cancel::CancellationToken;
pub use channels::ReplicatedBus;
pub use clock::{ClockConfig, ClockDrivenPipeline, ClockEnsemble};
pub use controller::{CollisionDetectorMode, CollisionRecord, Controller};
pub use engine::{Cluster, ClusterBuilder};
pub use error::SimError;
pub use frame::{crc32, Frame, FrameError};
pub use hash::Fnv1a64;
pub use job::{Job, JobCtx};
pub use metrics::{
    HistogramSummary, MetricsEvent, MetricsReport, MetricsSink, NamedCounter, NamedGauge,
    NamedHistogram, NoopSink, RecordingSink, NOOP_SINK,
};
pub use node::{JobSlot, Node, ScheduleSource};
pub use poisson::{per_round_probability, sample_arrival_rounds};
pub use schedule::{CommunicationSchedule, NodeSchedule, SlotPosition};
pub use stream::{
    Framed, ProgressEvent, StreamHub, StreamingSink, StreamingTraceSink, SubscriberStats,
    Subscription,
};
pub use time::{Nanos, NodeId, RoundIndex};
// The ground-truth *injected-fault* trace (what the fault pipeline did to
// the bus). `FaultTrace` is an alias that disambiguates it from the
// protocol-provenance tracing layer below.
pub use trace::{EffectRecord, ReplayPipeline, SlotRecord, Trace, Trace as FaultTrace, TraceMode};
// Protocol-provenance tracing (why the protocol concluded what it did).
pub use tracing::{
    CauseId, NoopTraceSink, RecordingTraceSink, SpanEvent, TracePhase, TraceSink, UpdateKind,
    NOOP_TRACE_SINK,
};
