//! Nodes: a host computer plus its scheduled jobs.

use crate::job::Job;
use crate::schedule::NodeSchedule;
use crate::time::{NodeId, RoundIndex};

/// How a job's execution point within the round is determined.
///
/// The paper supports both cases (Sec. 10): with *static* scheduling the
/// parameters `l_i` / `send_curr_round_i` are constants known at design
/// time; with *dynamic* scheduling "we require the OS to provide this
/// information to the application at run-time" — modelled here by a
/// per-round offset function.
pub enum ScheduleSource {
    /// A fixed execution offset, identical in every round.
    Static(NodeSchedule),
    /// The OS decides the offset anew each round; the function is queried
    /// once per round and its result handed to the job as its `l_i`.
    Dynamic {
        /// The hosting node.
        node: NodeId,
        /// Cluster size (offsets are normalized modulo this).
        n_nodes: usize,
        /// Per-round execution offset.
        offset_of: Box<dyn FnMut(RoundIndex) -> usize + Send>,
    },
}

impl ScheduleSource {
    /// The hosting node.
    pub fn node(&self) -> NodeId {
        match self {
            ScheduleSource::Static(s) => s.node(),
            ScheduleSource::Dynamic { node, .. } => *node,
        }
    }

    /// Resolves the concrete schedule for `round`.
    pub fn resolve(&mut self, round: RoundIndex) -> NodeSchedule {
        match self {
            ScheduleSource::Static(s) => *s,
            ScheduleSource::Dynamic {
                node,
                n_nodes,
                offset_of,
            } => NodeSchedule::new(*node, offset_of(round), *n_nodes)
                .expect("node validated at registration"),
        }
    }
}

impl std::fmt::Debug for ScheduleSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleSource::Static(s) => f.debug_tuple("Static").field(s).finish(),
            ScheduleSource::Dynamic { node, .. } => f.debug_tuple("Dynamic").field(node).finish(),
        }
    }
}

/// One job together with its position in the node's internal schedule.
pub struct JobSlot {
    /// Where in the round the job executes.
    pub schedule: ScheduleSource,
    /// The job itself.
    pub job: Box<dyn Job>,
}

impl std::fmt::Debug for JobSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSlot")
            .field("schedule", &self.schedule)
            .field("job", &"<dyn Job>")
            .finish()
    }
}

/// A host computer: a node id and the jobs its internal schedule runs each
/// round.
///
/// The simulator does not model the host's CPU; only the *points in the
/// round* at which jobs read and write interface state matter for the
/// protocol (via `l_i` and `send_curr_round_i`).
pub struct Node {
    id: NodeId,
    jobs: Vec<JobSlot>,
}

impl Node {
    /// Creates a node with no jobs.
    pub fn new(id: NodeId) -> Self {
        Node {
            id,
            jobs: Vec::new(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Adds a job at a fixed schedule position.
    ///
    /// # Panics
    ///
    /// Panics if the schedule belongs to a different node.
    pub fn add_job(&mut self, schedule: NodeSchedule, job: Box<dyn Job>) {
        assert_eq!(
            schedule.node(),
            self.id,
            "schedule node must match hosting node"
        );
        self.jobs.push(JobSlot {
            schedule: ScheduleSource::Static(schedule),
            job,
        });
    }

    /// Adds a job whose execution offset is decided per round (dynamic
    /// scheduling).
    pub fn add_dynamic_job(
        &mut self,
        n_nodes: usize,
        offset_of: Box<dyn FnMut(RoundIndex) -> usize + Send>,
        job: Box<dyn Job>,
    ) {
        self.jobs.push(JobSlot {
            schedule: ScheduleSource::Dynamic {
                node: self.id,
                n_nodes,
                offset_of,
            },
            job,
        });
    }

    /// The node's jobs in insertion order.
    pub fn jobs(&self) -> &[JobSlot] {
        &self.jobs
    }

    /// Mutable access to the node's jobs.
    pub fn jobs_mut(&mut self) -> &mut [JobSlot] {
        &mut self.jobs
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("jobs", &self.jobs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobCtx;

    struct Nop;
    impl Job for Nop {
        fn execute(&mut self, _ctx: &mut JobCtx<'_>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn node_hosts_jobs_in_order() {
        let id = NodeId::new(1);
        let mut n = Node::new(id);
        n.add_job(NodeSchedule::new(id, 0, 4).unwrap(), Box::new(Nop));
        n.add_job(NodeSchedule::new(id, 2, 4).unwrap(), Box::new(Nop));
        assert_eq!(n.jobs().len(), 2);
        match &n.jobs()[1].schedule {
            ScheduleSource::Static(s) => assert_eq!(s.l(), 2),
            other => panic!("expected static schedule, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn node_rejects_foreign_schedule() {
        let mut n = Node::new(NodeId::new(1));
        n.add_job(
            NodeSchedule::new(NodeId::new(2), 0, 4).unwrap(),
            Box::new(Nop),
        );
    }

    #[test]
    fn dynamic_schedule_resolves_per_round() {
        let id = NodeId::new(2);
        let mut n = Node::new(id);
        n.add_dynamic_job(
            4,
            Box::new(|r: RoundIndex| (r.as_u64() as usize) % 4),
            Box::new(Nop),
        );
        let slot = &mut n.jobs_mut()[0];
        let s0 = slot.schedule.resolve(RoundIndex::new(0));
        let s3 = slot.schedule.resolve(RoundIndex::new(3));
        assert_eq!(s0.l(), 0);
        assert_eq!(s3.l(), 3);
        assert_eq!(slot.schedule.node(), id);
        // send_curr_round varies with the resolved offset: node 2 owns
        // slot 1, so offset 0..=1 sends this round, 2..=3 the next.
        assert!(s0.send_curr_round());
        assert!(!s3.send_curr_round());
    }
}
