//! Simulated time and identifier newtypes.
//!
//! The simulator has no wall clock: time advances in whole TDMA rounds and
//! sending slots. [`Nanos`] maps simulated rounds back to physical time for
//! reporting (the paper uses rounds of `T = 2.5 ms`).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A span of simulated time in integer nanoseconds.
///
/// All latency arithmetic in the reproduction is exact integer arithmetic on
/// nanoseconds, so results are deterministic and free of float drift.
///
/// ```
/// use tt_sim::Nanos;
/// let round = Nanos::from_millis_f64(2.5);
/// assert_eq!(round.as_nanos(), 2_500_000);
/// assert_eq!((round * 4).as_secs_f64(), 0.01);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "invalid duration: {ms}");
        Nanos((ms * 1_000_000.0).round() as u64)
    }

    /// Creates a duration from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Integer division by another duration, i.e. "how many `rhs` fit".
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub const fn div_duration(self, rhs: Nanos) -> u64 {
        self.0 / rhs.0
    }
}

impl std::ops::Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl std::ops::Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl std::ops::Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// The identifier of a node, in `1..=N`, assigned following the order of the
/// sending slots in the round (paper, Sec. 3).
///
/// Node `i` sends in slot position `i - 1` (0-based). Use
/// [`NodeId::slot`] / [`NodeId::from_slot`] to convert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero (ids are 1-based, as in the paper).
    pub fn new(id: u32) -> Self {
        assert!(id >= 1, "node ids are 1-based");
        NodeId(id)
    }

    /// The 1-based id.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The 0-based sending-slot position of this node within a round.
    pub const fn slot(self) -> usize {
        (self.0 - 1) as usize
    }

    /// The node that owns slot position `slot` (0-based).
    pub fn from_slot(slot: usize) -> Self {
        NodeId(slot as u32 + 1)
    }

    /// The 0-based index of this node in per-node vectors.
    pub const fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Iterates over all node ids of an `n`-node cluster, in slot order.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (1..=n as u32).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// The index of a TDMA round since the start of the simulation (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RoundIndex(u64);

impl RoundIndex {
    /// Round zero, the first simulated round.
    pub const ZERO: RoundIndex = RoundIndex(0);

    /// Creates a round index.
    pub const fn new(r: u64) -> Self {
        RoundIndex(r)
    }

    /// The raw round number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The following round.
    pub const fn next(self) -> RoundIndex {
        RoundIndex(self.0 + 1)
    }

    /// The round `k` rounds earlier, or `None` before the start of time.
    pub const fn checked_sub(self, k: u64) -> Option<RoundIndex> {
        match self.0.checked_sub(k) {
            Some(r) => Some(RoundIndex(r)),
            None => None,
        }
    }

    /// Physical start time of this round given the round length `t`.
    pub fn start_time(self, t: Nanos) -> Nanos {
        t * self.0
    }
}

impl std::ops::Add<u64> for RoundIndex {
    type Output = RoundIndex;
    fn add(self, rhs: u64) -> RoundIndex {
        RoundIndex(self.0 + rhs)
    }
}

impl std::ops::Sub<RoundIndex> for RoundIndex {
    type Output = u64;
    fn sub(self, rhs: RoundIndex) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for RoundIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_constructors_agree() {
        assert_eq!(Nanos::from_micros(2500), Nanos::from_millis_f64(2.5));
        assert_eq!(Nanos::from_millis(1), Nanos::from_nanos(1_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1000));
    }

    #[test]
    fn nanos_arithmetic() {
        let t = Nanos::from_millis_f64(2.5);
        assert_eq!(t * 4, Nanos::from_millis(10));
        assert_eq!((t * 4) / 4, t);
        assert_eq!(t + t, Nanos::from_millis(5));
        assert_eq!(Nanos::from_millis(5) - t, t);
        assert_eq!(Nanos::from_millis(1).saturating_sub(t), Nanos::ZERO);
        assert_eq!(Nanos::from_secs(1).div_duration(t), 400);
    }

    #[test]
    fn nanos_display_picks_unit() {
        assert_eq!(Nanos::from_nanos(17).to_string(), "17ns");
        assert_eq!(Nanos::from_millis_f64(2.5).to_string(), "2.500ms");
        assert_eq!(Nanos::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn node_id_slot_roundtrip() {
        for n in 1..10u32 {
            let id = NodeId::new(n);
            assert_eq!(NodeId::from_slot(id.slot()), id);
            assert_eq!(id.index(), (n - 1) as usize);
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn node_id_zero_rejected() {
        let _ = NodeId::new(0);
    }

    #[test]
    fn node_id_all_enumerates_in_slot_order() {
        let ids: Vec<_> = NodeId::all(4).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], NodeId::new(1));
        assert_eq!(ids[3].slot(), 3);
    }

    #[test]
    fn round_index_arithmetic() {
        let r = RoundIndex::new(5);
        assert_eq!(r.next(), RoundIndex::new(6));
        assert_eq!(r.checked_sub(2), Some(RoundIndex::new(3)));
        assert_eq!(r.checked_sub(6), None);
        assert_eq!(r + 3, RoundIndex::new(8));
        assert_eq!(RoundIndex::new(8) - r, 3);
        assert_eq!(
            r.start_time(Nanos::from_millis_f64(2.5)),
            Nanos::from_millis_f64(12.5)
        );
    }
}
