//! Ground-truth trace of **injected faults**, for oracles and debugging.
//!
//! The trace records what the fault pipeline actually did to each sending
//! slot. It is the experiment harness's source of truth when checking the
//! protocol's correctness/completeness/consistency properties: the protocol
//! itself never reads it.
//!
//! **This is not protocol tracing.** Despite the name, [`Trace`] (also
//! re-exported as `tt_sim::FaultTrace`) has nothing to do with observing
//! the diagnostic protocol: it captures the *disturbances on the bus*
//! (ground truth an omniscient observer would see), and can be serialized
//! and replayed bit-exactly via [`ReplayPipeline`]. Observing what the
//! *protocol* did — and why — is the job of two separate layers:
//!
//! * [`crate::metrics`] — counters, histograms and the flat
//!   [`crate::MetricsEvent`] stream (*what happened*);
//! * [`crate::tracing`] — causal provenance spans threaded through the
//!   five phases of Alg. 1 via [`crate::TraceSink`] (*why it happened*).

use serde::{Deserialize, Serialize};

use crate::bus::{
    apply_effect_into, FaultPipeline, Reception, SlotEffect, SlotFaultClass, SlotOutcome, TxCtx,
    TxOutcome,
};
use crate::time::{NodeId, RoundIndex};

/// How much the trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record every non-`Correct` slot (compact; correct slots implicit).
    #[default]
    Anomalies,
    /// Record every slot, including correct ones (verbose; for debugging).
    Full,
    /// Record nothing (long tuning runs).
    Off,
}

/// A serializable, replayable record of what a slot's transmission did —
/// reconstructed from the per-receiver outcome, so it captures the fault
/// *pattern* (who detected, what wrong bytes were accepted) independent of
/// the payload the protocol happened to send.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EffectRecord {
    /// Delivered correctly everywhere.
    Correct,
    /// Locally detected by every receiver.
    Benign,
    /// All receivers accepted these (wrong) bytes.
    Malicious(Vec<u8>),
    /// Detected by exactly these receiver indices; the rest received fine.
    Asymmetric {
        /// 0-based receiver indices that detected the fault.
        detected_by: Vec<usize>,
        /// The sender's collision-detector observation.
        collision_ok: bool,
    },
}

impl EffectRecord {
    /// Reconstructs an equivalent effect from a transmission outcome.
    ///
    /// Mixed outcomes that a single [`SlotEffect`] cannot express (e.g. a
    /// replicated bus delivering different valid payloads to different
    /// receivers) are approximated by their dominant class.
    pub fn from_outcome(outcome: &TxOutcome, true_payload: &[u8], sender: NodeId) -> Self {
        Self::from_receptions(
            &outcome.receptions,
            outcome.collision_ok,
            outcome.class,
            true_payload,
            sender,
        )
    }

    /// Reconstructs an equivalent effect from an engine-owned
    /// [`SlotOutcome`] buffer (same semantics as
    /// [`EffectRecord::from_outcome`]).
    pub fn from_slot_outcome(outcome: &SlotOutcome, true_payload: &[u8], sender: NodeId) -> Self {
        Self::from_receptions(
            &outcome.receptions,
            outcome.collision_ok,
            outcome.class,
            true_payload,
            sender,
        )
    }

    fn from_receptions(
        receptions: &[Reception],
        collision_ok: bool,
        class: SlotFaultClass,
        true_payload: &[u8],
        sender: NodeId,
    ) -> Self {
        match class {
            SlotFaultClass::Correct => EffectRecord::Correct,
            SlotFaultClass::Benign => EffectRecord::Benign,
            SlotFaultClass::SymmetricMalicious => {
                let wrong = receptions
                    .iter()
                    .find_map(|r| match r {
                        Reception::Valid(p) if p != true_payload => Some(p.to_vec()),
                        _ => None,
                    })
                    .unwrap_or_default();
                EffectRecord::Malicious(wrong)
            }
            SlotFaultClass::Asymmetric => EffectRecord::Asymmetric {
                detected_by: receptions
                    .iter()
                    .enumerate()
                    .filter(|(rx, r)| *rx != sender.index() && !r.is_valid())
                    .map(|(rx, _)| rx)
                    .collect(),
                collision_ok,
            },
        }
    }

    /// The [`SlotEffect`] that re-applies this record.
    pub fn to_effect(&self) -> SlotEffect {
        match self {
            EffectRecord::Correct => SlotEffect::Correct,
            EffectRecord::Benign => SlotEffect::Benign,
            EffectRecord::Malicious(bytes) => SlotEffect::SymmetricMalicious {
                payload: bytes::Bytes::from(bytes.clone()),
            },
            EffectRecord::Asymmetric {
                detected_by,
                collision_ok,
            } => SlotEffect::Asymmetric {
                detected_by: detected_by.clone(),
                collision_ok: *collision_ok,
            },
        }
    }
}

/// One recorded slot outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// The round of the slot.
    pub round: RoundIndex,
    /// The sender owning the slot.
    pub sender: NodeId,
    /// Ground-truth fault class applied by the pipeline.
    pub class: SlotFaultClass,
    /// The replayable effect, recorded in [`TraceMode::Full`] (and for
    /// anomalies in [`TraceMode::Anomalies`]).
    pub effect: Option<EffectRecord>,
}

/// The ground-truth fault trace of a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<SlotRecord>,
    #[serde(skip)]
    mode: TraceModeSer,
}

// TraceMode is not serialized; wrap to keep Default derivable.
type TraceModeSer = TraceMode;

impl Trace {
    /// Creates an empty trace with the given mode.
    pub fn new(mode: TraceMode) -> Self {
        Trace {
            records: Vec::new(),
            mode,
        }
    }

    /// The trace's recording mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Whether a record of `class` would be retained under this mode.
    pub fn wants(&self, class: SlotFaultClass) -> bool {
        match self.mode {
            TraceMode::Off => false,
            TraceMode::Anomalies => class != SlotFaultClass::Correct,
            TraceMode::Full => true,
        }
    }

    /// Records one slot outcome, subject to the trace mode.
    pub fn record(&mut self, round: RoundIndex, sender: NodeId, class: SlotFaultClass) {
        self.record_with_effect(round, sender, class, None);
    }

    /// Records one slot outcome together with its replayable effect.
    pub fn record_with_effect(
        &mut self,
        round: RoundIndex,
        sender: NodeId,
        class: SlotFaultClass,
        effect: Option<EffectRecord>,
    ) {
        match self.mode {
            TraceMode::Off => {}
            TraceMode::Anomalies => {
                if class != SlotFaultClass::Correct {
                    self.records.push(SlotRecord {
                        round,
                        sender,
                        class,
                        effect,
                    });
                }
            }
            TraceMode::Full => self.records.push(SlotRecord {
                round,
                sender,
                class,
                effect,
            }),
        }
    }

    /// A pipeline that replays this trace's recorded effects: each slot
    /// gets its recorded effect (or `Correct` when absent), so a captured
    /// run — from this simulator or from hardware instrumentation imported
    /// into [`SlotRecord`]s — can be re-driven deterministically against
    /// any protocol configuration.
    pub fn replay_pipeline(&self) -> ReplayPipeline {
        ReplayPipeline {
            records: self
                .records
                .iter()
                .filter_map(|r| r.effect.as_ref().map(|e| ((r.round, r.sender), e.clone())))
                .collect(),
        }
    }

    /// All recorded slots, in transmission order.
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// Ground-truth fault class of the slot of `sender` in `round`.
    ///
    /// With [`TraceMode::Anomalies`], absent records mean `Correct`.
    pub fn class_of(&self, round: RoundIndex, sender: NodeId) -> SlotFaultClass {
        self.records
            .iter()
            .rev()
            .find(|r| r.round == round && r.sender == sender)
            .map(|r| r.class)
            .unwrap_or(SlotFaultClass::Correct)
    }

    /// The set of senders whose slot in `round` was benign faulty
    /// (locally detectable by all receivers).
    pub fn benign_in(&self, round: RoundIndex) -> Vec<NodeId> {
        self.records
            .iter()
            .filter(|r| r.round == round && r.class == SlotFaultClass::Benign)
            .map(|r| r.sender)
            .collect()
    }

    /// Count of faulty (non-correct) slots in `round`.
    pub fn faults_in(&self, round: RoundIndex) -> usize {
        self.records
            .iter()
            .filter(|r| r.round == round && r.class != SlotFaultClass::Correct)
            .count()
    }

    /// The highest recorded round, if any record exists.
    pub fn last_round(&self) -> Option<RoundIndex> {
        self.records.iter().map(|r| r.round).max()
    }
}

/// A [`FaultPipeline`] replaying recorded effects (see
/// [`Trace::replay_pipeline`]).
#[derive(Debug, Clone, Default)]
pub struct ReplayPipeline {
    records: std::collections::HashMap<(RoundIndex, NodeId), EffectRecord>,
}

impl FaultPipeline for ReplayPipeline {
    fn effect(&mut self, ctx: &TxCtx) -> SlotEffect {
        self.records
            .get(&(ctx.round, ctx.sender))
            .map(EffectRecord::to_effect)
            .unwrap_or(SlotEffect::Correct)
    }

    fn transmit_into(&mut self, ctx: &TxCtx, payload: &bytes::Bytes, out: &mut SlotOutcome) {
        // Unrecorded slots (the vast majority under `TraceMode::Anomalies`)
        // skip the effect reconstruction and allocate nothing.
        match self.records.get(&(ctx.round, ctx.sender)) {
            None => apply_effect_into(&SlotEffect::Correct, ctx, payload, out),
            Some(rec) => apply_effect_into(&rec.to_effect(), ctx, payload, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anomalies_mode_skips_correct_slots() {
        let mut t = Trace::new(TraceMode::Anomalies);
        t.record(RoundIndex::new(1), NodeId::new(1), SlotFaultClass::Correct);
        t.record(RoundIndex::new(1), NodeId::new(2), SlotFaultClass::Benign);
        assert_eq!(t.records().len(), 1);
        assert_eq!(
            t.class_of(RoundIndex::new(1), NodeId::new(1)),
            SlotFaultClass::Correct
        );
        assert_eq!(
            t.class_of(RoundIndex::new(1), NodeId::new(2)),
            SlotFaultClass::Benign
        );
    }

    #[test]
    fn full_mode_records_everything_and_off_nothing() {
        let mut full = Trace::new(TraceMode::Full);
        let mut off = Trace::new(TraceMode::Off);
        for t in [&mut full, &mut off] {
            t.record(RoundIndex::new(0), NodeId::new(1), SlotFaultClass::Correct);
        }
        assert_eq!(full.records().len(), 1);
        assert_eq!(off.records().len(), 0);
    }

    #[test]
    fn queries_by_round() {
        let mut t = Trace::new(TraceMode::Anomalies);
        t.record(RoundIndex::new(2), NodeId::new(3), SlotFaultClass::Benign);
        t.record(RoundIndex::new(2), NodeId::new(4), SlotFaultClass::Benign);
        t.record(
            RoundIndex::new(3),
            NodeId::new(1),
            SlotFaultClass::Asymmetric,
        );
        assert_eq!(
            t.benign_in(RoundIndex::new(2)),
            vec![NodeId::new(3), NodeId::new(4)]
        );
        assert_eq!(t.faults_in(RoundIndex::new(2)), 2);
        assert_eq!(t.faults_in(RoundIndex::new(3)), 1);
        assert_eq!(t.faults_in(RoundIndex::new(4)), 0);
        assert_eq!(t.last_round(), Some(RoundIndex::new(3)));
    }
}
