//! Error type of the simulator.

use std::error::Error;
use std::fmt;

use crate::time::NodeId;

/// Errors returned by simulator configuration and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was invalid (message explains which).
    InvalidConfig(String),
    /// A node id referenced a node that does not exist in the cluster.
    UnknownNode(NodeId),
    /// A job of the requested concrete type was not found on the node.
    JobTypeMismatch(NodeId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::UnknownNode(id) => write!(f, "unknown node {id}"),
            SimError::JobTypeMismatch(id) => {
                write!(f, "job on node {id} has a different concrete type")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SimError::InvalidConfig("round length is zero".into());
        assert_eq!(e.to_string(), "invalid configuration: round length is zero");
        let e = SimError::UnknownNode(NodeId::new(7));
        assert!(e.to_string().contains("N7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
