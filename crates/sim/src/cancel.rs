//! Cooperative, round-granularity cancellation.
//!
//! A [`CancellationToken`] is a cheaply cloneable flag shared between a
//! supervisor (which decides to cancel) and a running simulation (which
//! observes the flag between rounds). The engine checks the token at the
//! start of every [`crate::Cluster::run_round`], so a cancelled cluster
//! stops at the next round boundary — never mid-slot — keeping all state
//! it has produced so far consistent and inspectable.
//!
//! Cancellation is level-triggered and permanent: once set, the token
//! stays cancelled for its lifetime. Supervisors that retry an experiment
//! hand the rerun a fresh token.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag checked by the engine at round granularity.
///
/// Clones share the flag: cancelling any clone cancels them all.
///
/// ```
/// use tt_sim::CancellationToken;
/// let token = CancellationToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested on this token (or any
    /// clone of it).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        assert!(!CancellationToken::new().is_cancelled());
        assert!(!CancellationToken::default().is_cancelled());
    }

    #[test]
    fn cancel_is_shared_and_idempotent() {
        let a = CancellationToken::new();
        let b = a.clone();
        a.cancel();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
    }

    #[test]
    fn tokens_are_independent_across_new() {
        let a = CancellationToken::new();
        let b = CancellationToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancel_crosses_threads() {
        let token = CancellationToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("cancel thread");
        assert!(token.is_cancelled());
    }
}
