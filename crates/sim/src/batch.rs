//! Batched multi-cluster lockstep engine (structure-of-arrays).
//!
//! [`BatchCluster`] runs `B` *independent* clusters — all with the same node
//! count `N` and the same TDMA round schedule — through their rounds
//! simultaneously. Controller state is stored as structure-of-arrays: for
//! every per-(observer, sender) quantity there is one contiguous `[u64; B]`
//! lane array, so the per-slot reception update and the per-round protocol
//! kernels become branch-light bulk loops over lanes that the compiler can
//! auto-vectorize. One u64 per lane packs the per-sender bits (bit `j` =
//! sender `j`), which caps the batched engine at `N ≤ 64` nodes — the same
//! bound as the scalar `Copy` syndrome bitset.
//!
//! The substrate in this module is protocol-agnostic: it models exactly what
//! the scalar [`Controller`](crate::Controller) + engine pair does per slot
//! (validity bits, interface-variable freshness, activity masks, the local
//! collision detector) and hands each round's job phase to a [`LockstepJob`]
//! — the batched counterpart of [`Job`](crate::Job). The batched diagnostic
//! protocol lives in `tt-core` and drives this state machine.
//!
//! Divergent lanes are handled with a per-lane *live* mask: a retired lane
//! (its experiment ran out of rounds, or a supervisor quarantined it) keeps
//! its state frozen bit-for-bit while the remaining lanes continue — the
//! masked updates multiply every write by the lane's live flag instead of
//! branching.
//!
//! Scalar-only paths: provenance tracing, metrics sinks and per-cluster
//! `Bytes` payloads are deliberately **not** reproduced here — batched mode
//! corresponds to a scalar cluster with `TraceMode::Off` and the default
//! `NoopSink`. Anything that needs spans or recorded events runs the scalar
//! engine.

use crate::error::SimError;

/// Maximum cluster size of the batched engine: per-sender bits are packed
/// into one `u64` per lane (same bound as `tt-core`'s syndrome bitset).
pub const MAX_BATCH_NODES: usize = 64;

/// Depth of the per-lane collision-detector ring buffer, in rounds.
///
/// The diagnostic protocol queries round `k - 3` during round `k` (Lemma 1);
/// four rounds of history cover the query window with the round currently
/// being written.
const COLLISION_RING: usize = 4;

/// The pre-decoded per-lane effect of one faulty transmission slot.
///
/// This is the batched counterpart of `SlotEffect`: payloads are already
/// decoded to `N`-bit masks so the hot loop never touches `Bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneEffect {
    /// Benign/locally detectable fault: every receiver detects the frame as
    /// invalid, and the sender's collision detector sees the failure.
    Benign,
    /// Symmetric malicious fault: every receiver accepts `mask` (bit `j` =
    /// opinion "node `j` ok") instead of the sender's real payload; the
    /// sender's collision detector reads the frame back fine.
    Malicious {
        /// The received (already decoded) syndrome mask.
        mask: u64,
    },
    /// Asymmetric fault: receivers whose bit is set in `detected_by` detect
    /// the frame as invalid, the others accept the real payload.
    Asymmetric {
        /// Bit `i` set = receiver `i` detects the frame as invalid.
        detected_by: u64,
        /// What the sender's local collision detector observes.
        collision_ok: bool,
    },
}

/// One scheduled fault of a lane's fault plan: `hits` strikes on `slot`'s
/// transmission, every `stride` rounds, starting at `first_round`.
///
/// Mirrors `tt-fault`'s `ScheduledFault` (which converts into this form)
/// with the slot index pre-resolved and the effect pre-decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneFault {
    /// The sending slot (= sender index) the fault strikes.
    pub slot: usize,
    /// First affected round.
    pub first_round: u64,
    /// Number of affected transmissions.
    pub hits: u64,
    /// Rounds between consecutive hits (`0` is treated as `1`).
    pub stride: u64,
    /// What happens to each affected transmission.
    pub effect: LaneEffect,
}

impl LaneFault {
    /// Whether this fault covers the transmission of `slot` in `round`.
    #[inline]
    pub fn covers(&self, round: u64, slot: usize) -> bool {
        if slot != self.slot || round < self.first_round {
            return false;
        }
        let d = round - self.first_round;
        let stride = self.stride.max(1);
        d.is_multiple_of(stride) && d / stride < self.hits
    }
}

/// The fault plan of one lane: a list of [`LaneFault`]s, first match wins
/// (the same resolution order as `tt-fault`'s schedule pipeline). An empty
/// plan is a fault-free lane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchFaultPlan {
    faults: Vec<LaneFault>,
}

impl BatchFaultPlan {
    /// A plan injecting `faults` (first match wins).
    pub fn new(faults: Vec<LaneFault>) -> Self {
        BatchFaultPlan { faults }
    }

    /// The fault-free plan.
    pub fn correct() -> Self {
        BatchFaultPlan::default()
    }

    /// The scheduled faults, in match order.
    pub fn faults(&self) -> &[LaneFault] {
        &self.faults
    }

    /// The effect striking `slot`'s transmission in `round`, if any.
    #[inline]
    pub fn effect_for(&self, round: u64, slot: usize) -> Option<&LaneEffect> {
        self.faults
            .iter()
            .find(|f| f.covers(round, slot))
            .map(|f| &f.effect)
    }
}

/// The batched job interface: the per-round protocol step of all lanes.
///
/// [`BatchCluster::run_round`] calls [`LockstepJob::execute`] once per round
/// *before* the round's slot phase, exactly as the scalar engine runs jobs
/// with schedule offset `l = 0` before slot 0. The job reads and updates the
/// lanes' controller state through [`BatchLanes`] and must skip lanes whose
/// live flag is clear.
pub trait LockstepJob {
    /// Runs the job phase of the current round for every live lane.
    fn execute(&mut self, lanes: &mut BatchLanes);
}

/// Structure-of-arrays controller state for `B` lockstep clusters.
///
/// Every row accessor returns a `B`-element lane array; per-sender bits are
/// packed into the `u64` lane values (bit `j` = sender/subject `j`).
#[derive(Debug, Clone)]
pub struct BatchLanes {
    n: usize,
    b: usize,
    round: u64,
    /// Validity bit per (observer `i`, sender bit `j`): `[i * b + lane]`.
    validity: Vec<u64>,
    /// Interface-variable presence (ever successfully received) per
    /// (observer, sender bit): `[i * b + lane]`.
    present: Vec<u64>,
    /// Activity mask per (observer, subject bit): `[i * b + lane]`.
    active: Vec<u64>,
    /// Last successfully received syndrome mask per (observer `i`,
    /// sender `r`): `[(i * n + r) * b + lane]`.
    syn: Vec<u64>,
    /// Transmit buffer (decoded mask) per sender `p`: `[p * b + lane]`.
    tx: Vec<u64>,
    /// Collision-detector ring: `[(round % COLLISION_RING) * b + lane]`,
    /// bit `p` = own-transmission outcome of slot `p` in that round.
    collisions: Vec<u64>,
    /// Live flag per lane (`1` = running, `0` = retired/frozen).
    live: Vec<u64>,
    live_count: usize,
}

impl BatchLanes {
    fn new(n: usize, b: usize) -> Self {
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        BatchLanes {
            n,
            b,
            round: 0,
            validity: vec![0; n * b],
            present: vec![0; n * b],
            active: vec![mask; n * b],
            syn: vec![0; n * n * b],
            tx: vec![0; n * b],
            collisions: vec![0; COLLISION_RING * b],
            live: vec![1; b],
            live_count: b,
        }
    }

    /// Cluster size `N` (nodes per lane).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Batch width `B` (number of lanes).
    #[inline]
    pub fn batch(&self) -> usize {
        self.b
    }

    /// The current round `k` (the round whose job phase is running, or the
    /// next round to run between rounds).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The all-ones mask over the `N` per-sender bits.
    #[inline]
    pub fn node_mask(&self) -> u64 {
        if self.n == 64 {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        }
    }

    /// Per-lane live flags (`1` = running, `0` = retired).
    #[inline]
    pub fn live(&self) -> &[u64] {
        &self.live
    }

    /// Whether `lane` is still running.
    #[inline]
    pub fn is_live(&self, lane: usize) -> bool {
        self.live[lane] == 1
    }

    /// Number of live lanes.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Validity bits of observer `i` (bit `j` = sender `j`'s variable valid).
    #[inline]
    pub fn validity_row(&self, i: usize) -> &[u64] {
        &self.validity[i * self.b..(i + 1) * self.b]
    }

    /// Interface-variable presence of observer `i` (bit `j` set once sender
    /// `j`'s variable was successfully received at least once).
    #[inline]
    pub fn present_row(&self, i: usize) -> &[u64] {
        &self.present[i * self.b..(i + 1) * self.b]
    }

    /// Activity mask of observer `i` (bit `j` clear = `j` isolated locally).
    #[inline]
    pub fn active_row(&self, i: usize) -> &[u64] {
        &self.active[i * self.b..(i + 1) * self.b]
    }

    /// The last successfully received syndrome of sender `r` as seen by
    /// observer `i`.
    #[inline]
    pub fn syndrome_row(&self, i: usize, r: usize) -> &[u64] {
        let base = (i * self.n + r) * self.b;
        &self.syn[base..base + self.b]
    }

    /// Mutable transmit buffer of sender `p` (decoded `N`-bit masks); the
    /// job phase writes the outgoing syndrome here, the slot phase of the
    /// same round puts it on the bus.
    #[inline]
    pub fn tx_row_mut(&mut self, p: usize) -> &mut [u64] {
        &mut self.tx[p * self.b..(p + 1) * self.b]
    }

    /// The collision-detector observations of `round` (bit `p` = own
    /// transmission in slot `p` was readable on the bus).
    ///
    /// Only the last `COLLISION_RING` (16) completed rounds are retained;
    /// the protocol queries `k - 3`, well inside the window.
    #[inline]
    pub fn collision_row(&self, round: u64) -> &[u64] {
        debug_assert!(
            round < self.round && self.round - round <= COLLISION_RING as u64,
            "collision history holds the last {COLLISION_RING} rounds"
        );
        let slot = (round % COLLISION_RING as u64) as usize;
        &self.collisions[slot * self.b..(slot + 1) * self.b]
    }

    /// Clears observer `i`'s activity bit for `subject` in `lane` (the
    /// local isolation decision of the diagnostic protocol).
    #[inline]
    pub fn isolate(&mut self, i: usize, subject: usize, lane: usize) {
        self.active[i * self.b + lane] &= !(1u64 << subject);
    }
}

/// `B` independent clusters advanced in lockstep through the same round
/// schedule (see the [module docs](self) for the layout and semantics).
#[derive(Debug, Clone)]
pub struct BatchCluster {
    lanes: BatchLanes,
    plans: Vec<BatchFaultPlan>,
    /// Fault index: per sending slot, the `(lane, fault)` pairs that can
    /// ever strike it, in (lane, plan) order — so the per-slot resolution
    /// scans only the (sparse) faulty lanes instead of every lane, and
    /// consecutive same-lane entries implement first-match-wins.
    by_slot: Vec<Vec<(u32, LaneFault)>>,
    /// Scratch: per-lane received payload mask of the current slot.
    pay: Vec<u64>,
    /// Scratch: per-lane receiver-detection mask (bit `i` = receiver `i`
    /// detects the frame as invalid).
    det: Vec<u64>,
    /// Scratch: per-lane collision-detector outcome (0/1).
    coll: Vec<u64>,
}

impl BatchCluster {
    /// Creates a lockstep batch of `plans.len()` clusters of `n` nodes; lane
    /// `l` runs fault plan `plans[l]`.
    pub fn new(n: usize, plans: Vec<BatchFaultPlan>) -> Result<Self, SimError> {
        if !(2..=MAX_BATCH_NODES).contains(&n) {
            return Err(SimError::InvalidConfig(format!(
                "batched cluster size must be 2..={MAX_BATCH_NODES}, got {n}"
            )));
        }
        if plans.is_empty() {
            return Err(SimError::InvalidConfig(
                "a batch needs at least one lane".into(),
            ));
        }
        let b = plans.len();
        for (lane, plan) in plans.iter().enumerate() {
            if let Some(f) = plan.faults().iter().find(|f| f.slot >= n) {
                return Err(SimError::InvalidConfig(format!(
                    "lane {lane}: fault slot {} out of range for n = {n}",
                    f.slot
                )));
            }
        }
        let mut by_slot = vec![Vec::new(); n];
        for (lane, plan) in plans.iter().enumerate() {
            for f in plan.faults() {
                by_slot[f.slot].push((lane as u32, *f));
            }
        }
        Ok(BatchCluster {
            lanes: BatchLanes::new(n, b),
            plans,
            by_slot,
            pay: vec![0; b],
            det: vec![0; b],
            coll: vec![0; b],
        })
    }

    /// The lanes' controller state.
    pub fn lanes(&self) -> &BatchLanes {
        &self.lanes
    }

    /// The per-lane fault plans, in lane order.
    pub fn plans(&self) -> &[BatchFaultPlan] {
        &self.plans
    }

    /// Retires `lane`: its state freezes bit-for-bit and subsequent rounds
    /// skip it. Retiring an already-retired lane is a no-op.
    pub fn retire_lane(&mut self, lane: usize) {
        if self.lanes.live[lane] == 1 {
            self.lanes.live[lane] = 0;
            self.lanes.live_count -= 1;
        }
    }

    /// Runs one full round: the job phase (all lanes, via `job`), then the
    /// `N` transmission slots. Returns `false` when no lane is live (the
    /// round did not run).
    pub fn run_round(&mut self, job: &mut dyn LockstepJob) -> bool {
        if self.lanes.live_count == 0 {
            return false;
        }
        job.execute(&mut self.lanes);
        let n = self.lanes.n;
        let b = self.lanes.b;
        let k = self.lanes.round;
        let ring = (k % COLLISION_RING as u64) as usize * b;
        for p in 0..n {
            // Resolve each lane's slot effect into the scratch arrays. The
            // defaults model a correct transmission; the slot's fault index
            // visits only the lanes with a fault scheduled on this slot, in
            // (lane, plan) order, so skipping the remaining entries of an
            // already-matched lane preserves first-match-wins.
            self.pay.copy_from_slice(&self.lanes.tx[p * b..(p + 1) * b]);
            self.det.fill(0);
            self.coll.fill(1);
            let mut matched = usize::MAX;
            for &(lane, ref f) in &self.by_slot[p] {
                let lane = lane as usize;
                if lane == matched || self.lanes.live[lane] == 0 || !f.covers(k, p) {
                    continue;
                }
                matched = lane;
                match f.effect {
                    LaneEffect::Benign => {
                        self.det[lane] = u64::MAX;
                        self.coll[lane] = 0;
                    }
                    LaneEffect::Malicious { mask } => {
                        self.pay[lane] = mask;
                    }
                    LaneEffect::Asymmetric {
                        detected_by,
                        collision_ok,
                    } => {
                        self.det[lane] = detected_by;
                        self.coll[lane] = collision_ok as u64;
                    }
                }
            }
            let bit = 1u64 << p;
            // Receivers i != p: the masked, branch-free equivalent of
            // `Controller::deliver`. An inactive sender or a detected frame
            // clears the validity bit; a valid reception sets it, marks the
            // variable present and latches the payload mask. Retired lanes
            // multiply every write out. Exact-length slice bindings let the
            // lane loops elide bounds checks and vectorize.
            let live = &self.lanes.live[..b];
            let det = &self.det[..b];
            let pay = &self.pay[..b];
            for i in 0..n {
                if i == p {
                    continue;
                }
                let validity = &mut self.lanes.validity[i * b..(i + 1) * b];
                let present = &mut self.lanes.present[i * b..(i + 1) * b];
                let active = &self.lanes.active[i * b..(i + 1) * b];
                let srow = (i * n + p) * b;
                let syn = &mut self.lanes.syn[srow..srow + b];
                for lane in 0..b {
                    let lv = live[lane];
                    let act = (active[lane] >> p) & 1;
                    let detected = (det[lane] >> i) & 1;
                    let ok = act & (detected ^ 1) & lv;
                    let clear = bit & 0u64.wrapping_sub(lv);
                    validity[lane] = (validity[lane] & !clear) | (ok << p);
                    present[lane] |= ok << p;
                    let m = 0u64.wrapping_sub(ok);
                    syn[lane] = (syn[lane] & !m) | (pay[lane] & m);
                }
            }
            // Sender self-path: the equivalent of
            // `Controller::record_collision` — unconditionally latches the
            // *real* transmit buffer (the node knows what it sent), sets the
            // own validity bit from the collision detector and records the
            // observation in the ring.
            let coll = &self.coll[..b];
            let validity = &mut self.lanes.validity[p * b..(p + 1) * b];
            let present = &mut self.lanes.present[p * b..(p + 1) * b];
            let tx = &self.lanes.tx[p * b..(p + 1) * b];
            let srow = (p * n + p) * b;
            let syn = &mut self.lanes.syn[srow..srow + b];
            let collisions = &mut self.lanes.collisions[ring..ring + b];
            for lane in 0..b {
                let lv = live[lane];
                let c = coll[lane] & lv;
                let clear = bit & 0u64.wrapping_sub(lv);
                validity[lane] = (validity[lane] & !clear) | (c << p);
                present[lane] |= lv << p;
                let m = 0u64.wrapping_sub(lv);
                syn[lane] = (syn[lane] & !m) | (tx[lane] & m);
                collisions[lane] = (collisions[lane] & !clear) | (c << p);
            }
        }
        self.lanes.round += 1;
        true
    }

    /// Runs `rounds` full rounds (stopping early if every lane retires);
    /// returns the number of rounds that ran.
    pub fn run_rounds(&mut self, rounds: u64, job: &mut dyn LockstepJob) -> u64 {
        for executed in 0..rounds {
            if !self.run_round(job) {
                return executed;
            }
        }
        rounds
    }

    /// Runs until every lane has completed its per-lane round budget:
    /// lane `l` participates in rounds `0..lane_rounds[l]` and is then
    /// retired, letting shorter experiments fall out of the batch while the
    /// longer ones continue (lane divergence).
    ///
    /// # Panics
    ///
    /// Panics if `lane_rounds.len() != B`.
    pub fn run_lane_rounds(&mut self, lane_rounds: &[u64], job: &mut dyn LockstepJob) {
        assert_eq!(lane_rounds.len(), self.lanes.b, "one round budget per lane");
        loop {
            let k = self.lanes.round;
            for (lane, &target) in lane_rounds.iter().enumerate() {
                if k >= target {
                    self.retire_lane(lane);
                }
            }
            if !self.run_round(job) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A job that records nothing: pure slot-phase exercise.
    struct Idle;
    impl LockstepJob for Idle {
        fn execute(&mut self, _lanes: &mut BatchLanes) {}
    }

    /// A job that transmits a constant per-lane mask.
    struct Constant(u64);
    impl LockstepJob for Constant {
        fn execute(&mut self, lanes: &mut BatchLanes) {
            for p in 0..lanes.n_nodes() {
                let mask = self.0;
                lanes.tx_row_mut(p).iter_mut().for_each(|t| *t = mask);
            }
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(BatchCluster::new(1, vec![BatchFaultPlan::correct()]).is_err());
        assert!(BatchCluster::new(65, vec![BatchFaultPlan::correct()]).is_err());
        assert!(BatchCluster::new(4, Vec::new()).is_err());
        let bad_slot = BatchFaultPlan::new(vec![LaneFault {
            slot: 4,
            first_round: 0,
            hits: 1,
            stride: 1,
            effect: LaneEffect::Benign,
        }]);
        assert!(BatchCluster::new(4, vec![bad_slot]).is_err());
    }

    #[test]
    fn healthy_slots_set_validity_present_and_syndromes() {
        let mut c = BatchCluster::new(4, vec![BatchFaultPlan::correct(); 3]).unwrap();
        let mut job = Constant(0b1010);
        assert!(c.run_round(&mut job));
        let lanes = c.lanes();
        for i in 0..4 {
            for lane in 0..3 {
                assert_eq!(lanes.validity_row(i)[lane], 0b1111, "observer {i}");
                assert_eq!(lanes.present_row(i)[lane], 0b1111);
                for r in 0..4 {
                    assert_eq!(lanes.syndrome_row(i, r)[lane], 0b1010);
                }
            }
        }
        // Collision ring: all four own transmissions fine.
        assert_eq!(lanes.collision_row(0)[0], 0b1111);
    }

    #[test]
    fn benign_fault_detected_by_all_and_collision_seen() {
        let plan = BatchFaultPlan::new(vec![LaneFault {
            slot: 2,
            first_round: 0,
            hits: 1,
            stride: 1,
            effect: LaneEffect::Benign,
        }]);
        let mut c = BatchCluster::new(4, vec![BatchFaultPlan::correct(), plan]).unwrap();
        let mut job = Constant(0b1111);
        c.run_round(&mut Idle); // round 0: empty tx, establish presence
        c.run_round(&mut job);
        let lanes = c.lanes();
        // Lane 0 (fault-free): everything valid.
        for i in 0..4 {
            assert_eq!(lanes.validity_row(i)[0], 0b1111);
        }
        // Lane 1: slot 2's frame detected by every receiver in round 0 —
        // validity restored in round 1 (hits = 1).
        assert_eq!(lanes.collision_row(0)[1], 0b1011, "collision seen");
        assert_eq!(lanes.collision_row(1)[1], 0b1111, "round 1 clean");
        for i in 0..4 {
            assert_eq!(lanes.validity_row(i)[1], 0b1111, "recovered");
        }
    }

    #[test]
    fn malicious_payload_replaces_receptions_but_not_self_copy() {
        let plan = BatchFaultPlan::new(vec![LaneFault {
            slot: 1,
            first_round: 0,
            hits: 1,
            stride: 1,
            effect: LaneEffect::Malicious { mask: 0b0001 },
        }]);
        let mut c = BatchCluster::new(4, vec![plan]).unwrap();
        let mut job = Constant(0b1111);
        c.run_round(&mut job);
        let lanes = c.lanes();
        for i in 0..4 {
            let expect = if i == 1 { 0b1111 } else { 0b0001 };
            assert_eq!(lanes.syndrome_row(i, 1)[0], expect, "observer {i}");
            assert_eq!(lanes.validity_row(i)[0], 0b1111, "accepted as valid");
        }
    }

    #[test]
    fn asymmetric_fault_splits_receivers() {
        let plan = BatchFaultPlan::new(vec![LaneFault {
            slot: 0,
            first_round: 2,
            hits: 2,
            stride: 3,
            effect: LaneEffect::Asymmetric {
                detected_by: 0b0110,
                collision_ok: true,
            },
        }]);
        let mut c = BatchCluster::new(4, vec![plan]).unwrap();
        let mut job = Constant(0b1111);
        c.run_rounds(3, &mut job); // rounds 0..=2; fault strikes round 2
        let lanes = c.lanes();
        assert_eq!(lanes.validity_row(1)[0], 0b1110, "receiver 1 detected");
        assert_eq!(lanes.validity_row(2)[0], 0b1110, "receiver 2 detected");
        assert_eq!(lanes.validity_row(3)[0], 0b1111, "receiver 3 accepted");
        assert_eq!(lanes.collision_row(2)[0], 0b1111, "sender saw no failure");
        // Stride 3, hits 2: covers rounds 2 and 5 only.
        let f = &c.plans[0].faults()[0];
        assert!(f.covers(2, 0) && f.covers(5, 0));
        assert!(!f.covers(3, 0) && !f.covers(8, 0) && !f.covers(2, 1));
    }

    #[test]
    fn inactive_senders_are_ignored() {
        let mut c = BatchCluster::new(4, vec![BatchFaultPlan::correct(); 2]).unwrap();
        let mut job = Constant(0b1111);
        c.run_round(&mut job);
        // Observer 3 isolates node 1 in lane 0 only.
        c.lanes.isolate(3, 1, 0);
        c.run_round(&mut job);
        let lanes = c.lanes();
        assert_eq!(lanes.validity_row(3)[0], 0b1101, "validity forced off");
        assert_eq!(lanes.validity_row(3)[1], 0b1111, "other lane unaffected");
        assert_eq!(lanes.syndrome_row(3, 1)[0], 0b1111, "stale value kept");
        assert_eq!(lanes.active_row(3)[0], 0b1101);
    }

    #[test]
    fn retired_lanes_freeze_bit_for_bit() {
        let plan = BatchFaultPlan::new(vec![LaneFault {
            slot: 3,
            first_round: 1,
            hits: u64::MAX,
            stride: 1,
            effect: LaneEffect::Benign,
        }]);
        let mut c = BatchCluster::new(4, vec![plan.clone(), plan]).unwrap();
        let mut job = Constant(0b1111);
        c.run_rounds(2, &mut job);
        c.retire_lane(0);
        let frozen: Vec<u64> = c.lanes.validity.clone();
        let frozen_syn: Vec<u64> = c.lanes.syn.clone();
        c.run_rounds(3, &mut job);
        let lanes = c.lanes();
        assert_eq!(lanes.live_count(), 1);
        assert!(!lanes.is_live(0));
        for i in 0..4 {
            assert_eq!(lanes.validity_row(i)[0], frozen[i * 2], "lane 0 frozen");
            for r in 0..4 {
                assert_eq!(lanes.syndrome_row(i, r)[0], frozen_syn[(i * 4 + r) * 2]);
            }
        }
        // Lane 1 kept running: the persistent benign fault on slot 3 keeps
        // its validity bit down.
        assert_eq!(lanes.validity_row(0)[1] & 0b1000, 0);
        // Retiring every lane stops the engine.
        c.retire_lane(1);
        assert!(!c.run_round(&mut job));
        assert_eq!(c.lanes().round(), 5);
    }

    #[test]
    fn lane_round_budgets_retire_lanes_individually() {
        let mut c = BatchCluster::new(4, vec![BatchFaultPlan::correct(); 3]).unwrap();
        c.run_lane_rounds(&[2, 5, 0], &mut Constant(0b1111));
        assert_eq!(c.lanes().round(), 5, "longest budget bounds the run");
        assert_eq!(c.lanes().live_count(), 0);
        // Lane 2 never ran a round: validity still at the initial state.
        assert_eq!(c.lanes().validity_row(0)[2], 0);
        // Lane 0 ran exactly 2 rounds, lane 1 all 5.
        assert_eq!(c.lanes().validity_row(0)[0], 0b1111);
        assert_eq!(c.lanes().validity_row(0)[1], 0b1111);
    }

    #[test]
    fn node_mask_covers_full_width() {
        let c = BatchCluster::new(64, vec![BatchFaultPlan::correct()]).unwrap();
        assert_eq!(c.lanes().node_mask(), u64::MAX);
        let c = BatchCluster::new(4, vec![BatchFaultPlan::correct()]).unwrap();
        assert_eq!(c.lanes().node_mask(), 0b1111);
        assert_eq!(c.lanes().active_row(0)[0], 0b1111, "all nodes start active");
    }
}
