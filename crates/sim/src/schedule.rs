//! Global communication schedule and per-node job schedules.
//!
//! The paper (Sec. 3) distinguishes the **global communication schedule**
//! (when each sending slot begins and terminates — executed by the
//! communication controllers) from each node's **internal node schedule**
//! (when jobs run). The add-on protocol does not constrain node scheduling;
//! instead it uses two parameters derived from it:
//!
//! * `l_i ∈ [0, N-1]`: when the diagnostic job of node `i` reads the
//!   interface variables in round `k`, variables `1..=l_i` carry values sent
//!   in round `k` and variables `l_i+1..=N` carry values from round `k-1`;
//! * `send_curr_round_i`: whether data written by the job in round `k` is
//!   transmitted already in round `k` (true iff the job completes before the
//!   sending slot of its own node).

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::time::{Nanos, NodeId};

/// A 0-based sending-slot position within a TDMA round.
///
/// Node `i` owns position `i - 1` ([`NodeId::slot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotPosition(pub usize);

impl SlotPosition {
    /// The node that sends in this slot.
    pub fn sender(self) -> NodeId {
        NodeId::from_slot(self.0)
    }
}

impl std::fmt::Display for SlotPosition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The periodic global communication schedule of the cluster.
///
/// Every round contains exactly one sending slot per node, in node-id order,
/// all of equal length (`round_length / n_nodes`). This mirrors the paper's
/// prototype (4 slots per 2.5 ms round).
///
/// ```
/// use tt_sim::{CommunicationSchedule, Nanos};
/// let sched = CommunicationSchedule::new(4, Nanos::from_millis_f64(2.5)).unwrap();
/// assert_eq!(sched.slot_length(), Nanos::from_micros(625));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommunicationSchedule {
    n_nodes: usize,
    round_length: Nanos,
}

impl CommunicationSchedule {
    /// Creates a schedule for `n_nodes` nodes and the given round length.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `n_nodes < 2` (a TDMA round
    /// needs at least two participants to diagnose anything) or the round
    /// length is zero or not divisible into equal slots.
    pub fn new(n_nodes: usize, round_length: Nanos) -> Result<Self, SimError> {
        if n_nodes < 2 {
            return Err(SimError::InvalidConfig(format!(
                "need at least 2 nodes, got {n_nodes}"
            )));
        }
        if round_length == Nanos::ZERO {
            return Err(SimError::InvalidConfig("round length is zero".into()));
        }
        if !round_length.as_nanos().is_multiple_of(n_nodes as u64) {
            return Err(SimError::InvalidConfig(format!(
                "round length {round_length} not divisible into {n_nodes} equal slots"
            )));
        }
        Ok(CommunicationSchedule {
            n_nodes,
            round_length,
        })
    }

    /// Number of nodes (= sending slots per round).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Physical length of one TDMA round (`T` in the paper).
    pub fn round_length(&self) -> Nanos {
        self.round_length
    }

    /// Physical length of one sending slot.
    pub fn slot_length(&self) -> Nanos {
        self.round_length / self.n_nodes as u64
    }

    /// Start offset of slot `p` within the round.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn slot_offset(&self, p: SlotPosition) -> Nanos {
        assert!(p.0 < self.n_nodes, "slot {p} out of range");
        self.slot_length() * p.0 as u64
    }

    /// Converts a physical duration into whole rounds (floor).
    pub fn rounds_in(&self, d: Nanos) -> u64 {
        d.div_duration(self.round_length)
    }

    /// Converts a physical duration into whole slots (floor).
    pub fn slots_in(&self, d: Nanos) -> u64 {
        d.div_duration(self.slot_length())
    }

    /// Iterates over the slot positions of one round.
    pub fn slots(&self) -> impl Iterator<Item = SlotPosition> {
        (0..self.n_nodes).map(SlotPosition)
    }
}

/// The internal schedule of one node: at which point inside the round its
/// jobs execute.
///
/// We model execution points at slot granularity: `exec_offset = l` means
/// "the job runs in round `k` after the first `l` sending slots of round `k`
/// have completed (and their interface-variable updates were delivered),
/// before slot `l` is transmitted". This is exactly the paper's `l_i`.
///
/// A job scheduled *after the last slot* of round `k` is, per the paper's
/// footnote 1, treated as if executed in round `k+1` with `l = 0`;
/// [`NodeSchedule::new`] performs this normalization (`exec_offset % N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeSchedule {
    node: NodeId,
    exec_offset: usize,
    n_nodes: usize,
}

impl NodeSchedule {
    /// Creates the schedule of `node` in an `n_nodes` cluster with the job
    /// executing after `exec_offset` slots of the round (normalized mod `N`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the node id exceeds `n_nodes`.
    pub fn new(node: NodeId, exec_offset: usize, n_nodes: usize) -> Result<Self, SimError> {
        if node.index() >= n_nodes {
            return Err(SimError::InvalidConfig(format!(
                "node {node} out of range for {n_nodes}-node cluster"
            )));
        }
        Ok(NodeSchedule {
            node,
            exec_offset: exec_offset % n_nodes,
            n_nodes,
        })
    }

    /// The node this schedule belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The paper's `l_i`: how many slots of the current round the job has
    /// already seen when it reads the interface variables.
    pub fn l(&self) -> usize {
        self.exec_offset
    }

    /// The paper's `send_curr_round_i` predicate: true iff the job completes
    /// before the sending slot of its own node, so data written in round `k`
    /// is already transmitted in round `k`.
    pub fn send_curr_round(&self) -> bool {
        self.exec_offset <= self.node.slot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched4() -> CommunicationSchedule {
        CommunicationSchedule::new(4, Nanos::from_millis_f64(2.5)).unwrap()
    }

    #[test]
    fn schedule_divides_round_into_slots() {
        let s = sched4();
        assert_eq!(s.n_nodes(), 4);
        assert_eq!(s.slot_length(), Nanos::from_micros(625));
        assert_eq!(s.slot_offset(SlotPosition(0)), Nanos::ZERO);
        assert_eq!(s.slot_offset(SlotPosition(3)), Nanos::from_micros(1875));
        assert_eq!(s.slots().count(), 4);
    }

    #[test]
    fn schedule_duration_conversions() {
        let s = sched4();
        assert_eq!(s.rounds_in(Nanos::from_millis(10)), 4);
        assert_eq!(s.rounds_in(Nanos::from_millis(9)), 3); // floor
        assert_eq!(s.slots_in(Nanos::from_millis_f64(2.5)), 4);
    }

    #[test]
    fn schedule_rejects_bad_configs() {
        assert!(CommunicationSchedule::new(1, Nanos::from_millis(1)).is_err());
        assert!(CommunicationSchedule::new(4, Nanos::ZERO).is_err());
        assert!(CommunicationSchedule::new(3, Nanos::from_nanos(100)).is_err());
    }

    #[test]
    fn slot_position_maps_to_sender() {
        assert_eq!(SlotPosition(0).sender(), NodeId::new(1));
        assert_eq!(SlotPosition(3).sender(), NodeId::new(4));
    }

    #[test]
    fn node_schedule_derives_l_and_send_curr_round() {
        // Node 3 (slot position 2) in a 4-node cluster.
        let n3 = NodeId::new(3);
        // Job at start of round: l = 0, completes before own slot.
        let s = NodeSchedule::new(n3, 0, 4).unwrap();
        assert_eq!(s.l(), 0);
        assert!(s.send_curr_round());
        // Job right before own slot: l = 2 (slots 0 and 1 seen), still sends
        // in the current round.
        let s = NodeSchedule::new(n3, 2, 4).unwrap();
        assert_eq!(s.l(), 2);
        assert!(s.send_curr_round());
        // Job after own slot: data waits for the next round.
        let s = NodeSchedule::new(n3, 3, 4).unwrap();
        assert!(!s.send_curr_round());
    }

    #[test]
    fn node_schedule_normalizes_end_of_round() {
        // Footnote 1: executing after the last slot of round k is the same
        // as executing at the start of round k+1 with l = 0.
        let s = NodeSchedule::new(NodeId::new(2), 4, 4).unwrap();
        assert_eq!(s.l(), 0);
        assert!(s.send_curr_round());
    }

    #[test]
    fn node_schedule_rejects_out_of_range_node() {
        assert!(NodeSchedule::new(NodeId::new(5), 0, 4).is_err());
    }
}
