//! Backpressure-aware live streaming of observability feeds.
//!
//! The batch observability layers ([`crate::metrics`], [`crate::tracing`])
//! record events in-process and dump them after the run. This module adds
//! the *live* counterpart used by `ttdiag serve`: a [`StreamHub`] fans an
//! event feed out to any number of concurrent subscribers, each with its
//! own **bounded ring buffer**, so that
//!
//! * a slow or dead subscriber can never stall the publisher or grow
//!   memory without bound — once its ring is full, the oldest undelivered
//!   frame is evicted and its per-subscriber drop counter incremented;
//! * every frame carries a feed-global monotone sequence number
//!   ([`Framed::seq`]), so any consumer can detect gaps in what it
//!   received (a keeping-up subscriber observes a gap-free stream, and a
//!   lagging subscriber's drop counter equals the seq gap it sees);
//! * with **zero subscribers** the publisher side is free: the streaming
//!   sinks answer [`MetricsSink::enabled`] / [`TraceSink::enabled`] with a
//!   single uncontended relaxed load (no lock, no read-modify-write, no
//!   allocation), so the `NoopSink` guarantee — 0 allocations per round on
//!   the simulation hot path — still holds for a serve-capable cluster
//!   with nobody watching. This is pinned by `tests/alloc_free.rs`.
//!
//! Three feed element types are streamed in practice: [`MetricsEvent`],
//! [`SpanEvent`], and the job-lifecycle [`ProgressEvent`] introduced here.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::{DeError, Deserialize, Serialize, Value};

use crate::metrics::{MetricsEvent, MetricsSink};
use crate::tracing::{SpanEvent, TraceSink};

// ---------------------------------------------------------------- framing

/// One frame of a serialized event stream: a feed-global monotone sequence
/// number plus the event itself.
///
/// The wire encoding is `{"seq": N, "event": {...}}`. Deserialization is
/// back-compatible with pre-framing streams (the `HostFingerprint` idiom):
/// a bare event value — no `seq`/`event` wrapper at all — still parses,
/// with `seq` defaulting to 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Framed<E> {
    /// Feed-global monotone sequence number, assigned at publish time.
    pub seq: u64,
    /// The framed event.
    pub event: E,
}

impl<E: Serialize> Serialize for Framed<E> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("event".to_string(), self.event.to_value()),
        ])
    }
}

impl<E: Deserialize> Deserialize for Framed<E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Some(map) = v.as_map() {
            if let Some(event) = Value::get_field(map, "event") {
                let seq = match Value::get_field(map, "seq") {
                    Some(s) => u64::from_value(s)?,
                    None => 0,
                };
                return Ok(Framed {
                    seq,
                    event: E::from_value(event)?,
                });
            }
        }
        // Back-compat: a stream written before framing existed carries the
        // bare event itself (and no event variant is named "event").
        Ok(Framed {
            seq: 0,
            event: E::from_value(v)?,
        })
    }
}

// --------------------------------------------------------- progress feed

/// A job-lifecycle event on the `progress` feed of `ttdiag serve`.
///
/// Unlike [`MetricsEvent`]/[`SpanEvent`] (emitted from inside simulated
/// clusters), progress events are emitted by the supervised executors in
/// `tt-bench`: per-chunk / per-cell completion counts, quarantine totals,
/// the checkpoint sequence number, and measured throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgressEvent {
    /// A job left the queue and started (or resumed) executing.
    JobStarted {
        /// Service-assigned job id.
        job: u64,
        /// Job kind label (`campaign`, `explore`, `tune-sweep`).
        kind: String,
        /// Total work items (experiments, schedules, or sweep cells).
        total: u64,
        /// Items already settled by a previous run of this job (resume).
        resumed_from: u64,
    },
    /// One work item settled (completed or quarantined) inside a chunk.
    Settled {
        /// Service-assigned job id.
        job: u64,
        /// Items settled so far, including quarantined ones.
        completed: u64,
        /// Total work items.
        total: u64,
        /// Items quarantined so far.
        quarantined: u64,
    },
    /// A chunk of work finished and a checkpoint was written.
    Chunk {
        /// Service-assigned job id.
        job: u64,
        /// Items settled so far, including quarantined ones.
        completed: u64,
        /// Total work items.
        total: u64,
        /// Items quarantined so far.
        quarantined: u64,
        /// Number of checkpoints written for this job so far.
        checkpoint_seq: u64,
        /// Items settled per second over this chunk (0.0 if unmeasured).
        items_per_sec: f64,
    },
    /// The job stopped early at a halt request; its checkpoint can resume.
    Halted {
        /// Service-assigned job id.
        job: u64,
        /// Items settled when the halt took effect.
        completed: u64,
        /// Number of checkpoints written for this job so far.
        checkpoint_seq: u64,
    },
    /// The job ran to completion (or failed terminally).
    JobFinished {
        /// Service-assigned job id.
        job: u64,
        /// Items settled in total.
        completed: u64,
        /// Total work items.
        total: u64,
        /// Items quarantined in total.
        quarantined: u64,
        /// Whether every item passed its oracle (quarantines count as
        /// failures here; a halted job is reported via [`ProgressEvent::Halted`]).
        passed: bool,
    },
}

impl ProgressEvent {
    /// A short stable label for the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ProgressEvent::JobStarted { .. } => "job_started",
            ProgressEvent::Settled { .. } => "settled",
            ProgressEvent::Chunk { .. } => "chunk",
            ProgressEvent::Halted { .. } => "halted",
            ProgressEvent::JobFinished { .. } => "job_finished",
        }
    }

    /// The job id the event belongs to.
    pub fn job(&self) -> u64 {
        match *self {
            ProgressEvent::JobStarted { job, .. }
            | ProgressEvent::Settled { job, .. }
            | ProgressEvent::Chunk { job, .. }
            | ProgressEvent::Halted { job, .. }
            | ProgressEvent::JobFinished { job, .. } => job,
        }
    }
}

// -------------------------------------------------------------- the hub

/// Per-subscriber delivery counters, reported over the wire when a feed
/// subscription ends (and exposed via [`Subscription::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SubscriberStats {
    /// Frames evicted because this subscriber's ring was full. For any
    /// subscriber this equals the total width of the seq gaps it observes.
    pub dropped: u64,
    /// Frames handed to the subscriber by `drain`/`recv_timeout`.
    pub delivered: u64,
    /// Frames currently buffered and not yet delivered (queue depth); by
    /// construction never exceeds `capacity`.
    pub lag: u64,
    /// The fixed ring capacity this subscriber was created with.
    pub capacity: u64,
}

struct SubscriberSlot<E> {
    id: u64,
    capacity: usize,
    ring: VecDeque<Framed<E>>,
    dropped: u64,
    delivered: u64,
}

struct HubInner<E> {
    next_seq: u64,
    next_id: u64,
    slots: Vec<SubscriberSlot<E>>,
}

/// A fan-out hub for one live event feed.
///
/// Publishers call [`StreamHub::publish`]; each [`Subscription`] owns a
/// bounded ring the hub copies frames into. See the module docs for the
/// backpressure contract. The hub is shared via `Arc`: sinks and the serve
/// loop each hold a clone.
pub struct StreamHub<E> {
    /// Subscriber count, readable without the lock. Relaxed is enough:
    /// the mutex orders every transition that matters, and the hot path
    /// only uses this as a cheap "is anyone watching" gate.
    subscribers: AtomicUsize,
    inner: Mutex<HubInner<E>>,
    wakeup: Condvar,
}

impl<E> Default for StreamHub<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for StreamHub<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamHub")
            .field("subscribers", &self.subscribers.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<E> StreamHub<E> {
    /// Creates an empty hub with no subscribers.
    pub fn new() -> Self {
        StreamHub {
            subscribers: AtomicUsize::new(0),
            inner: Mutex::new(HubInner {
                next_seq: 0,
                next_id: 0,
                slots: Vec::new(),
            }),
            wakeup: Condvar::new(),
        }
    }

    /// Whether at least one subscriber is attached. A single uncontended
    /// relaxed load — this is the entire hot-path cost of a streaming sink
    /// with nobody watching.
    #[inline]
    pub fn has_subscribers(&self) -> bool {
        self.subscribers.load(Ordering::Relaxed) != 0
    }

    /// The sequence number the next published frame will receive (equals
    /// the number of frames published so far).
    pub fn next_seq(&self) -> u64 {
        self.lock().next_seq
    }

    /// Attaches a new subscriber with a ring of `capacity` frames
    /// (clamped to at least 1).
    pub fn subscribe(self: &Arc<Self>, capacity: usize) -> Subscription<E> {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let capacity = capacity.max(1);
        inner.slots.push(SubscriberSlot {
            id,
            capacity,
            ring: VecDeque::with_capacity(capacity),
            dropped: 0,
            delivered: 0,
        });
        self.subscribers.fetch_add(1, Ordering::Relaxed);
        Subscription {
            hub: Arc::clone(self),
            id,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubInner<E>> {
        // Subscriber rings hold plain data; a panic while holding the lock
        // cannot leave them in a broken state, so poisoning is ignored.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<E: Clone> StreamHub<E> {
    /// Publishes one event to every attached subscriber, assigning it the
    /// next feed-global sequence number.
    ///
    /// With no subscribers this returns immediately (one relaxed load)
    /// without assigning a sequence number; publishers normally never even
    /// get here because the streaming sinks answer `enabled() == false`.
    /// A full subscriber ring evicts its oldest frame and bumps that
    /// subscriber's drop counter — publishing never blocks on consumers.
    pub fn publish(&self, event: E) {
        if !self.has_subscribers() {
            return;
        }
        let mut inner = self.lock();
        if inner.slots.is_empty() {
            return; // raced with the last unsubscribe; nothing to sequence
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        for slot in &mut inner.slots {
            if slot.ring.len() == slot.capacity {
                slot.ring.pop_front();
                slot.dropped += 1;
            }
            slot.ring.push_back(Framed {
                seq,
                event: event.clone(),
            });
        }
        drop(inner);
        self.wakeup.notify_all();
    }
}

/// One attached subscriber of a [`StreamHub`]. Dropping it detaches the
/// subscriber and frees its ring.
pub struct Subscription<E> {
    hub: Arc<StreamHub<E>>,
    id: u64,
}

impl<E> fmt::Debug for Subscription<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .finish()
    }
}

impl<E> Subscription<E> {
    /// Drains up to `max` buffered frames without blocking (pass
    /// `usize::MAX` for "everything buffered").
    pub fn drain(&self, max: usize) -> Vec<Framed<E>> {
        let mut inner = self.hub.lock();
        self.drain_slot(&mut inner, max)
    }

    /// Waits up to `timeout` for at least one frame, then drains up to
    /// `max`. Returns an empty vector on timeout.
    pub fn recv_timeout(&self, timeout: Duration, max: usize) -> Vec<Framed<E>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.hub.lock();
        loop {
            let drained = self.drain_slot(&mut inner, max);
            if !drained.is_empty() {
                return drained;
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Vec::new();
            };
            inner = match self.hub.wakeup.wait_timeout(inner, remaining) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// This subscriber's delivery counters.
    pub fn stats(&self) -> SubscriberStats {
        let inner = self.hub.lock();
        match inner.slots.iter().find(|s| s.id == self.id) {
            Some(slot) => SubscriberStats {
                dropped: slot.dropped,
                delivered: slot.delivered,
                lag: slot.ring.len() as u64,
                capacity: slot.capacity as u64,
            },
            None => SubscriberStats::default(),
        }
    }

    fn drain_slot(&self, inner: &mut HubInner<E>, max: usize) -> Vec<Framed<E>> {
        let Some(slot) = inner.slots.iter_mut().find(|s| s.id == self.id) else {
            return Vec::new();
        };
        let take = slot.ring.len().min(max);
        slot.delivered += take as u64;
        slot.ring.drain(..take).collect()
    }
}

impl<E> Drop for Subscription<E> {
    fn drop(&mut self) {
        let mut inner = self.hub.lock();
        if let Some(pos) = inner.slots.iter().position(|s| s.id == self.id) {
            inner.slots.swap_remove(pos);
            self.hub.subscribers.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

// ----------------------------------------------------------- sink adapters

/// A [`MetricsSink`] that publishes every emitted event to a
/// [`StreamHub`]`<MetricsEvent>`.
///
/// With zero subscribers, [`MetricsSink::enabled`] answers `false` from a
/// single relaxed load, so instrumented callers never construct events and
/// the hot path stays allocation-free (the `NoopSink` guarantee). Counter,
/// gauge and histogram hooks keep their no-op defaults: live feeds carry
/// the structured event stream only.
#[derive(Debug, Clone)]
pub struct StreamingSink {
    hub: Arc<StreamHub<MetricsEvent>>,
}

impl StreamingSink {
    /// Creates a sink publishing to `hub`.
    pub fn new(hub: Arc<StreamHub<MetricsEvent>>) -> Self {
        StreamingSink { hub }
    }

    /// The hub this sink publishes to.
    pub fn hub(&self) -> &Arc<StreamHub<MetricsEvent>> {
        &self.hub
    }
}

impl MetricsSink for StreamingSink {
    fn enabled(&self) -> bool {
        self.hub.has_subscribers()
    }

    fn emit(&self, event: &MetricsEvent) {
        self.hub.publish(event.clone());
    }
}

/// A [`TraceSink`] that publishes every span to a
/// [`StreamHub`]`<SpanEvent>`. Same zero-subscriber contract as
/// [`StreamingSink`].
#[derive(Debug, Clone)]
pub struct StreamingTraceSink {
    hub: Arc<StreamHub<SpanEvent>>,
}

impl StreamingTraceSink {
    /// Creates a sink publishing to `hub`.
    pub fn new(hub: Arc<StreamHub<SpanEvent>>) -> Self {
        StreamingTraceSink { hub }
    }

    /// The hub this sink publishes to.
    pub fn hub(&self) -> &Arc<StreamHub<SpanEvent>> {
        &self.hub
    }
}

impl TraceSink for StreamingTraceSink {
    fn enabled(&self) -> bool {
        self.hub.has_subscribers()
    }

    fn span(&self, span: &SpanEvent) {
        self.hub.publish(*span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_sequenced_and_gap_free_for_a_keeping_up_subscriber() {
        let hub = Arc::new(StreamHub::new());
        let sub = hub.subscribe(64);
        for i in 0..10u64 {
            hub.publish(i);
        }
        let frames = sub.drain(usize::MAX);
        assert_eq!(frames.len(), 10);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.event, i as u64);
        }
        let stats = sub.stats();
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.delivered, 10);
        assert_eq!(stats.lag, 0);
    }

    #[test]
    fn full_ring_evicts_oldest_and_counts_drops() {
        let hub = Arc::new(StreamHub::new());
        let sub = hub.subscribe(4);
        for i in 0..10u64 {
            hub.publish(i);
        }
        let stats = sub.stats();
        assert_eq!(stats.lag, 4);
        assert_eq!(stats.dropped, 6);
        let frames = sub.drain(usize::MAX);
        // The drop counter equals the seq gap the subscriber observes.
        assert_eq!(frames.first().map(|f| f.seq), Some(6));
        assert_eq!(
            frames.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn no_subscribers_means_no_sequencing_and_enabled_false() {
        let hub: Arc<StreamHub<MetricsEvent>> = Arc::new(StreamHub::new());
        let sink = StreamingSink::new(Arc::clone(&hub));
        assert!(!tt_metrics_enabled(&sink));
        hub.publish(MetricsEvent::RoundCompleted {
            round: crate::RoundIndex::new(1),
            wall_ns: 0,
        });
        assert_eq!(hub.next_seq(), 0);
        let _sub = hub.subscribe(8);
        assert!(tt_metrics_enabled(&sink));
    }

    fn tt_metrics_enabled(sink: &dyn MetricsSink) -> bool {
        sink.enabled()
    }

    #[test]
    fn dropping_a_subscription_detaches_it() {
        let hub = Arc::new(StreamHub::new());
        let sub = hub.subscribe(4);
        assert!(hub.has_subscribers());
        drop(sub);
        assert!(!hub.has_subscribers());
        hub.publish(7u64); // must not panic or sequence
        assert_eq!(hub.next_seq(), 0);
    }

    #[test]
    fn framed_roundtrip_and_bare_backcompat() {
        let framed = Framed {
            seq: 41,
            event: 9u64,
        };
        let json = serde_json::to_string(&framed).unwrap();
        assert_eq!(json, "{\"seq\":41,\"event\":9}");
        let back: Framed<u64> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, framed);
        // A pre-framing stream entry is the bare event.
        let bare: Framed<u64> = serde_json::from_str("9").unwrap();
        assert_eq!(bare, Framed { seq: 0, event: 9 });
    }

    #[test]
    fn recv_timeout_returns_published_frames_or_empty() {
        let hub = Arc::new(StreamHub::new());
        let sub = hub.subscribe(4);
        assert!(sub.recv_timeout(Duration::from_millis(5), 8).is_empty());
        let publisher = Arc::clone(&hub);
        let t = std::thread::spawn(move || publisher.publish(3u64));
        let frames = sub.recv_timeout(Duration::from_secs(5), 8);
        t.join().unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].event, 3);
    }

    #[test]
    fn progress_event_accessors_and_roundtrip() {
        let e = ProgressEvent::Chunk {
            job: 3,
            completed: 10,
            total: 20,
            quarantined: 1,
            checkpoint_seq: 2,
            items_per_sec: 12.5,
        };
        assert_eq!(e.kind(), "chunk");
        assert_eq!(e.job(), 3);
        let json = serde_json::to_string(&e).unwrap();
        let back: ProgressEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
