//! Replicated (multi-channel) broadcast buses.
//!
//! The paper's system model allows "a shared (and possibly replicated)
//! communication bus", and its prototype ran on a *redundant* TT network
//! (layered TTP). [`ReplicatedBus`] models `K` physical channels carrying
//! every transmission simultaneously, each with its own independent
//! [`FaultPipeline`]. A receiver accepts the frame from the lowest-indexed
//! channel on which it passed local error detection; only a slot corrupted
//! on *every* channel is locally detected as faulty.
//!
//! The sender's collision detector succeeds if its frame was readable on at
//! least one channel.

use bytes::Bytes;

use crate::bus::{
    classify_receptions, FaultPipeline, Reception, SlotEffect, SlotOutcome, TxCtx, TxOutcome,
};

/// A bus replicated over `K >= 1` independently failing channels.
///
/// ```
/// use tt_sim::{ClusterBuilder, NodeId, ReplicatedBus, RoundIndex, SlotEffect, TraceMode, TxCtx};
///
/// // Channel A is hit by a disturbance in round 3; channel B is healthy.
/// let channel_a = |ctx: &TxCtx| {
///     if ctx.round == RoundIndex::new(3) {
///         SlotEffect::Benign
///     } else {
///         SlotEffect::Correct
///     }
/// };
/// let bus = ReplicatedBus::new(vec![Box::new(channel_a), Box::new(tt_sim::NoFaults)]);
/// let mut cluster = ClusterBuilder::new(4)
///     .trace_mode(TraceMode::Anomalies)
///     .build(Box::new(bus))?;
/// cluster.run_rounds(6);
/// // The redundancy masks the single-channel disturbance completely.
/// assert!(cluster.trace().records().is_empty());
/// # Ok::<(), tt_sim::SimError>(())
/// ```
pub struct ReplicatedBus {
    channels: Vec<Box<dyn FaultPipeline>>,
    /// One reusable outcome buffer per channel, so per-receiver merging in
    /// [`FaultPipeline::transmit_into`] allocates nothing in steady state.
    scratch: Vec<SlotOutcome>,
}

impl std::fmt::Debug for ReplicatedBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedBus")
            .field("channels", &self.channels.len())
            .finish()
    }
}

impl ReplicatedBus {
    /// Creates a bus from per-channel pipelines.
    ///
    /// # Panics
    ///
    /// Panics if no channel is given.
    pub fn new(channels: Vec<Box<dyn FaultPipeline>>) -> Self {
        assert!(!channels.is_empty(), "a bus needs at least one channel");
        let scratch = channels.iter().map(|_| SlotOutcome::new()).collect();
        ReplicatedBus { channels, scratch }
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }
}

impl FaultPipeline for ReplicatedBus {
    /// Effect-level merge, used only if a caller bypasses
    /// [`FaultPipeline::transmit`]; per-receiver resolution happens there.
    fn effect(&mut self, ctx: &TxCtx) -> SlotEffect {
        let effects: Vec<SlotEffect> = self.channels.iter_mut().map(|c| c.effect(ctx)).collect();
        // A receiver is blind only where every channel failed for it.
        let mut merged: Option<SlotEffect> = None;
        for e in effects {
            merged = Some(match (merged, e) {
                (None, e) => e,
                (Some(SlotEffect::Correct), _) => SlotEffect::Correct,
                (Some(a), SlotEffect::Benign) => a,
                (Some(SlotEffect::Benign), e) => e,
                (Some(SlotEffect::SymmetricMalicious { payload }), _) => {
                    // Receivers already accepted channel A's (wrong) frame.
                    SlotEffect::SymmetricMalicious { payload }
                }
                (
                    Some(SlotEffect::Asymmetric {
                        detected_by: d1,
                        collision_ok: c1,
                    }),
                    e2,
                ) => {
                    match e2 {
                        SlotEffect::Correct | SlotEffect::SymmetricMalicious { .. } => {
                            // Blind receivers fall back to channel B.
                            SlotEffect::Correct
                        }
                        SlotEffect::Benign => SlotEffect::Asymmetric {
                            detected_by: d1,
                            collision_ok: c1,
                        },
                        SlotEffect::Asymmetric {
                            detected_by: d2,
                            collision_ok: c2,
                        } => SlotEffect::Asymmetric {
                            detected_by: d1.iter().copied().filter(|r| d2.contains(r)).collect(),
                            collision_ok: c1 || c2,
                        },
                    }
                }
            });
        }
        merged.expect("at least one channel")
    }

    /// Per-receiver merge: the lowest-indexed channel delivering a valid
    /// frame wins; detection requires all channels to fail.
    fn transmit(&mut self, ctx: &TxCtx, payload: &Bytes) -> TxOutcome {
        let mut out = SlotOutcome::with_capacity(ctx.n_nodes);
        self.transmit_into(ctx, payload, &mut out);
        out.into_outcome()
    }

    /// Same per-receiver merge, filling `out` in place: each channel fills
    /// its own reusable scratch buffer, then the merge clones only
    /// reference-counted payload handles.
    fn transmit_into(&mut self, ctx: &TxCtx, payload: &Bytes, out: &mut SlotOutcome) {
        for (channel, scratch) in self.channels.iter_mut().zip(self.scratch.iter_mut()) {
            channel.transmit_into(ctx, payload, scratch);
        }
        let scratch = &self.scratch;
        out.receptions.clear();
        out.receptions.extend((0..ctx.n_nodes).map(|rx| {
            scratch
                .iter()
                .find_map(|o| match &o.receptions[rx] {
                    Reception::Valid(p) => Some(Reception::Valid(p.clone())),
                    Reception::Detected => None,
                })
                .unwrap_or(Reception::Detected)
        }));
        out.collision_ok = scratch.iter().any(|o| o.collision_ok);
        out.class = classify_receptions(&out.receptions, payload, ctx.sender);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{NoFaults, SlotFaultClass};
    use crate::time::{NodeId, RoundIndex};

    fn ctx() -> TxCtx {
        TxCtx {
            round: RoundIndex::new(3),
            sender: NodeId::new(2),
            n_nodes: 4,
            abs_slot: 13,
        }
    }

    fn benign_channel() -> Box<dyn FaultPipeline> {
        Box::new(|_: &TxCtx| SlotEffect::Benign)
    }

    fn healthy_channel() -> Box<dyn FaultPipeline> {
        Box::new(NoFaults)
    }

    #[test]
    fn single_channel_failure_is_masked() {
        let mut bus = ReplicatedBus::new(vec![benign_channel(), healthy_channel()]);
        let out = bus.transmit(&ctx(), &Bytes::from_static(b"\x0f"));
        assert_eq!(out.class, SlotFaultClass::Correct);
        assert!(out.collision_ok);
        assert!(out.receptions.iter().all(Reception::is_valid));
    }

    #[test]
    fn slot_fails_only_when_all_channels_fail() {
        let mut bus = ReplicatedBus::new(vec![benign_channel(), benign_channel()]);
        let out = bus.transmit(&ctx(), &Bytes::from_static(b"\x0f"));
        assert_eq!(out.class, SlotFaultClass::Benign);
        assert!(!out.collision_ok);
    }

    #[test]
    fn asymmetric_faults_intersect_across_channels() {
        // Receiver 0 blind on channel A, receivers 0 and 3 blind on B:
        // only receiver 0 is blind on both.
        let a = |_: &TxCtx| SlotEffect::Asymmetric {
            detected_by: vec![0],
            collision_ok: true,
        };
        let b = |_: &TxCtx| SlotEffect::Asymmetric {
            detected_by: vec![0, 3],
            collision_ok: true,
        };
        let mut bus = ReplicatedBus::new(vec![Box::new(a), Box::new(b)]);
        let out = bus.transmit(&ctx(), &Bytes::from_static(b"\x05"));
        assert_eq!(out.receptions[0], Reception::Detected);
        assert!(out.receptions[3].is_valid());
        assert_eq!(out.class, SlotFaultClass::Asymmetric);
    }

    #[test]
    fn cross_channel_malicious_is_resolved_per_receiver() {
        // Channel A delivers a corrupted-but-valid frame; channel B is
        // healthy. Receivers accept channel A (lowest index): the fault
        // stays symmetric malicious — redundancy does not help against
        // undetectable corruption.
        let a = |_: &TxCtx| SlotEffect::SymmetricMalicious {
            payload: Bytes::from_static(b"\xff"),
        };
        let mut bus = ReplicatedBus::new(vec![Box::new(a), healthy_channel()]);
        let out = bus.transmit(&ctx(), &Bytes::from_static(b"\x00"));
        assert_eq!(out.class, SlotFaultClass::SymmetricMalicious);
        assert!(out
            .receptions
            .iter()
            .all(|r| *r == Reception::Valid(Bytes::from_static(b"\xff"))));
    }

    #[test]
    fn asymmetric_plus_malicious_creates_mixed_receptions() {
        // The case a single SlotEffect cannot express: receiver 0 detects
        // channel A and falls back to channel B's corrupted frame, the
        // rest accept channel A's true frame. The per-receiver merge
        // represents it exactly, classified as asymmetric.
        let a = |_: &TxCtx| SlotEffect::Asymmetric {
            detected_by: vec![0],
            collision_ok: true,
        };
        let b = |_: &TxCtx| SlotEffect::SymmetricMalicious {
            payload: Bytes::from_static(b"\xee"),
        };
        let mut bus = ReplicatedBus::new(vec![Box::new(a), Box::new(b)]);
        let true_payload = Bytes::from_static(b"\x11");
        let out = bus.transmit(&ctx(), &true_payload);
        assert_eq!(
            out.receptions[0],
            Reception::Valid(Bytes::from_static(b"\xee"))
        );
        assert_eq!(out.receptions[1], Reception::Valid(true_payload.clone()));
        // Exact class: some receivers hold a wrong frame, none detected a
        // fault -> the outcome classifier reports undetectable corruption.
        assert_eq!(out.class, SlotFaultClass::SymmetricMalicious);
    }

    #[test]
    fn effect_level_merge_matches_common_cases() {
        let mut bus = ReplicatedBus::new(vec![benign_channel(), healthy_channel()]);
        assert_eq!(bus.effect(&ctx()), SlotEffect::Correct);
        let mut bus = ReplicatedBus::new(vec![benign_channel(), benign_channel()]);
        assert_eq!(bus.effect(&ctx()), SlotEffect::Benign);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_bus_rejected() {
        let _ = ReplicatedBus::new(vec![]);
    }
}
