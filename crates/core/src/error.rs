//! Error type of the protocol crate.

use std::error::Error;
use std::fmt;

/// Errors returned by protocol configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A configuration parameter was invalid (message explains which).
    InvalidConfig(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidConfig(msg) => write!(f, "invalid protocol config: {msg}"),
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::InvalidConfig("penalty threshold is zero".into());
        assert!(e.to_string().contains("penalty threshold"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
