//! Protocol configuration: thresholds, criticalities, schedule knowledge.

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::penalty::ReintegrationPolicy;

/// Configuration shared by all instances of the diagnostic protocol.
///
/// Built with [`ProtocolConfig::builder`]; the defaults reproduce the
/// paper's automotive prototype (Table 2): `P = 197`, `R = 10^6`, equal
/// criticality 1 for every node, conservative send alignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    n_nodes: usize,
    penalty_threshold: u64,
    reward_threshold: u64,
    criticalities: Vec<u64>,
    all_send_curr_round: bool,
    reintegration: ReintegrationPolicy,
}

impl ProtocolConfig {
    /// Starts building a configuration for an `n`-node cluster.
    pub fn builder(n_nodes: usize) -> ProtocolConfigBuilder {
        ProtocolConfigBuilder {
            n_nodes,
            penalty_threshold: 197,
            reward_threshold: 1_000_000,
            criticalities: vec![1; n_nodes],
            all_send_curr_round: false,
            reintegration: ReintegrationPolicy::Never,
        }
    }

    /// Cluster size `N`.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The penalty threshold `P`: a node is isolated once its penalty
    /// counter *exceeds* `P` (Alg. 2).
    pub fn penalty_threshold(&self) -> u64 {
        self.penalty_threshold
    }

    /// The reward threshold `R`: after `R` consecutive fault-free rounds a
    /// node's counters are reset (Alg. 2).
    pub fn reward_threshold(&self) -> u64 {
        self.reward_threshold
    }

    /// Per-node criticality levels `s_i` (penalty increment per detected
    /// fault). Index = node index.
    pub fn criticalities(&self) -> &[u64] {
        &self.criticalities
    }

    /// Whether the global predicate `∀j: send_curr_round_j` holds (known at
    /// design time for static schedules; line 7 of Alg. 1). When true the
    /// diagnosis lag shrinks from 3 to 2 rounds.
    pub fn all_send_curr_round(&self) -> bool {
        self.all_send_curr_round
    }

    /// The reintegration policy extension (paper Sec. 9, closing remark).
    pub fn reintegration(&self) -> ReintegrationPolicy {
        self.reintegration
    }

    /// The diagnosis lag in rounds: a fault in round `k` is voted on in
    /// round `k + 2` when every node disseminates in the fault round
    /// itself, `k + 3` under conservative send alignment (Sec. 5).
    pub fn diagnosis_lag(&self) -> u64 {
        if self.all_send_curr_round {
            2
        } else {
            3
        }
    }

    /// The worst-case number of rounds between a previously isolated node
    /// turning healthy again and every observer readmitting it: the
    /// reward streak demanded by [`ReintegrationPolicy::AfterRewards`]
    /// plus the diagnosis lag. `None` when reintegration is disabled.
    pub fn reintegration_bound(&self) -> Option<u64> {
        match self.reintegration {
            ReintegrationPolicy::Never => None,
            ReintegrationPolicy::AfterRewards(t) => Some(t + self.diagnosis_lag()),
        }
    }
}

/// Builder for [`ProtocolConfig`].
#[derive(Debug, Clone)]
pub struct ProtocolConfigBuilder {
    n_nodes: usize,
    penalty_threshold: u64,
    reward_threshold: u64,
    criticalities: Vec<u64>,
    all_send_curr_round: bool,
    reintegration: ReintegrationPolicy,
}

impl ProtocolConfigBuilder {
    /// Sets the penalty threshold `P`.
    pub fn penalty_threshold(mut self, p: u64) -> Self {
        self.penalty_threshold = p;
        self
    }

    /// Sets the reward threshold `R`.
    pub fn reward_threshold(mut self, r: u64) -> Self {
        self.reward_threshold = r;
        self
    }

    /// Sets one criticality level for every node.
    pub fn uniform_criticality(mut self, s: u64) -> Self {
        self.criticalities = vec![s; self.n_nodes];
        self
    }

    /// Sets per-node criticality levels (index = node index).
    pub fn criticalities(mut self, s: Vec<u64>) -> Self {
        self.criticalities = s;
        self
    }

    /// Declares that every node's diagnostic job completes before its own
    /// sending slot (reduces the diagnosis lag to 2 rounds).
    pub fn all_send_curr_round(mut self, yes: bool) -> Self {
        self.all_send_curr_round = yes;
        self
    }

    /// Enables the reintegration extension.
    pub fn reintegration(mut self, policy: ReintegrationPolicy) -> Self {
        self.reintegration = policy;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] if `N < 2`, a threshold is
    /// zero, the criticality vector length mismatches `N`, or any
    /// criticality is zero (a zero increment would never isolate).
    pub fn build(self) -> Result<ProtocolConfig, ProtocolError> {
        if self.n_nodes < 2 {
            return Err(ProtocolError::InvalidConfig(format!(
                "need at least 2 nodes, got {}",
                self.n_nodes
            )));
        }
        if self.penalty_threshold == 0 {
            return Err(ProtocolError::InvalidConfig(
                "penalty threshold is zero".into(),
            ));
        }
        if self.reward_threshold == 0 {
            return Err(ProtocolError::InvalidConfig(
                "reward threshold is zero".into(),
            ));
        }
        if self.criticalities.len() != self.n_nodes {
            return Err(ProtocolError::InvalidConfig(format!(
                "{} criticalities for {} nodes",
                self.criticalities.len(),
                self.n_nodes
            )));
        }
        if self.criticalities.contains(&0) {
            return Err(ProtocolError::InvalidConfig(
                "criticality levels must be >= 1".into(),
            ));
        }
        Ok(ProtocolConfig {
            n_nodes: self.n_nodes,
            penalty_threshold: self.penalty_threshold,
            reward_threshold: self.reward_threshold,
            criticalities: self.criticalities,
            all_send_curr_round: self.all_send_curr_round,
            reintegration: self.reintegration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_automotive_setup() {
        let c = ProtocolConfig::builder(4).build().unwrap();
        assert_eq!(c.n_nodes(), 4);
        assert_eq!(c.penalty_threshold(), 197);
        assert_eq!(c.reward_threshold(), 1_000_000);
        assert_eq!(c.criticalities(), &[1, 1, 1, 1]);
        assert!(!c.all_send_curr_round());
        assert_eq!(c.reintegration(), ReintegrationPolicy::Never);
    }

    #[test]
    fn builder_sets_all_fields() {
        let c = ProtocolConfig::builder(4)
            .penalty_threshold(17)
            .reward_threshold(100)
            .criticalities(vec![40, 6, 1, 1])
            .all_send_curr_round(true)
            .reintegration(ReintegrationPolicy::AfterRewards(50))
            .build()
            .unwrap();
        assert_eq!(c.penalty_threshold(), 17);
        assert_eq!(c.reward_threshold(), 100);
        assert_eq!(c.criticalities(), &[40, 6, 1, 1]);
        assert!(c.all_send_curr_round());
        assert_eq!(c.reintegration(), ReintegrationPolicy::AfterRewards(50));
    }

    #[test]
    fn builder_rejects_invalid() {
        assert!(ProtocolConfig::builder(1).build().is_err());
        assert!(ProtocolConfig::builder(4)
            .penalty_threshold(0)
            .build()
            .is_err());
        assert!(ProtocolConfig::builder(4)
            .reward_threshold(0)
            .build()
            .is_err());
        assert!(ProtocolConfig::builder(4)
            .criticalities(vec![1, 2])
            .build()
            .is_err());
        assert!(ProtocolConfig::builder(4)
            .criticalities(vec![1, 2, 0, 4])
            .build()
            .is_err());
    }

    #[test]
    fn uniform_criticality_covers_all_nodes() {
        let c = ProtocolConfig::builder(6)
            .uniform_criticality(6)
            .build()
            .unwrap();
        assert_eq!(c.criticalities(), &[6; 6]);
    }
}
