//! Shared per-activation pipeline state: the buffering that read and send
//! alignment require (Alg. 1, lines 16–17), plus the node's local record of
//! the syndromes it disseminated.
//!
//! Both the diagnostic protocol ([`crate::DiagJob`]) and the membership
//! variant ([`crate::MembershipJob`]) drive this state machine; they differ
//! only in phase ordering and in the minority accusations added before
//! dissemination.

use std::collections::VecDeque;
use std::mem;

use bytes::Bytes;
use tt_sim::{JobCtx, RoundIndex};

use crate::alignment::{send_align, SendChoice};
use crate::syndrome::{Syndrome, SyndromeRow};

/// How many disseminated syndromes are remembered (the analysis needs only
/// the one transmitted in round `k - 1`; we keep a margin).
const OWN_TX_HISTORY: usize = 8;

/// The aligned view produced by phases 1 & 3 of one activation.
#[derive(Debug, Clone)]
pub struct Aligned {
    /// Aligned diagnostic-matrix rows (all sent in round `k - 1`).
    pub al_dm: Vec<SyndromeRow>,
    /// Aligned local syndrome (local detection for round `k - 1`).
    pub al_ls: Syndrome,
    /// Unaligned rows read this activation (buffered for next time).
    pub curr_dm: Vec<SyndromeRow>,
    /// Unaligned validity bits read this activation.
    pub curr_ls: Vec<bool>,
}

impl Aligned {
    /// Number of ε rows in the aligned diagnostic matrix (syndromes whose
    /// carrying message was invalid or never received).
    pub fn epsilon_rows(&self) -> u64 {
        self.al_dm.iter().filter(|r| r.is_none()).count() as u64
    }
}

/// Alignment buffers of one protocol instance.
#[derive(Debug, Clone)]
pub struct AlignmentBuffers {
    n: usize,
    prev_dm: Vec<SyndromeRow>,
    prev_ls: Vec<bool>,
    prev_al_ls: Syndrome,
    own_tx: VecDeque<(RoundIndex, Syndrome)>,
    /// Recycled backing storage for the next activation's [`Aligned`]:
    /// [`AlignmentBuffers::commit`] returns the consumed vectors here so
    /// steady-state rounds never touch the allocator.
    spare_dm: Vec<SyndromeRow>,
    spare_ls: Vec<bool>,
    spare_al: Vec<SyndromeRow>,
    /// Wire encoding of the last disseminated syndrome. In steady state the
    /// outgoing syndrome rarely changes, so the payload `Bytes` is reused
    /// (a reference-count bump) instead of re-encoded.
    tx_cache: Option<(Syndrome, Bytes)>,
}

impl AlignmentBuffers {
    /// Fresh buffers for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        AlignmentBuffers {
            n,
            prev_dm: vec![None; n],
            prev_ls: vec![false; n],
            prev_al_ls: Syndrome::all_ok(n),
            own_tx: VecDeque::with_capacity(OWN_TX_HISTORY),
            spare_dm: Vec::with_capacity(n),
            spare_ls: Vec::with_capacity(n),
            spare_al: Vec::with_capacity(n),
            tx_cache: None,
        }
    }

    /// Phases 1 & 3: read interface variables and validity bits, decode
    /// syndromes (ε for invalid rows) and apply read alignment.
    ///
    /// The returned [`Aligned`] borrows nothing but is backed by this
    /// instance's recycled scratch vectors; hand it back via
    /// [`AlignmentBuffers::commit`] to keep the round allocation-free.
    pub fn read_and_align(&mut self, ctx: &JobCtx<'_>) -> Aligned {
        let iface = ctx.iface();
        let vbits = ctx.validity();
        let l = ctx.l();
        let mut curr_dm = mem::take(&mut self.spare_dm);
        curr_dm.clear();
        curr_dm.extend((0..self.n).map(|j| {
            if vbits[j] {
                iface[j].as_ref().map(|p| Syndrome::decode(p, self.n))
            } else {
                None
            }
        }));
        let mut curr_ls = mem::take(&mut self.spare_ls);
        curr_ls.clear();
        curr_ls.extend_from_slice(vbits);
        // Read alignment (Alg. 1, lines 3–6): previous-activation values for
        // the slots already refreshed this round, current values for the rest.
        let mut al_dm = mem::take(&mut self.spare_al);
        al_dm.clear();
        al_dm.extend_from_slice(&self.prev_dm[..l]);
        al_dm.extend_from_slice(&curr_dm[l..]);
        let al_ls =
            Syndrome::from_bits(
                (0..self.n).map(|j| if j < l { self.prev_ls[j] } else { curr_ls[j] }),
            );
        Aligned {
            al_dm,
            al_ls,
            curr_dm,
            curr_ls,
        }
    }

    /// Phase 2: applies send alignment, writes the chosen syndrome to the
    /// outgoing interface variable and remembers it under its transmission
    /// round. `mutate` lets the caller add minority accusations to the
    /// outgoing syndrome (membership variant) after the choice is made.
    ///
    /// Returns the round whose sending slot carries the syndrome on the bus
    /// (observability consumers stamp dissemination events with it).
    pub fn disseminate(
        &mut self,
        ctx: &mut JobCtx<'_>,
        all_send_curr_round: bool,
        al_ls: &Syndrome,
        mutate: impl FnOnce(&mut Syndrome),
    ) -> RoundIndex {
        let choice = send_align(all_send_curr_round, ctx.send_curr_round());
        let mut to_send = match choice {
            SendChoice::Current => *al_ls,
            SendChoice::Previous => self.prev_al_ls,
        };
        mutate(&mut to_send);
        let payload = match &self.tx_cache {
            Some((cached, bytes)) if *cached == to_send => bytes.clone(),
            _ => {
                let bytes = to_send.encode();
                self.tx_cache = Some((to_send, bytes.clone()));
                bytes
            }
        };
        ctx.write_iface(payload);
        let tx_round = if ctx.send_curr_round() {
            ctx.round()
        } else {
            ctx.round().next()
        };
        if self.own_tx.len() >= OWN_TX_HISTORY {
            self.own_tx.pop_front();
        }
        self.own_tx.push_back((tx_round, to_send));
        tx_round
    }

    /// The syndrome this node put (or attempted to put) on the bus in
    /// `round`. Locally known regardless of bus faults — the basis of
    /// Lemma 3's blackout argument.
    pub fn own_row_for_tx_round(&self, round: RoundIndex) -> Option<Syndrome> {
        self.own_tx
            .iter()
            .rev()
            .find(|(r, _)| *r == round)
            .map(|(_, s)| *s)
    }

    /// Lines 16–17 of Alg. 1: buffer this activation's reads for the next.
    /// The vectors backing `aligned` return to the scratch pool.
    pub fn commit(&mut self, aligned: Aligned) {
        self.spare_dm = mem::replace(&mut self.prev_dm, aligned.curr_dm);
        self.spare_ls = mem::replace(&mut self.prev_ls, aligned.curr_ls);
        self.spare_al = aligned.al_dm;
        self.prev_al_ls = aligned.al_ls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sim::{Controller, NodeId, NodeSchedule, Reception};

    fn ctx_for<'a>(
        controller: &'a mut Controller,
        node: NodeId,
        offset: usize,
        round: u64,
    ) -> JobCtx<'a> {
        let sched = NodeSchedule::new(node, offset, 4).unwrap();
        JobCtx::new(controller, sched, RoundIndex::new(round))
    }

    #[test]
    fn read_and_align_marks_invalid_rows_epsilon() {
        let node = NodeId::new(1);
        let mut c = Controller::new(node, 4);
        let s = Syndrome::all_ok(4);
        c.deliver(
            NodeId::new(2),
            RoundIndex::new(0),
            Reception::Valid(s.encode()),
        );
        c.deliver(NodeId::new(3), RoundIndex::new(0), Reception::Detected);
        let mut bufs = AlignmentBuffers::new(4);
        let ctx = ctx_for(&mut c, node, 0, 1);
        let aligned = bufs.read_and_align(&ctx);
        assert_eq!(aligned.al_dm[1], Some(s));
        assert_eq!(aligned.al_dm[2], None, "invalid row is ε");
        assert!(!aligned.al_ls.get(2));
        assert!(aligned.al_ls.get(1));
    }

    #[test]
    fn disseminate_records_tx_round_by_send_predicate() {
        let node = NodeId::new(1); // slot 0
        let mut c = Controller::new(node, 4);
        let mut bufs = AlignmentBuffers::new(4);
        let al = Syndrome::all_ok(4);
        // offset 2 > slot 0: cannot send this round -> tx next round.
        {
            let mut ctx = ctx_for(&mut c, node, 2, 5);
            let tx = bufs.disseminate(&mut ctx, false, &al, |_| {});
            assert_eq!(tx, RoundIndex::new(6), "returned tx round");
        }
        assert!(bufs.own_row_for_tx_round(RoundIndex::new(5)).is_none());
        assert_eq!(bufs.own_row_for_tx_round(RoundIndex::new(6)), Some(al));
        // offset 0 <= slot 0: sends this round. With mixed alignment the
        // *previous* aligned syndrome ships.
        let node4 = NodeId::new(4);
        let mut c4 = Controller::new(node4, 4);
        let mut bufs4 = AlignmentBuffers::new(4);
        {
            let mut ctx = ctx_for(&mut c4, node4, 0, 5);
            bufs4.disseminate(&mut ctx, false, &al, |_| {});
        }
        assert_eq!(
            bufs4.own_row_for_tx_round(RoundIndex::new(5)),
            Some(Syndrome::all_ok(4)), // initial prev_al_ls
        );
    }

    #[test]
    fn mutate_hook_applies_accusations_to_outgoing() {
        let node = NodeId::new(2);
        let mut c = Controller::new(node, 4);
        let mut bufs = AlignmentBuffers::new(4);
        let al = Syndrome::all_ok(4);
        let mut ctx = ctx_for(&mut c, node, 0, 3);
        bufs.disseminate(&mut ctx, true, &al, |s| s.set(NodeId::new(4), false));
        let _ = ctx;
        let sent = bufs.own_row_for_tx_round(RoundIndex::new(3)).unwrap();
        assert_eq!(sent.accused(), vec![NodeId::new(4)]);
        assert_eq!(c.tx_payload(), sent.encode());
    }

    #[test]
    fn tx_history_is_bounded() {
        let node = NodeId::new(1);
        let mut c = Controller::new(node, 4);
        let mut bufs = AlignmentBuffers::new(4);
        let al = Syndrome::all_ok(4);
        for r in 0..20u64 {
            let mut ctx = ctx_for(&mut c, node, 0, r);
            bufs.disseminate(&mut ctx, true, &al, |_| {});
        }
        assert!(bufs.own_row_for_tx_round(RoundIndex::new(0)).is_none());
        assert!(bufs.own_row_for_tx_round(RoundIndex::new(19)).is_some());
    }

    #[test]
    fn commit_rotates_buffers() {
        let node = NodeId::new(1);
        let mut c = Controller::new(node, 4);
        let mut accused = Syndrome::all_ok(4);
        accused.set(NodeId::new(2), false);
        c.deliver(
            NodeId::new(2),
            RoundIndex::new(0),
            Reception::Valid(accused.encode()),
        );
        let mut bufs = AlignmentBuffers::new(4);
        let aligned = {
            let ctx = ctx_for(&mut c, node, 0, 1);
            bufs.read_and_align(&ctx)
        };
        bufs.commit(aligned);
        // Next activation with l = 4 is impossible (l < N), but l = 3 uses
        // prev for the first three positions.
        let ctx = ctx_for(&mut c, node, 3, 2);
        let aligned2 = bufs.read_and_align(&ctx);
        assert_eq!(aligned2.al_dm[1], Some(accused));
    }
}
