//! The membership protocol (paper Sec. 7).
//!
//! A modified diagnostic protocol that also detects the **cliques** formed
//! by asymmetric faults. The analysis phase runs *before* dissemination;
//! after the consistent health vector is computed, the node adds **minority
//! accusations** against every node whose received local syndrome disagrees
//! with the consistent decision. Members of a minority clique — nodes whose
//! local view diverges from the majority — are thereby consistently accused
//! and diagnosed as faulty within the next execution (Theorem 2), after
//! which a new **membership view** excluding them is formed.
//!
//! The view maintained here is the paper's: "all nodes never deemed as
//! faulty"; the service guarantees *membership liveness* (a new unique view
//! within two executions of a locally detectable faulty message) and *view
//! synchrony* (surviving members received the same messages).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use tt_sim::{Job, JobCtx, MetricsEvent, NodeId, RoundIndex};

use crate::alignment::diagnosis_lag;
use crate::config::ProtocolConfig;
use crate::matrix::DiagnosticMatrix;
use crate::penalty::{PenaltyReward, ReintegrationPolicy};
use crate::pipeline::AlignmentBuffers;
use crate::protocol::{
    emit_detection_spans, emit_dissemination_spans, emit_pr_transition, emit_vote_spans,
    emit_vote_tallies, span_for_transition, HealthRecord, IsolationEvent,
};
use crate::syndrome::{Syndrome, SyndromeRow};

/// A membership view: the agreed set of participating nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipView {
    /// Monotonic view number (view 0 is the initial full membership).
    pub view_id: u64,
    /// The surviving members, in node order.
    pub members: Vec<NodeId>,
    /// The round whose activation installed this view.
    pub installed_at: RoundIndex,
    /// The diagnosed round whose verdict triggered the view change
    /// (`installed_at` for the initial view).
    pub diagnosed: RoundIndex,
}

impl MembershipView {
    /// Whether `node` belongs to this view.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }
}

/// The membership job: Alg. 1 with analysis-before-dissemination and
/// minority accusations.
#[derive(Debug, Clone)]
pub struct MembershipJob {
    node: NodeId,
    config: ProtocolConfig,
    pr: PenaltyReward,
    bufs: AlignmentBuffers,
    members: BTreeSet<NodeId>,
    views: Vec<MembershipView>,
    health_log: Vec<HealthRecord>,
    isolations: Vec<IsolationEvent>,
    accusation_log: Vec<(RoundIndex, NodeId)>,
    activations: u64,
}

impl MembershipJob {
    /// Creates the membership job for `node`.
    pub fn new(node: NodeId, config: ProtocolConfig) -> Self {
        let n = config.n_nodes();
        let members: BTreeSet<NodeId> = NodeId::all(n).collect();
        MembershipJob {
            node,
            pr: PenaltyReward::new(
                n,
                config.criticalities().to_vec(),
                config.penalty_threshold(),
                config.reward_threshold(),
                config.reintegration(),
            ),
            bufs: AlignmentBuffers::new(n),
            views: vec![MembershipView {
                view_id: 0,
                members: members.iter().copied().collect(),
                installed_at: RoundIndex::ZERO,
                diagnosed: RoundIndex::ZERO,
            }],
            members,
            health_log: Vec::new(),
            isolations: Vec::new(),
            accusation_log: Vec::new(),
            activations: 0,
            config,
        }
    }

    /// The hosting node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The currently installed view.
    pub fn current_view(&self) -> &MembershipView {
        self.views.last().expect("initial view always present")
    }

    /// All views installed so far, oldest first.
    pub fn views(&self) -> &[MembershipView] {
        &self.views
    }

    /// All consistent health vectors computed so far.
    pub fn health_log(&self) -> &[HealthRecord] {
        &self.health_log
    }

    /// The health vector for a specific diagnosed round, if recorded.
    pub fn health_for(&self, diagnosed: RoundIndex) -> Option<&HealthRecord> {
        self.health_log.iter().find(|h| h.diagnosed == diagnosed)
    }

    /// Isolation decisions taken by the embedded p/r algorithm.
    pub fn isolations(&self) -> &[IsolationEvent] {
        &self.isolations
    }

    /// Minority accusations issued by this node `(round issued, accused)`.
    pub fn accusations(&self) -> &[(RoundIndex, NodeId)] {
        &self.accusation_log
    }

    /// Whether this instance still considers `node` active.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.pr.is_active(node)
    }

    /// The current Alg. 2 penalty counter this instance keeps for `node`.
    pub fn penalty(&self, node: NodeId) -> u64 {
        self.pr.penalty(node)
    }

    /// The current Alg. 2 reward counter this instance keeps for `node`.
    pub fn reward(&self, node: NodeId) -> u64 {
        self.pr.reward(node)
    }

    /// Detects the minority clique: nodes whose disseminated syndrome
    /// disagrees with the consistent health vector on some *other* node's
    /// health (their self-opinion is ignored, as in the voting).
    fn minority_accusations(&self, al_dm: &[SyndromeRow], cons_hv: &[bool]) -> Vec<NodeId> {
        let mut accused = Vec::new();
        for (j, row) in al_dm.iter().enumerate() {
            if j == self.node.index() {
                continue;
            }
            let Some(s) = row else { continue };
            let disagrees = (0..cons_hv.len()).any(|m| m != j && s.get(m) != cons_hv[m]);
            if disagrees {
                accused.push(NodeId::from_slot(j));
            }
        }
        accused
    }

    /// Analysis (phases 4–5) for the diagnosed round; returns the
    /// accusations to fold into the outgoing syndrome.
    fn analyze(&mut self, ctx: &mut JobCtx<'_>, mut al_dm: Vec<SyndromeRow>) -> Vec<NodeId> {
        let k = ctx.round();
        let lag = diagnosis_lag(self.config.all_send_curr_round());
        let Some(diagnosed) = k.checked_sub(lag) else {
            return Vec::new();
        };
        if self.activations < lag {
            return Vec::new();
        }
        if let Some(prev_round) = k.checked_sub(1) {
            if let Some(own) = self.bufs.own_row_for_tx_round(prev_round) {
                al_dm[self.node.index()] = Some(own);
            }
        }
        let matrix = DiagnosticMatrix::new(al_dm.clone());
        let node = self.node;
        let cons_hv = matrix.consistent_health_vector(|j| {
            if j == node {
                ctx.collision_ok(diagnosed)
            } else {
                None
            }
        });
        let sink = ctx.metrics();
        let metrics_on = sink.enabled();
        if metrics_on {
            emit_vote_tallies(sink, &matrix, node, k, diagnosed);
        }
        let tracer = ctx.tracing();
        let tracing_on = tracer.enabled();
        if tracing_on {
            emit_vote_spans(tracer, &matrix, node, k, diagnosed);
        }
        // Minority accusations: disseminated with the *next* syndrome.
        let accusations = self.minority_accusations(&al_dm, &cons_hv);
        for &a in &accusations {
            self.accusation_log.push((k, a));
        }
        // p/r bookkeeping and isolation, as in the base protocol.
        let newly_isolated = self.pr.update_observed(&cons_hv, |t| {
            sink.counter("core.pr_transitions", 1);
            if metrics_on {
                emit_pr_transition(sink, t, node, k, diagnosed);
            }
            if tracing_on {
                tracer.span(&span_for_transition(t, node, k, diagnosed));
            }
        });
        for iso in newly_isolated {
            self.isolations.push(IsolationEvent {
                node: iso,
                decided_at: k,
                diagnosed,
            });
            if self.config.reintegration() == ReintegrationPolicy::Never {
                ctx.isolate(iso);
            }
        }
        // View maintenance: drop every member deemed faulty this round.
        let convicted: Vec<NodeId> = cons_hv
            .iter()
            .enumerate()
            .filter(|(_, &ok)| !ok)
            .map(|(i, _)| NodeId::from_slot(i))
            .filter(|n| self.members.contains(n))
            .collect();
        if !convicted.is_empty() {
            for n in convicted {
                self.members.remove(&n);
            }
            let view_id = self.views.len() as u64;
            let view = MembershipView {
                view_id,
                members: self.members.iter().copied().collect(),
                installed_at: k,
                diagnosed,
            };
            sink.counter("core.views_installed", 1);
            if metrics_on {
                sink.emit(&MetricsEvent::ViewInstalled {
                    node,
                    view_id,
                    installed_at: k,
                    diagnosed,
                    members: view.members.clone(),
                });
            }
            self.views.push(view);
        }
        self.health_log.push(HealthRecord {
            diagnosed,
            decided_at: k,
            health: cons_hv,
        });
        accusations
    }
}

impl Job for MembershipJob {
    fn execute(&mut self, ctx: &mut JobCtx<'_>) {
        let sink = ctx.metrics();
        let metrics_on = sink.enabled();
        let tracer = ctx.tracing();
        let tracing_on = tracer.enabled();
        // Phases 1 & 3: read + alignment.
        let aligned = self.bufs.read_and_align(ctx);
        if metrics_on {
            sink.emit(&MetricsEvent::Aggregation {
                node: self.node,
                round: ctx.round(),
                epsilon_rows: aligned.epsilon_rows(),
            });
        }
        if tracing_on {
            emit_detection_spans(tracer, &aligned.al_ls, self.node, ctx.round());
        }
        // Phase 4 runs BEFORE dissemination (Sec. 7): the consistent health
        // vector determines the minority accusations...
        let accusations = self.analyze(ctx, aligned.al_dm.clone());
        let n_accusations = accusations.len() as u64;
        // ...which phase 2 folds into the outgoing local syndrome.
        let tx_round = self.bufs.disseminate(
            ctx,
            self.config.all_send_curr_round(),
            &aligned.al_ls,
            |s: &mut Syndrome| {
                for a in accusations {
                    s.set(a, false);
                }
            },
        );
        if metrics_on {
            sink.emit(&MetricsEvent::Dissemination {
                node: self.node,
                round: ctx.round(),
                tx_round,
                accusations: n_accusations,
            });
        }
        if tracing_on {
            emit_dissemination_spans(
                tracer,
                &self.bufs,
                tx_round,
                self.config.all_send_curr_round(),
                self.node,
                ctx.round(),
            );
        }
        self.bufs.commit(aligned);
        self.activations += 1;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sim::{Cluster, ClusterBuilder, SlotEffect, TxCtx};

    fn config() -> ProtocolConfig {
        ProtocolConfig::builder(4)
            .penalty_threshold(2)
            .reward_threshold(10)
            .build()
            .unwrap()
    }

    fn cluster_with(pipeline: impl FnMut(&TxCtx) -> SlotEffect + Send + 'static) -> Cluster {
        let cfg = config();
        ClusterBuilder::new(4).build_with_jobs(
            move |id| Box::new(MembershipJob::new(id, cfg.clone())),
            Box::new(pipeline),
        )
    }

    fn job(cluster: &Cluster, id: u32) -> &MembershipJob {
        cluster.job_as(NodeId::new(id)).unwrap()
    }

    #[test]
    fn fault_free_run_keeps_initial_view() {
        let mut cluster = cluster_with(|_| SlotEffect::Correct);
        cluster.run_rounds(20);
        for id in 1..=4 {
            let m = job(&cluster, id);
            assert_eq!(m.views().len(), 1);
            assert_eq!(m.current_view().members.len(), 4);
            assert!(m.accusations().is_empty());
        }
    }

    #[test]
    fn benign_faulty_sender_excluded_from_view() {
        // Node 2 crashes at round 8: all receivers detect it; the sender is
        // the only node outside the (unique) receiving clique.
        let mut cluster = cluster_with(|ctx: &TxCtx| {
            if ctx.sender == NodeId::new(2) && ctx.round.as_u64() >= 8 {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(20);
        let mut installed = Vec::new();
        for id in 1..=4 {
            let m = job(&cluster, id);
            let v = m.current_view();
            assert!(!v.contains(NodeId::new(2)), "node {id} dropped node 2");
            assert_eq!(v.members.len(), 3);
            installed.push(v.installed_at);
        }
        // Views install in the same round everywhere (uniqueness).
        assert!(installed.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn asymmetric_fault_forms_and_excludes_minority_clique() {
        // The paper's Sec. 8 clique experiment: node 1 fails to receive the
        // slots of other nodes (the disturbance sits between node 1 and the
        // rest of the cluster) in round 8. Node 1 becomes a minority clique
        // of one and must be excluded within two protocol executions.
        let mut cluster = cluster_with(|ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(8) && ctx.sender != NodeId::new(1) {
                SlotEffect::Asymmetric {
                    detected_by: vec![0], // only node 1 misses the message
                    collision_ok: true,
                }
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(24);
        // The majority's verdict on round 8 is "all healthy" (single
        // accuser outvoted)...
        let m2 = job(&cluster, 2);
        assert!(m2
            .health_for(RoundIndex::new(8))
            .unwrap()
            .health
            .iter()
            .all(|&b| b));
        // ...node 1's divergent syndrome earns minority accusations from
        // every majority member...
        for id in 2..=4 {
            let m = job(&cluster, id);
            assert!(
                m.accusations().iter().any(|(_, a)| *a == NodeId::new(1)),
                "node {id} accuses the minority-clique member"
            );
        }
        // ...and node 1 is excluded from the next view, consistently.
        for id in 2..=4 {
            let m = job(&cluster, id);
            let v = m.current_view();
            assert!(!v.contains(NodeId::new(1)), "node {id} excluded node 1");
            assert_eq!(v.members.len(), 3);
        }
        // Liveness bound: exclusion within two executions of the protocol
        // after the fault (diagnosed round of the view change <= 8 + lag).
        let v = job(&cluster, 2).current_view();
        assert!(
            v.diagnosed.as_u64() <= 8 + 2 * diagnosis_lag(false),
            "view change within two protocol executions, got {:?}",
            v.diagnosed
        );
    }

    #[test]
    fn view_synchrony_larger_clique_survives() {
        // Asymmetric fault on node 4's message m in round 8: nodes 2 and 3
        // miss it, node 1 receives it. The receiving clique {1} is the
        // minority. The vote convicts the sender (accusers {2,3} outvote
        // endorser {1}); node 1's divergent syndrome then earns minority
        // accusations, so the installed view is the larger clique {2, 3} —
        // whose members received the same set of messages (view synchrony).
        let mut cluster = cluster_with(|ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(8) && ctx.sender == NodeId::new(4) {
                SlotEffect::Asymmetric {
                    detected_by: vec![1, 2],
                    collision_ok: true,
                }
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(24);
        for id in 2..=3 {
            let m = job(&cluster, id);
            let rec = m.health_for(RoundIndex::new(8)).unwrap();
            assert_eq!(rec.health, vec![true, true, true, false], "node {id}");
            let v = m.current_view();
            assert!(!v.contains(NodeId::new(4)), "faulty sender dropped");
            assert!(
                !v.contains(NodeId::new(1)),
                "minority-clique member dropped"
            );
            assert_eq!(v.members, vec![NodeId::new(2), NodeId::new(3)]);
        }
        // Obedient node 1 accepts the same verdicts: views are identical
        // everywhere, including on the excluded member itself.
        let views: Vec<_> = (1..=3)
            .map(|id| job(&cluster, id).current_view().members.clone())
            .collect();
        assert!(views.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn membership_job_emits_provenance_spans() {
        use std::sync::Arc;
        use tt_sim::{CauseId, RecordingTraceSink, TracePhase};
        let tracing = Arc::new(RecordingTraceSink::new());
        let cfg = config();
        let mut cluster = ClusterBuilder::new(4)
            .trace_sink(tracing.clone())
            .build_with_jobs(
                move |id| Box::new(MembershipJob::new(id, cfg.clone())),
                Box::new(|ctx: &TxCtx| {
                    if ctx.sender == NodeId::new(2) && ctx.round.as_u64() >= 8 {
                        SlotEffect::Benign
                    } else {
                        SlotEffect::Correct
                    }
                }),
            );
        cluster.run_rounds(20);
        let cause = CauseId::new(NodeId::new(2), RoundIndex::new(8));
        let spans: Vec<_> = tracing
            .spans()
            .into_iter()
            .filter(|s| s.cause() == cause)
            .collect();
        // The first faulty round leaves the full five protocol phases plus
        // the engine's slot-fault record.
        for p in TracePhase::ALL {
            assert!(
                spans.iter().any(|s| s.phase() == p),
                "missing phase {p:?} in {spans:?}"
            );
        }
        // Analysis and update happen at round 8 + lag.
        let decided_at = RoundIndex::new(8 + diagnosis_lag(false));
        assert!(spans
            .iter()
            .filter(|s| s.phase() == TracePhase::Update)
            .all(|s| s.round() == decided_at));
    }

    #[test]
    fn accessors() {
        let mut cluster = cluster_with(|_| SlotEffect::Correct);
        cluster.run_rounds(10);
        let m = job(&cluster, 3);
        assert_eq!(m.node(), NodeId::new(3));
        assert!(m.is_active(NodeId::new(1)));
        assert!(m.isolations().is_empty());
        assert!(m.health_log().len() >= 5);
        assert_eq!(m.current_view().view_id, 0);
    }
}
