//! The on-line diagnostic protocol (paper Sec. 5, Alg. 1).
//!
//! [`DiagJob`] is the diagnostic job `diag_i` that runs once per round on
//! every node. Each activation interleaves the phases of several pipelined
//! protocol instances (paper Fig. 1):
//!
//! 1. **Local detection** — read the validity bits of the diagnostic
//!    messages; read alignment forms the local syndrome of the previous
//!    round.
//! 2. **Dissemination** — write the (send-aligned) local syndrome into the
//!    outgoing interface variable.
//! 3. **Aggregation** — read all local syndromes (with read alignment) into
//!    the diagnostic matrix for the diagnosed round; rows whose carrying
//!    message was invalid become ε.
//! 4. **Analysis** — hybrid-majority vote each matrix column into the
//!    **consistent health vector**, falling back to the local collision
//!    detector when a column is undecidable (communication blackout).
//! 5. **Update counters** — feed the health vector to the penalty/reward
//!    algorithm and isolate nodes whose penalty exceeded the threshold.
//!
//! The node's *own* matrix row is taken from its locally buffered copy of
//! the syndrome it disseminated — a node always knows what it sent, even if
//! the bus corrupted the transmission. This is what lets an obedient node
//! keep diagnosing *others* correctly during a total communication blackout
//! (Lemma 3), while self-diagnosis falls back to the collision detector.

use serde::{Deserialize, Serialize};

use tt_sim::{
    CauseId, Job, JobCtx, MetricsEvent, MetricsSink, NodeId, RoundIndex, SpanEvent, TraceSink,
    UpdateKind,
};

use crate::alignment::{diagnosis_lag, syndrome_reference_round};
use crate::config::ProtocolConfig;
use crate::matrix::DiagnosticMatrix;
use crate::penalty::{PenaltyReward, PrTransition, ReintegrationPolicy};
use crate::pipeline::AlignmentBuffers;
use crate::syndrome::{Syndrome, SyndromeRow};

/// Emits the contested [`MetricsEvent::VoteTally`]s of one analysis phase
/// (shared by [`DiagJob`] and the membership variant).
pub(crate) fn emit_vote_tallies(
    sink: &dyn MetricsSink,
    matrix: &DiagnosticMatrix,
    node: NodeId,
    decided_at: RoundIndex,
    diagnosed: RoundIndex,
) {
    for subject in NodeId::all(matrix.n_nodes()) {
        let t = matrix.tally(subject);
        if t.contested() {
            sink.emit(&MetricsEvent::VoteTally {
                node,
                decided_at,
                diagnosed,
                subject,
                ok: t.ok,
                faulty: t.faulty,
                epsilon: t.epsilon,
                decided: t.outcome.decided(),
            });
        }
    }
}

/// Forwards one p/r counter transition to the metrics sink (shared by
/// [`DiagJob`] and the membership variant).
pub(crate) fn emit_pr_transition(
    sink: &dyn MetricsSink,
    transition: PrTransition,
    node: NodeId,
    decided_at: RoundIndex,
    diagnosed: RoundIndex,
) {
    let event = match transition {
        PrTransition::Penalized { subject, penalty } => MetricsEvent::PenaltyCharged {
            node,
            decided_at,
            diagnosed,
            subject,
            penalty,
        },
        PrTransition::Rewarded { subject, reward } => MetricsEvent::RewardEarned {
            node,
            decided_at,
            diagnosed,
            subject,
            reward,
        },
        PrTransition::Forgiven { subject } => MetricsEvent::Forgiveness {
            node,
            decided_at,
            diagnosed,
            subject,
        },
        PrTransition::Isolated { subject, penalty } => MetricsEvent::Isolation {
            node,
            decided_at,
            diagnosed,
            subject,
            penalty,
        },
        PrTransition::Reintegrated { subject } => MetricsEvent::Reintegration {
            node,
            decided_at,
            diagnosed,
            subject,
        },
    };
    sink.emit(&event);
}

/// Emits one [`SpanEvent::Detection`] per node accused by the aligned
/// local syndrome of the activation at round `k` (shared by [`DiagJob`]
/// and the membership variant).
///
/// The aligned syndrome refers to round `k - 1` (read alignment), so the
/// causal id of each span names that round as the fault round. Nothing is
/// emitted for the start-up activation at round 0.
pub(crate) fn emit_detection_spans(
    tracer: &dyn TraceSink,
    al_ls: &Syndrome,
    node: NodeId,
    k: RoundIndex,
) {
    let Some(observed) = k.checked_sub(1) else {
        return;
    };
    for subject in al_ls.accused() {
        tracer.span(&SpanEvent::Detection {
            cause: CauseId::new(subject, observed),
            node,
            round: k,
        });
    }
}

/// Emits one [`SpanEvent::Dissemination`] per accusation carried by the
/// syndrome this activation put on the bus (shared by [`DiagJob`] and the
/// membership variant).
///
/// The causal id is recovered from the transmission slot via
/// [`syndrome_reference_round`]: the syndrome transmitted in `tx_round`
/// refers to round `tx_round - (diagnosis_lag - 1)`.
pub(crate) fn emit_dissemination_spans(
    tracer: &dyn TraceSink,
    bufs: &AlignmentBuffers,
    tx_round: RoundIndex,
    all_send_curr_round: bool,
    node: NodeId,
    k: RoundIndex,
) {
    let Some(referred) = syndrome_reference_round(tx_round, all_send_curr_round) else {
        return;
    };
    let Some(sent) = bufs.own_row_for_tx_round(tx_round) else {
        return;
    };
    for subject in sent.accused() {
        tracer.span(&SpanEvent::Dissemination {
            cause: CauseId::new(subject, referred),
            node,
            round: k,
            tx_round,
        });
    }
}

/// Emits the [`SpanEvent::Aggregation`] and [`SpanEvent::Analysis`] spans
/// of one analysis phase: one pair per contested matrix column, mirroring
/// the contested-only filtering of [`emit_vote_tallies`].
pub(crate) fn emit_vote_spans(
    tracer: &dyn TraceSink,
    matrix: &DiagnosticMatrix,
    node: NodeId,
    decided_at: RoundIndex,
    diagnosed: RoundIndex,
) {
    for subject in NodeId::all(matrix.n_nodes()) {
        let t = matrix.tally(subject);
        if t.contested() {
            let cause = CauseId::new(subject, diagnosed);
            tracer.span(&SpanEvent::Aggregation {
                cause,
                node,
                round: decided_at,
                epsilon: t.epsilon,
            });
            tracer.span(&SpanEvent::Analysis {
                cause,
                node,
                round: decided_at,
                ok: t.ok,
                faulty: t.faulty,
                epsilon: t.epsilon,
                decided: t.decided(),
            });
        }
    }
}

/// The [`SpanEvent::Update`] span describing one p/r counter transition
/// (shared by [`DiagJob`] and the membership variant).
pub(crate) fn span_for_transition(
    transition: PrTransition,
    node: NodeId,
    decided_at: RoundIndex,
    diagnosed: RoundIndex,
) -> SpanEvent {
    let kind = match transition {
        PrTransition::Penalized { .. } => UpdateKind::Penalty,
        PrTransition::Rewarded { .. } => UpdateKind::Reward,
        PrTransition::Forgiven { .. } => UpdateKind::Forgiveness,
        PrTransition::Isolated { .. } => UpdateKind::Isolation,
        PrTransition::Reintegrated { .. } => UpdateKind::Reintegration,
    };
    SpanEvent::Update {
        cause: CauseId::new(transition.subject(), diagnosed),
        node,
        round: decided_at,
        kind,
        counter: transition.counter_value().unwrap_or(0),
    }
}

/// One consistent health vector, with its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthRecord {
    /// The diagnosed round the vector refers to (`k - 2` or `k - 3`).
    pub diagnosed: RoundIndex,
    /// The round whose activation computed the vector.
    pub decided_at: RoundIndex,
    /// Health per node (`true` = not faulty in the diagnosed round).
    pub health: Vec<bool>,
}

/// One sample of the p/r counters, taken after the update for a diagnosed
/// round (recorded only when counter tracing is enabled).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// The diagnosed round whose verdict produced this update.
    pub diagnosed: RoundIndex,
    /// Penalty counters after the update (index = node index).
    pub penalties: Vec<u64>,
    /// Reward counters after the update (index = node index).
    pub rewards: Vec<u64>,
}

/// A node-isolation decision taken by the p/r algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IsolationEvent {
    /// The isolated node.
    pub node: NodeId,
    /// The round whose activation decided the isolation.
    pub decided_at: RoundIndex,
    /// The diagnosed round whose fault pushed the penalty over the
    /// threshold.
    pub diagnosed: RoundIndex,
}

/// The diagnostic job `diag_i` of one node (Alg. 1).
///
/// See the [crate-level example](crate) for typical usage inside a
/// [`tt_sim::Cluster`].
#[derive(Debug, Clone)]
pub struct DiagJob {
    node: NodeId,
    config: ProtocolConfig,
    pr: PenaltyReward,
    bufs: AlignmentBuffers,
    /// Completed protocol executions (health vectors), newest last.
    health_log: Vec<HealthRecord>,
    isolations: Vec<IsolationEvent>,
    counter_trace: Vec<CounterSample>,
    log_health: bool,
    log_counters: bool,
    activations: u64,
    /// Recycled row storage for the per-activation [`DiagnosticMatrix`].
    matrix_scratch: Vec<SyndromeRow>,
    /// Recycled buffer for the per-activation consistent health vector.
    hv_scratch: Vec<bool>,
}

impl DiagJob {
    /// Creates the diagnostic job for `node` with health-vector logging on.
    pub fn new(node: NodeId, config: ProtocolConfig) -> Self {
        Self::with_logging(node, config, true)
    }

    /// Creates the job, choosing whether every consistent health vector is
    /// retained (turn off for very long tuning runs to bound memory).
    pub fn with_logging(node: NodeId, config: ProtocolConfig, log_health: bool) -> Self {
        let n = config.n_nodes();
        DiagJob {
            node,
            pr: PenaltyReward::new(
                n,
                config.criticalities().to_vec(),
                config.penalty_threshold(),
                config.reward_threshold(),
                config.reintegration(),
            ),
            bufs: AlignmentBuffers::new(n),
            health_log: Vec::new(),
            isolations: Vec::new(),
            counter_trace: Vec::new(),
            log_health,
            log_counters: false,
            activations: 0,
            matrix_scratch: Vec::with_capacity(n),
            hv_scratch: Vec::with_capacity(n),
            config,
        }
    }

    /// Enables per-round counter tracing (off by default: it stores two
    /// `N`-vectors per diagnosed round). Returns `self` for chaining.
    pub fn with_counter_trace(mut self) -> Self {
        self.log_counters = true;
        self
    }

    /// The recorded counter evolution (empty unless tracing was enabled
    /// via [`DiagJob::with_counter_trace`]).
    pub fn counter_trace(&self) -> &[CounterSample] {
        &self.counter_trace
    }

    /// The hosting node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Whether this instance still considers `node` active (not isolated).
    pub fn is_active(&self, node: NodeId) -> bool {
        self.pr.is_active(node)
    }

    /// The activity vector (index = node index).
    pub fn active(&self) -> &[bool] {
        self.pr.active()
    }

    /// Current penalty counter of `node`.
    pub fn penalty(&self, node: NodeId) -> u64 {
        self.pr.penalty(node)
    }

    /// Current reward counter of `node`.
    pub fn reward(&self, node: NodeId) -> u64 {
        self.pr.reward(node)
    }

    /// All recorded consistent health vectors (empty if logging is off).
    pub fn health_log(&self) -> &[HealthRecord] {
        &self.health_log
    }

    /// The health vector for a specific diagnosed round, if recorded.
    pub fn health_for(&self, diagnosed: RoundIndex) -> Option<&HealthRecord> {
        self.health_log.iter().find(|h| h.diagnosed == diagnosed)
    }

    /// The most recent health vector, if any.
    pub fn last_health(&self) -> Option<&HealthRecord> {
        self.health_log.last()
    }

    /// All isolation decisions taken so far, in decision order.
    pub fn isolations(&self) -> &[IsolationEvent] {
        &self.isolations
    }

    /// Number of completed activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Phases 4–5: voting, health vector, counters, isolation.
    fn analyze_and_update(&mut self, ctx: &mut JobCtx<'_>, al_dm: &[SyndromeRow]) {
        let k = ctx.round();
        let lag = diagnosis_lag(self.config.all_send_curr_round());
        let Some(diagnosed) = k.checked_sub(lag) else {
            return;
        };
        if self.activations < lag {
            return; // pipeline not yet full: no complete instance exists
        }
        self.matrix_scratch.clear();
        self.matrix_scratch.extend_from_slice(al_dm);
        // The node's own row comes from its local buffer, not the bus.
        if let Some(prev_round) = k.checked_sub(1) {
            if let Some(own) = self.bufs.own_row_for_tx_round(prev_round) {
                self.matrix_scratch[self.node.index()] = Some(own);
            }
        }
        let matrix = DiagnosticMatrix::new(std::mem::take(&mut self.matrix_scratch));
        let node = self.node;
        matrix.consistent_health_vector_into(&mut self.hv_scratch, |j| {
            if j == node {
                ctx.collision_ok(diagnosed)
            } else {
                None
            }
        });
        let sink = ctx.metrics();
        let metrics_on = sink.enabled();
        if metrics_on {
            emit_vote_tallies(sink, &matrix, node, k, diagnosed);
        }
        let tracer = ctx.tracing();
        let tracing_on = tracer.enabled();
        if tracing_on {
            emit_vote_spans(tracer, &matrix, node, k, diagnosed);
        }
        let newly_isolated = self.pr.update_observed(&self.hv_scratch, |t| {
            sink.counter("core.pr_transitions", 1);
            if metrics_on {
                emit_pr_transition(sink, t, node, k, diagnosed);
            }
            if tracing_on {
                tracer.span(&span_for_transition(t, node, k, diagnosed));
            }
        });
        if self.log_counters {
            self.counter_trace.push(CounterSample {
                diagnosed,
                penalties: self.pr.penalties().to_vec(),
                rewards: self.pr.rewards().to_vec(),
            });
        }
        for iso in newly_isolated {
            self.isolations.push(IsolationEvent {
                node: iso,
                decided_at: k,
                diagnosed,
            });
            // Under the reintegration extension the node is kept "under
            // observation": the application treats it as isolated but the
            // controller keeps reporting its slots so recovery is visible.
            if self.config.reintegration() == ReintegrationPolicy::Never {
                ctx.isolate(iso);
            }
        }
        if self.log_health {
            self.health_log.push(HealthRecord {
                diagnosed,
                decided_at: k,
                health: self.hv_scratch.clone(),
            });
        }
        // Reclaim the matrix's row storage for the next activation.
        self.matrix_scratch = matrix.into_rows();
    }
}

impl Job for DiagJob {
    fn execute(&mut self, ctx: &mut JobCtx<'_>) {
        let sink = ctx.metrics();
        let metrics_on = sink.enabled();
        let tracer = ctx.tracing();
        let tracing_on = tracer.enabled();
        // Phases 1 & 3: local detection + aggregation (read alignment).
        let aligned = self.bufs.read_and_align(ctx);
        if metrics_on {
            sink.emit(&MetricsEvent::Aggregation {
                node: self.node,
                round: ctx.round(),
                epsilon_rows: aligned.epsilon_rows(),
            });
        }
        if tracing_on {
            emit_detection_spans(tracer, &aligned.al_ls, self.node, ctx.round());
        }
        // Phase 2: dissemination (send alignment).
        let tx_round = self.bufs.disseminate(
            ctx,
            self.config.all_send_curr_round(),
            &aligned.al_ls,
            |_| {},
        );
        if metrics_on {
            sink.emit(&MetricsEvent::Dissemination {
                node: self.node,
                round: ctx.round(),
                tx_round,
                accusations: 0,
            });
        }
        if tracing_on {
            emit_dissemination_spans(
                tracer,
                &self.bufs,
                tx_round,
                self.config.all_send_curr_round(),
                self.node,
                ctx.round(),
            );
        }
        // Phases 4 & 5: analysis + counter update.
        self.analyze_and_update(ctx, &aligned.al_dm);
        // Buffering for the next activation (Alg. 1, lines 16–17).
        self.bufs.commit(aligned);
        self.activations += 1;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sim::{Cluster, ClusterBuilder, SlotEffect, TxCtx};

    fn config(p: u64, r: u64) -> ProtocolConfig {
        ProtocolConfig::builder(4)
            .penalty_threshold(p)
            .reward_threshold(r)
            .build()
            .unwrap()
    }

    fn cluster_with(
        cfg: &ProtocolConfig,
        pipeline: impl FnMut(&TxCtx) -> SlotEffect + Send + 'static,
    ) -> Cluster {
        let cfg = cfg.clone();
        ClusterBuilder::new(4).build_with_jobs(
            move |id| Box::new(DiagJob::new(id, cfg.clone())),
            Box::new(pipeline),
        )
    }

    fn diag(cluster: &Cluster, id: u32) -> &DiagJob {
        cluster.job_as(NodeId::new(id)).unwrap()
    }

    #[test]
    fn healthy_cluster_diagnoses_all_healthy() {
        let mut cluster = cluster_with(&config(3, 10), |_| SlotEffect::Correct);
        cluster.run_rounds(20);
        for id in 1..=4 {
            let d = diag(&cluster, id);
            assert!(d.health_log().len() >= 15, "pipelined instances complete");
            assert!(d.health_log().iter().all(|h| h.health.iter().all(|&b| b)));
            assert!(d.isolations().is_empty());
        }
    }

    #[test]
    fn single_benign_fault_detected_with_lag_3() {
        // Default config: conservative send alignment, diagnosed = k - 3.
        let mut cluster = cluster_with(&config(100, 10), |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(10) && ctx.sender == NodeId::new(2) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(20);
        for id in 1..=4 {
            let d = diag(&cluster, id);
            let rec = d.health_for(RoundIndex::new(10)).expect("round diagnosed");
            assert_eq!(rec.health, vec![true, false, true, true]);
            assert_eq!(rec.decided_at, RoundIndex::new(13), "k - 3 lag");
            // Neighbouring rounds diagnosed clean.
            let prev = d.health_for(RoundIndex::new(9)).unwrap();
            assert!(prev.health.iter().all(|&b| b));
        }
    }

    #[test]
    fn all_send_curr_round_reduces_lag_to_2() {
        let cfg = ProtocolConfig::builder(4)
            .penalty_threshold(100)
            .reward_threshold(10)
            .all_send_curr_round(true)
            .build()
            .unwrap();
        let mut cluster = cluster_with(&cfg, |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(10) && ctx.sender == NodeId::new(2) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(20);
        let d = diag(&cluster, 1);
        let rec = d.health_for(RoundIndex::new(10)).unwrap();
        assert_eq!(rec.health, vec![true, false, true, true]);
        assert_eq!(rec.decided_at, RoundIndex::new(12), "k - 2 lag");
    }

    #[test]
    fn crash_leads_to_consistent_isolation() {
        let mut cluster = cluster_with(&config(3, 10), |ctx: &TxCtx| {
            if ctx.sender == NodeId::new(3) && ctx.round >= RoundIndex::new(5) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(20);
        let mut decided = Vec::new();
        for id in 1..=4 {
            let d = diag(&cluster, id);
            assert!(!d.is_active(NodeId::new(3)));
            assert!(d.is_active(NodeId::new(id)) || id == 3);
            assert_eq!(d.isolations().len(), 1);
            decided.push(d.isolations()[0].decided_at);
        }
        // All obedient nodes isolate in the same round (consistency).
        assert!(decided.windows(2).all(|w| w[0] == w[1]));
        // P = 3 with criticality 1: the 4th consecutive fault (round 8)
        // exceeds the threshold; decided 3 rounds later.
        assert_eq!(decided[0], RoundIndex::new(11));
    }

    #[test]
    fn two_coincident_benign_faults_diagnosed() {
        // Table 1's scenario: nodes 3 and 4 benign faulty across both the
        // diagnosed and dissemination rounds.
        let mut cluster = cluster_with(&config(100, 10), |ctx: &TxCtx| {
            let r = ctx.round.as_u64();
            if (10..=13).contains(&r)
                && (ctx.sender == NodeId::new(3) || ctx.sender == NodeId::new(4))
            {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(20);
        for id in 1..=4 {
            let d = diag(&cluster, id);
            let rec = d.health_for(RoundIndex::new(11)).unwrap();
            assert_eq!(rec.health, vec![true, true, false, false], "node {id}");
        }
    }

    #[test]
    fn blackout_diagnosed_via_collision_detector() {
        // Two full TDMA rounds lost (Lemma 3's b = N case): every node must
        // still self-diagnose via its collision detector and diagnose
        // others via its own local syndrome.
        let mut cluster = cluster_with(&config(100, 10), |ctx: &TxCtx| {
            let r = ctx.round.as_u64();
            if (10..12).contains(&r) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(20);
        for id in 1..=4 {
            let d = diag(&cluster, id);
            for dr in [10u64, 11] {
                let rec = d.health_for(RoundIndex::new(dr)).unwrap();
                assert_eq!(
                    rec.health,
                    vec![false; 4],
                    "node {id} sees total blackout in round {dr}"
                );
            }
            // Surrounding rounds remain clean despite ε-heavy matrices.
            assert!(d
                .health_for(RoundIndex::new(9))
                .unwrap()
                .health
                .iter()
                .all(|&b| b));
            assert!(d
                .health_for(RoundIndex::new(13))
                .unwrap()
                .health
                .iter()
                .all(|&b| b));
        }
    }

    #[test]
    fn asymmetric_fault_is_diagnosed_consistently() {
        // Node 1's slot in round 10 is seen as faulty only by node 2
        // (a = 1). Theorem 1 requires a *consistent* verdict (any value).
        let mut cluster = cluster_with(&config(100, 10), |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(10) && ctx.sender == NodeId::new(1) {
                SlotEffect::Asymmetric {
                    detected_by: vec![1],
                    collision_ok: true,
                }
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(20);
        let verdicts: Vec<Vec<bool>> = (1..=4)
            .map(|id| {
                diag(&cluster, id)
                    .health_for(RoundIndex::new(10))
                    .unwrap()
                    .health
                    .clone()
            })
            .collect();
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "consistency");
        // With a single accuser among three voters the majority says
        // healthy: asymmetric faults need not be detected, only agreed on.
        assert_eq!(verdicts[0], vec![true; 4]);
    }

    #[test]
    fn mixed_node_schedules_stay_consistent() {
        // Jobs at staggered offsets: some can send in the current round,
        // some cannot — exercising both branches of the send alignment.
        let cfg = config(100, 10);
        let mut cluster = ClusterBuilder::new(4)
            .build(Box::new(|ctx: &TxCtx| {
                if ctx.round == RoundIndex::new(10) && ctx.sender == NodeId::new(4) {
                    SlotEffect::Benign
                } else {
                    SlotEffect::Correct
                }
            }))
            .unwrap();
        // Node i gets offset i (node 1 after slot 1: cannot send current
        // round; node 4 after slot... offset 0 for variety).
        for (id, off) in [(1u32, 1usize), (2, 3), (3, 0), (4, 2)] {
            cluster
                .add_job(
                    NodeId::new(id),
                    off,
                    Box::new(DiagJob::new(NodeId::new(id), cfg.clone())),
                )
                .unwrap();
        }
        cluster.run_rounds(24);
        let mut records = Vec::new();
        for id in 1..=4 {
            let d: &DiagJob = cluster.job_as(NodeId::new(id)).unwrap();
            let rec = d.health_for(RoundIndex::new(10)).expect("diagnosed");
            records.push(rec.health.clone());
            assert_eq!(rec.health, vec![true, true, true, false], "node {id}");
        }
        assert!(records.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn reward_threshold_forgives_transients() {
        // A fault every 2nd round, but R = 2 is reached between faults...
        // actually with faults every 4 rounds and R = 2, counters reset
        // between faults and the node is never isolated even though the
        // total fault count exceeds P.
        let cfg = ProtocolConfig::builder(4)
            .penalty_threshold(3)
            .reward_threshold(2)
            .build()
            .unwrap();
        let mut cluster = cluster_with(&cfg, |ctx: &TxCtx| {
            if ctx.sender == NodeId::new(2) && ctx.round.as_u64().is_multiple_of(4) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(40); // 10 faults > P, but never 4 within a window
        let d = diag(&cluster, 1);
        assert!(d.is_active(NodeId::new(2)), "transients forgiven");
        assert!(d.penalty(NodeId::new(2)) <= 1);
    }

    #[test]
    fn reintegration_extension_restores_node() {
        let cfg = ProtocolConfig::builder(4)
            .penalty_threshold(2)
            .reward_threshold(5)
            .reintegration(ReintegrationPolicy::AfterRewards(4))
            .build()
            .unwrap();
        // Node 4 faulty for rounds 5..=9, then recovers for good.
        let mut cluster = cluster_with(&cfg, |ctx: &TxCtx| {
            if ctx.sender == NodeId::new(4) && (5..=9).contains(&ctx.round.as_u64()) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        cluster.run_rounds(11);
        assert!(!diag(&cluster, 1).is_active(NodeId::new(4)), "isolated");
        cluster.run_rounds(10);
        assert!(
            diag(&cluster, 1).is_active(NodeId::new(4)),
            "reintegrated after observed recovery"
        );
    }

    #[test]
    fn job_accessors() {
        let cfg = config(3, 10);
        let mut cluster = cluster_with(&cfg, |_| SlotEffect::Correct);
        cluster.run_rounds(10);
        let d = diag(&cluster, 2);
        assert_eq!(d.node(), NodeId::new(2));
        assert_eq!(d.config().penalty_threshold(), 3);
        assert_eq!(d.activations(), 10);
        assert!(d.last_health().is_some());
        assert_eq!(d.reward(NodeId::new(1)), 0);
        assert_eq!(d.active(), &[true; 4]);
    }

    #[test]
    fn trace_sink_observes_full_provenance_chain() {
        use std::sync::Arc;
        use tt_sim::{CauseId, RecordingTraceSink, SpanEvent, TracePhase};
        // The single-benign-fault scenario of `single_benign_fault_detected_
        // with_lag_3`, this time with a recording trace sink installed: the
        // fault at (node 2, round 10) must leave a complete causal chain.
        let tracing = Arc::new(RecordingTraceSink::new());
        let cfg = config(100, 10);
        let mut cluster = ClusterBuilder::new(4)
            .trace_sink(tracing.clone())
            .build_with_jobs(
                move |id| Box::new(DiagJob::new(id, cfg.clone())),
                Box::new(|ctx: &TxCtx| {
                    if ctx.round == RoundIndex::new(10) && ctx.sender == NodeId::new(2) {
                        SlotEffect::Benign
                    } else {
                        SlotEffect::Correct
                    }
                }),
            );
        cluster.run_rounds(20);
        let cause = CauseId::new(NodeId::new(2), RoundIndex::new(10));
        let spans: Vec<SpanEvent> = tracing
            .spans()
            .into_iter()
            .filter(|s| s.cause() == cause)
            .collect();
        let of_phase = |p: TracePhase| spans.iter().filter(move |s| s.phase() == p);
        // The engine records the injected slot fault itself...
        assert_eq!(of_phase(TracePhase::SlotFault).count(), 1);
        // ...every obedient receiver detects it in the next activation...
        let detections: Vec<_> = of_phase(TracePhase::Detection).collect();
        assert!(detections.len() >= 3, "got {detections:?}");
        assert!(detections.iter().all(|s| s.round() == RoundIndex::new(11)));
        // ...the accusing syndromes ship in the slot of round 12 (so that
        // the analysis at round 13 can read-align them)...
        for d in of_phase(TracePhase::Dissemination) {
            let SpanEvent::Dissemination { tx_round, .. } = d else {
                unreachable!()
            };
            assert_eq!(*tx_round, RoundIndex::new(12));
        }
        assert!(of_phase(TracePhase::Dissemination).count() >= 3);
        // ...all four nodes aggregate, vote and convict at round 13 (lag 3)
        for p in [
            TracePhase::Aggregation,
            TracePhase::Analysis,
            TracePhase::Update,
        ] {
            let phase_spans: Vec<_> = of_phase(p).collect();
            assert_eq!(phase_spans.len(), 4, "{p:?}");
            assert!(phase_spans.iter().all(|s| s.round() == RoundIndex::new(13)));
        }
        for a in of_phase(TracePhase::Analysis) {
            let SpanEvent::Analysis { decided, .. } = a else {
                unreachable!()
            };
            assert_eq!(*decided, Some(false), "convicted");
        }
        // The counter transition is a penalty charge of 1.
        for u in of_phase(TracePhase::Update) {
            let SpanEvent::Update { kind, counter, .. } = u else {
                unreachable!()
            };
            assert_eq!(*kind, tt_sim::UpdateKind::Penalty);
            assert_eq!(*counter, 1);
        }
        // No span of any phase precedes the fault round.
        assert!(spans.iter().all(|s| s.round() >= RoundIndex::new(10)));
    }

    #[test]
    fn noop_trace_sink_leaves_protocol_behaviour_unchanged() {
        // Tracing defaults to a no-op sink: results must be identical to an
        // explicitly traced run (determinism guard for the span wiring).
        let run = |traced: bool| {
            let cfg = config(3, 10);
            let mut builder = ClusterBuilder::new(4);
            if traced {
                builder =
                    builder.trace_sink(std::sync::Arc::new(tt_sim::RecordingTraceSink::new()));
            }
            let mut cluster = builder.build_with_jobs(
                move |id| Box::new(DiagJob::new(id, cfg.clone())),
                Box::new(|ctx: &TxCtx| {
                    if ctx.sender == NodeId::new(3) && ctx.round >= RoundIndex::new(5) {
                        SlotEffect::Benign
                    } else {
                        SlotEffect::Correct
                    }
                }),
            );
            cluster.run_rounds(20);
            (1..=4u32)
                .map(|id| diag(&cluster, id).health_log().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn logging_can_be_disabled() {
        let cfg = config(3, 10);
        let mut cluster = ClusterBuilder::new(4).build_with_jobs(
            |id| Box::new(DiagJob::with_logging(id, cfg.clone(), false)),
            Box::new(tt_sim::NoFaults),
        );
        cluster.run_rounds(10);
        assert!(diag(&cluster, 1).health_log().is_empty());
    }
}
