//! Local syndromes and their wire encoding.
//!
//! The **local syndrome** of node `i` is the binary `N`-tuple containing its
//! local view on the messages sent by the other nodes (paper Sec. 5): bit
//! `j` is 1 if the message of node `j+1` passed local error detection, 0
//! otherwise. Syndromes travel inside the non-replicated **diagnostic
//! message** `dm_i`; the bandwidth is `N` bits per message, matching the
//! paper's prototype.
//!
//! At the receiver, a whole row of the diagnostic matrix takes the special
//! error value **ε** when the diagnostic message carrying it was itself
//! locally detected as faulty (validity bit 0). [`SyndromeRow`] models a
//! row as `Option<Syndrome>` with `None` = ε.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use tt_sim::NodeId;

/// The largest cluster a [`Syndrome`] can cover (one bit per node in the
/// packed representation).
pub const MAX_SYNDROME_NODES: usize = 64;

/// A local syndrome: one boolean opinion per node, `true` = "message
/// received correctly" (the paper's 1), `false` = "faulty" (the paper's 0).
///
/// Stored as a packed bitmask so syndromes are `Copy`: the simulation hot
/// path clones, aligns and decodes one syndrome per node per round, and a
/// heap-backed representation would make every such step allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Syndrome {
    n: u8,
    mask: u64,
}

impl Syndrome {
    /// An all-ones syndrome ("everyone correct") for an `n`-node cluster.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_SYNDROME_NODES`].
    pub fn all_ok(n: usize) -> Self {
        assert!(n <= MAX_SYNDROME_NODES, "cluster too large for a syndrome");
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        Syndrome { n: n as u8, mask }
    }

    /// Builds a syndrome from per-node opinions (index = node index).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SYNDROME_NODES`] opinions are given.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let mut n = 0usize;
        let mut mask = 0u64;
        for ok in bits {
            assert!(n < MAX_SYNDROME_NODES, "cluster too large for a syndrome");
            if ok {
                mask |= 1 << n;
            }
            n += 1;
        }
        Syndrome { n: n as u8, mask }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True if the syndrome covers zero nodes (never valid in a cluster,
    /// but kept total for robustness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The opinion on `node`: `true` = correct, `false` = faulty.
    pub fn opinion(&self, node: NodeId) -> bool {
        self.get(node.index())
    }

    /// The opinion at 0-based index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, like the indexing it replaced.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.n as usize, "syndrome index out of range");
        self.mask & (1 << idx) != 0
    }

    /// Sets the opinion on `node` (used for minority accusations).
    pub fn set(&mut self, node: NodeId, ok: bool) {
        let idx = node.index();
        assert!(idx < self.n as usize, "syndrome index out of range");
        if ok {
            self.mask |= 1 << idx;
        } else {
            self.mask &= !(1 << idx);
        }
    }

    /// Iterates over the opinions in node order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        let mask = self.mask;
        (0..self.n as usize).map(move |j| mask & (1 << j) != 0)
    }

    /// The nodes accused as faulty by this syndrome.
    pub fn accused(&self) -> Vec<NodeId> {
        self.iter()
            .enumerate()
            .filter(|(_, ok)| !ok)
            .map(|(i, _)| NodeId::from_slot(i))
            .collect()
    }

    /// Encodes the syndrome into its `ceil(N/8)`-byte wire format
    /// (LSB-first bit packing: bit `j` of byte `j / 8` is the opinion on
    /// node `j+1`).
    pub fn encode(&self) -> Bytes {
        let n = self.n as usize;
        let mut out = vec![0u8; n.div_ceil(8)];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = (self.mask >> (i * 8)) as u8;
        }
        Bytes::from(out)
    }

    /// Decodes a syndrome for an `n`-node cluster from arbitrary bytes.
    ///
    /// Decoding is **total**: short payloads are zero-extended and long
    /// payloads truncated. This mirrors the fault model — a malicious
    /// diagnostic message is *not locally detectable*, so whatever bits
    /// arrive are interpreted as a syndrome.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_SYNDROME_NODES`].
    pub fn decode(payload: &[u8], n: usize) -> Self {
        assert!(n <= MAX_SYNDROME_NODES, "cluster too large for a syndrome");
        let mut mask = 0u64;
        for (i, &b) in payload.iter().take(n.div_ceil(8)).enumerate() {
            mask |= u64::from(b) << (i * 8);
        }
        if n < 64 {
            mask &= (1u64 << n) - 1;
        }
        Syndrome { n: n as u8, mask }
    }
}

impl std::fmt::Display for Syndrome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// One row of the diagnostic matrix as stored at a receiver: the syndrome
/// sent by some node, or ε (`None`) when that diagnostic message was
/// locally detected as faulty.
pub type SyndromeRow = Option<Syndrome>;

/// Renders a row the way the paper's Table 1 does (`ε ε ε ε` for lost
/// rows, `1 0 …` otherwise, with `-` on the diagonal).
pub fn format_row(row: &SyndromeRow, own_index: usize, n: usize) -> String {
    let mut parts = Vec::with_capacity(n);
    for j in 0..n {
        if j == own_index {
            parts.push("-".to_string());
        } else {
            parts.push(match row {
                Some(s) => if s.get(j) { "1" } else { "0" }.to_string(),
                None => "ε".to_string(),
            });
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ok_has_no_accusations() {
        let s = Syndrome::all_ok(4);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(s.accused().is_empty());
        assert!(s.iter().all(|b| b));
    }

    #[test]
    fn set_and_accuse() {
        let mut s = Syndrome::all_ok(4);
        s.set(NodeId::new(3), false);
        assert!(!s.opinion(NodeId::new(3)));
        assert!(s.opinion(NodeId::new(1)));
        assert_eq!(s.accused(), vec![NodeId::new(3)]);
        assert_eq!(s.to_string(), "1101");
    }

    #[test]
    fn encode_decode_roundtrip() {
        for n in [1, 4, 7, 8, 9, 16, 31] {
            let mut s = Syndrome::all_ok(n);
            for j in (0..n).step_by(3) {
                s.set(NodeId::from_slot(j), false);
            }
            let enc = s.encode();
            assert_eq!(enc.len(), n.div_ceil(8), "N bits on the wire");
            assert_eq!(Syndrome::decode(&enc, n), s);
        }
    }

    #[test]
    fn four_node_message_is_one_byte() {
        // The paper's prototype: "The bandwidth required for each
        // diagnostic message is N = 4 bits."
        assert_eq!(Syndrome::all_ok(4).encode().len(), 1);
    }

    #[test]
    fn decode_is_total_on_garbage() {
        // Short payload: missing bits read as 0 (accusations).
        let s = Syndrome::decode(b"", 4);
        assert_eq!(s.accused().len(), 4);
        // Long payload: extra bytes ignored.
        let s = Syndrome::decode(&[0b1111, 0xAB, 0xCD], 4);
        assert!(s.iter().all(|b| b));
    }

    #[test]
    fn format_row_matches_table1_style() {
        let mut s = Syndrome::all_ok(4);
        s.set(NodeId::new(3), false);
        s.set(NodeId::new(4), false);
        assert_eq!(format_row(&Some(s), 0, 4), "- 1 0 0");
        assert_eq!(format_row(&None, 2, 4), "ε ε - ε");
    }
}
