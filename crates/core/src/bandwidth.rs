//! Bandwidth accounting for the protocol variants.
//!
//! The paper's portability argument leans on cost: "the bandwidth required
//! is O(N) bits per message and O(N²) bits per round" (Sec. 2), and the
//! prototype's diagnostic messages "were as small as N bits" (Sec. 10).
//! This module computes those costs from the *actual wire encodings* used
//! by the implementation, so the claims are checked against the code rather
//! than restated.

use serde::{Deserialize, Serialize};

use crate::syndrome::Syndrome;

/// The protocol variant whose bandwidth is being accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// The add-on diagnostic protocol (Alg. 1): one local syndrome per
    /// message.
    AddOnDiagnosis,
    /// The membership variant (Sec. 7): minority accusations fold into the
    /// same syndrome — no extra bits.
    AddOnMembership,
    /// The low-latency system-level variant (Sec. 10): a sliding window of
    /// per-slot opinions plus an accusation vector per message.
    SystemLevel,
}

impl Variant {
    /// Payload bits per message for an `N`-node cluster (information
    /// content, before byte padding).
    pub fn bits_per_message(self, n: usize) -> usize {
        match self {
            Variant::AddOnDiagnosis | Variant::AddOnMembership => n,
            Variant::SystemLevel => 2 * n,
        }
    }

    /// Payload bytes actually put on the wire per message (with byte
    /// padding), matching the concrete encoders.
    pub fn bytes_per_message(self, n: usize) -> usize {
        match self {
            Variant::AddOnDiagnosis | Variant::AddOnMembership => n.div_ceil(8),
            Variant::SystemLevel => 2 * n.div_ceil(8),
        }
    }

    /// Payload bits per TDMA round (`N` messages per round).
    pub fn bits_per_round(self, n: usize) -> usize {
        n * self.bits_per_message(n)
    }

    /// Protocol bandwidth in bits/second given the round length.
    pub fn bits_per_second(self, n: usize, round: tt_sim::Nanos) -> f64 {
        self.bits_per_round(n) as f64 / round.as_secs_f64()
    }
}

/// One row of a bandwidth comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthRow {
    /// The variant.
    pub variant: Variant,
    /// Bits per message.
    pub per_message_bits: usize,
    /// Bytes on the wire per message.
    pub per_message_bytes: usize,
    /// Bits per round.
    pub per_round_bits: usize,
    /// Bits per second at the given round length.
    pub bits_per_second: f64,
}

/// The bandwidth table for all variants at cluster size `n`.
pub fn bandwidth_table(n: usize, round: tt_sim::Nanos) -> Vec<BandwidthRow> {
    [
        Variant::AddOnDiagnosis,
        Variant::AddOnMembership,
        Variant::SystemLevel,
    ]
    .into_iter()
    .map(|v| BandwidthRow {
        variant: v,
        per_message_bits: v.bits_per_message(n),
        per_message_bytes: v.bytes_per_message(n),
        per_round_bits: v.bits_per_round(n),
        bits_per_second: v.bits_per_second(n, round),
    })
    .collect()
}

/// Verifies the accounting against the concrete encoder: the add-on's
/// diagnostic message really is `ceil(N/8)` bytes.
pub fn verify_against_encoders(n: usize) -> bool {
    let encoded = Syndrome::all_ok(n).encode().len();
    encoded == Variant::AddOnDiagnosis.bytes_per_message(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sim::Nanos;

    #[test]
    fn paper_prototype_costs() {
        // "The bandwidth required for each diagnostic message is N = 4
        // bits" — and O(N^2) = 16 bits per round.
        assert_eq!(Variant::AddOnDiagnosis.bits_per_message(4), 4);
        assert_eq!(Variant::AddOnDiagnosis.bits_per_round(4), 16);
        assert_eq!(Variant::AddOnMembership.bits_per_message(4), 4);
        // The low-latency variant pays 2N bits for its window + accusations.
        assert_eq!(Variant::SystemLevel.bits_per_message(4), 8);
    }

    #[test]
    fn accounting_matches_encoders() {
        for n in [2usize, 4, 7, 8, 9, 16, 64] {
            assert!(verify_against_encoders(n), "n = {n}");
        }
    }

    #[test]
    fn throughput_at_paper_round_length() {
        // 16 bits per 2.5 ms round = 6.4 kbit/s of protocol overhead.
        let bps = Variant::AddOnDiagnosis.bits_per_second(4, Nanos::from_micros(2_500));
        assert!((bps - 6_400.0).abs() < 1e-9);
    }

    #[test]
    fn table_covers_all_variants() {
        let t = bandwidth_table(4, Nanos::from_micros(2_500));
        assert_eq!(t.len(), 3);
        assert!(t[0].per_round_bits < t[2].per_round_bits);
        assert_eq!(t[1].per_message_bytes, 1);
    }

    #[test]
    fn scaling_is_quadratic_per_round() {
        let b8 = Variant::AddOnDiagnosis.bits_per_round(8);
        let b16 = Variant::AddOnDiagnosis.bits_per_round(16);
        assert_eq!(b16, 4 * b8, "doubling N quadruples the round cost");
    }
}
