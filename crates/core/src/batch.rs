//! Batched diagnostic protocol: `B` independent protocol instances advanced
//! in lockstep over a [`tt_sim::BatchCluster`].
//!
//! [`BatchDiagJob`] is the structure-of-arrays counterpart of
//! [`crate::DiagJob`]:
//! per-(observer, subject) penalty and reward counters are contiguous
//! `[u64; B]` lane arrays, health vectors and syndrome rows are packed
//! `u64` bitmasks, and both the H-maj column vote and the Alg. 2 counter
//! update run as branch-free bulk loops over lanes (the per-lane "branches"
//! are 0/1 multiplications, so the compiler can auto-vectorize them).
//!
//! The batched protocol reproduces the scalar `DiagJob` byte for byte under
//! the scalar engine's standard configuration: schedule offset 0 for every
//! job (`l = 0`, `send_curr_round = true`), mixed send alignment
//! (`all_send_curr_round = false`, diagnosis lag 3), an accurate collision
//! detector, and [`crate::ReintegrationPolicy::Never`]. Per-lane state
//! divergence
//! (different fault schedules, thresholds, or experiment lengths) is the
//! point of batching; *configuration* divergence beyond the per-lane `P`/`R`
//! thresholds is not supported — reintegration, `all_send_curr_round`, and
//! per-cluster tracing/metrics remain scalar-only paths.
//!
//! Equivalence with the scalar path is enforced three ways: the unit tests
//! here compare every counter against a scalar [`crate::DiagJob`] run, the
//! workspace `batch_equivalence` proptest does the same over random fault
//! schedules and batch sizes, and `tt-fault`'s batched schedule evaluator
//! asserts fingerprint identity against the scalar explorer on the
//! committed regression corpus.

use std::hash::Hasher;

use tt_sim::{BatchLanes, Fnv1a64, LockstepJob, NodeId, RoundIndex};

use crate::protocol::{CounterSample, HealthRecord, IsolationEvent};

/// Diagnosis lag of the supported (mixed-alignment) configuration: the
/// activation of round `k` diagnoses round `k - 3`.
const LAG: u64 = 3;

/// Per-lane protocol parameters: the tunable thresholds of Alg. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLaneParams {
    /// Penalty threshold `P` (isolation on *exceeding* it).
    pub penalty_threshold: u64,
    /// Reward threshold `R` (forgiveness on *reaching* it).
    pub reward_threshold: u64,
}

/// The batched diagnostic protocol state of all `N` observers across all
/// `B` lanes (see the [module docs](self) for layout and semantics).
#[derive(Debug, Clone)]
pub struct BatchDiagJob {
    n: usize,
    b: usize,
    /// Criticality per subject (shared across lanes, like the scalar
    /// default configuration).
    crit: Vec<u64>,
    /// Per-lane penalty threshold `P`.
    pthresh: Vec<u64>,
    /// Per-lane reward threshold `R`.
    rthresh: Vec<u64>,
    /// Penalty counters: `[(i * n + j) * b + lane]` (observer `i` about
    /// subject `j`).
    pen: Vec<u64>,
    /// Reward counters, same layout.
    rew: Vec<u64>,
    /// The syndrome each observer transmits this round (= its aligned local
    /// syndrome of round `k - 1`): `[i * b + lane]`.
    row_tx: Vec<u64>,
    /// The observer's own diagnostic-matrix row (= what it transmitted in
    /// round `k - 1`, i.e. its aligned local syndrome of `k - 2`).
    row_prev: Vec<u64>,
    /// Isolation decisions per `[lane * n + observer]`.
    isolations: Vec<Vec<IsolationEvent>>,
    /// Forgiveness events per lane, summed over observers and subjects.
    fgv: Vec<u64>,
    record: bool,
    /// Health vectors per `[lane * n + observer]` (recording mode only).
    health_logs: Vec<Vec<HealthRecord>>,
    /// Counter samples per `[lane * n + observer]` (recording mode only).
    counter_logs: Vec<Vec<CounterSample>>,
    fingerprint: bool,
    /// Per-lane protocol-state fingerprints, one per diagnosed round, in
    /// the exact byte stream of the scalar explorer's state hash.
    fps: Vec<Vec<u64>>,
    /// Per-lane running hasher of the current round (scratch).
    hashers: Vec<Fnv1a64>,
    // Per-lane scratch arrays, allocated once.
    rp: Vec<u64>,
    pc: Vec<u32>,
    okc: Vec<u32>,
    acc: Vec<u64>,
    hv: Vec<u64>,
    coll: Vec<u64>,
    iso: Vec<u64>,
}

/// Spreads the low 8 bits of `m` into the 8 bytes of a `u64` (byte `j` =
/// bit `j` of `m`, as 0/1) — the SWAR step of the bit-sliced column tally.
///
/// The multiply replicates `m` into every byte, the diagonal mask keeps bit
/// `j` in byte `j`, and the `+ 0x7F` / `>> 7` pair normalizes each surviving
/// bit to 1 (no carry can cross a byte: the per-byte sum is at most
/// `0x80 + 0x7F`).
#[inline]
fn spread8(m: u64) -> u64 {
    let t = m.wrapping_mul(0x0101_0101_0101_0101) & 0x8040_2010_0804_0201;
    (t.wrapping_add(0x7F7F_7F7F_7F7F_7F7F) >> 7) & 0x0101_0101_0101_0101
}

impl BatchDiagJob {
    /// Creates the protocol state for `lanes.len()` lanes of `n` nodes with
    /// uniform criticality 1 (the scalar builder default). Health recording
    /// and fingerprinting start disabled — enable what the workload needs
    /// via [`BatchDiagJob::with_recording`] /
    /// [`BatchDiagJob::with_fingerprints`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `2..=64` or `lanes` is empty.
    pub fn new(n: usize, lanes: &[BatchLaneParams]) -> Self {
        assert!(
            (2..=tt_sim::MAX_BATCH_NODES).contains(&n),
            "batched protocol supports 2..=64 nodes"
        );
        assert!(!lanes.is_empty(), "at least one lane");
        let b = lanes.len();
        let all_ok = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        BatchDiagJob {
            n,
            b,
            crit: vec![1; n],
            pthresh: lanes.iter().map(|l| l.penalty_threshold).collect(),
            rthresh: lanes.iter().map(|l| l.reward_threshold).collect(),
            pen: vec![0; n * n * b],
            rew: vec![0; n * n * b],
            // Round 0 transmits the initial all-ok syndrome, exactly like
            // the scalar alignment buffers' `prev_al_ls` seed.
            row_tx: vec![all_ok; n * b],
            row_prev: vec![0; n * b],
            isolations: vec![Vec::new(); n * b],
            fgv: vec![0; b],
            record: false,
            health_logs: vec![Vec::new(); n * b],
            counter_logs: vec![Vec::new(); n * b],
            fingerprint: false,
            fps: vec![Vec::new(); b],
            hashers: vec![Fnv1a64::new(); b],
            rp: vec![0; b],
            pc: vec![0; b],
            okc: vec![0; b],
            acc: vec![0; b],
            hv: vec![0; b],
            coll: vec![0; b],
            iso: vec![0; b],
        }
    }

    /// Sets per-subject criticalities (shared by all lanes).
    ///
    /// # Panics
    ///
    /// Panics if `crit.len() != n`.
    pub fn with_criticalities(mut self, crit: Vec<u64>) -> Self {
        assert_eq!(crit.len(), self.n, "one criticality per node");
        self.crit = crit;
        self
    }

    /// Enables per-(lane, observer) health-vector and counter recording —
    /// the allocating inspection mode the equivalence tests compare against
    /// scalar [`crate::DiagJob`] logs.
    pub fn with_recording(mut self) -> Self {
        self.record = true;
        self
    }

    /// Enables per-lane protocol-state fingerprinting, reserving capacity
    /// for `rounds` rounds up front so steady-state rounds stay
    /// allocation-free.
    pub fn with_fingerprints(mut self, rounds: u64) -> Self {
        self.fingerprint = true;
        let cap = rounds.saturating_sub(LAG) as usize;
        for fp in &mut self.fps {
            fp.reserve_exact(cap);
        }
        self
    }

    /// Cluster size `N`.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Batch width `B`.
    pub fn batch(&self) -> usize {
        self.b
    }

    /// Observer `i`'s penalty counter about `subject` in `lane`.
    pub fn penalty(&self, lane: usize, i: usize, subject: usize) -> u64 {
        self.pen[(i * self.n + subject) * self.b + lane]
    }

    /// Observer `i`'s reward counter about `subject` in `lane`.
    pub fn reward(&self, lane: usize, i: usize, subject: usize) -> u64 {
        self.rew[(i * self.n + subject) * self.b + lane]
    }

    /// The isolation decisions observer `i` took in `lane`, in decision
    /// order (always tracked, in every mode).
    pub fn isolation_events(&self, lane: usize, i: usize) -> &[IsolationEvent] {
        &self.isolations[lane * self.n + i]
    }

    /// Forgiveness events in `lane` — every reward run reaching `R` and
    /// zeroing a pending penalty, summed over all observers and subjects
    /// (always tracked, in every mode).
    pub fn forgiveness(&self, lane: usize) -> u64 {
        self.fgv[lane]
    }

    /// Observer `i`'s health-vector log in `lane` (recording mode only;
    /// empty otherwise).
    pub fn health_log(&self, lane: usize, i: usize) -> &[HealthRecord] {
        &self.health_logs[lane * self.n + i]
    }

    /// Observer `i`'s counter-sample log in `lane` (recording mode only;
    /// empty otherwise).
    pub fn counter_trace(&self, lane: usize, i: usize) -> &[CounterSample] {
        &self.counter_logs[lane * self.n + i]
    }

    /// The per-round protocol-state fingerprints of `lane` (fingerprint
    /// mode only; empty otherwise). Byte-compatible with the scalar
    /// explorer's state hash: one FNV-1a of every observer's health vector
    /// and post-update counters per diagnosed round.
    pub fn fingerprints(&self, lane: usize) -> &[u64] {
        &self.fps[lane]
    }

    /// Folds `lane`'s fingerprints into a single digest (FNV-1a over the
    /// little-endian fingerprint words).
    pub fn digest(&self, lane: usize) -> u64 {
        digest_fingerprints(&self.fps[lane])
    }
}

/// Folds a fingerprint stream into one digest word (FNV-1a over the
/// little-endian `u64`s) — the per-experiment outcome the batched campaign
/// records and compares against the scalar path.
pub fn digest_fingerprints(fps: &[u64]) -> u64 {
    let mut h = Fnv1a64::new();
    for fp in fps {
        h.write(&fp.to_le_bytes());
    }
    h.finish()
}

impl LockstepJob for BatchDiagJob {
    fn execute(&mut self, lanes: &mut BatchLanes) {
        let n = self.n;
        let b = self.b;
        debug_assert_eq!(lanes.n_nodes(), n);
        debug_assert_eq!(lanes.batch(), b);
        let k = lanes.round();
        // Phase 2 (dissemination): every observer transmits its aligned
        // local syndrome of round k - 1 (send alignment chooses the
        // previous aligned syndrome for offset-0 schedules).
        for i in 0..n {
            let row = &self.row_tx[i * b..(i + 1) * b];
            lanes.tx_row_mut(i).copy_from_slice(row);
        }
        // Phases 4 & 5 (analysis + counter update) for diagnosed round
        // k - 3, once the pipeline is full.
        if k >= LAG {
            self.analyze(lanes, k);
        }
        // Alg. 1 lines 16-17 (commit): the syndrome transmitted this round
        // becomes next round's own matrix row, and the *current* validity
        // bits (= aligned local syndrome of this activation) become the next
        // transmission.
        std::mem::swap(&mut self.row_prev, &mut self.row_tx);
        for i in 0..n {
            let validity = &lanes.validity_row(i)[..b];
            let live = &lanes.live()[..b];
            let row = &mut self.row_tx[i * b..i * b + b];
            let prev = &self.row_prev[i * b..i * b + b];
            for lane in 0..b {
                let lv = live[lane];
                let keep = 0u64.wrapping_sub(lv ^ 1);
                // Live lanes take the fresh validity mask; retired lanes
                // keep the frozen rotation intact.
                row[lane] = (validity[lane] & !keep) | (prev[lane] & keep);
            }
        }
        // Un-swap the frozen lanes' row_prev: for them nothing rotates.
        // (Handled implicitly: row_prev of a frozen lane was its old
        // row_tx, but frozen lanes are never analyzed or transmitted again,
        // so their rotation state is unobservable.)
    }
}

impl BatchDiagJob {
    /// H-maj votes every matrix column and applies Alg. 2, for every
    /// observer and lane, for diagnosed round `k - 3`.
    fn analyze(&mut self, lanes: &mut BatchLanes, k: u64) {
        let n = self.n;
        let b = self.b;
        let diagnosed = k - LAG;
        self.coll.copy_from_slice(lanes.collision_row(diagnosed));
        if self.fingerprint {
            self.hashers.fill(Fnv1a64::new());
        }
        for i in 0..n {
            // Present matrix rows: validity ∧ ever-received, with the
            // observer's own row forced in (a node always knows what it
            // sent, even through a bus fault — Lemma 3).
            {
                let validity = &lanes.validity_row(i)[..b];
                let present = &lanes.present_row(i)[..b];
                let rps = &mut self.rp[..b];
                let pcs = &mut self.pc[..b];
                let own = 1u64 << i;
                for lane in 0..b {
                    let rp = (validity[lane] & present[lane]) | own;
                    rps[lane] = rp;
                    pcs[lane] = rp.count_ones();
                }
            }
            // H-maj vote per column j: majority over the present rows'
            // opinions, excluding row j (the subject's self-opinion); ties
            // and empty columns default to healthy, except that an
            // undecidable own column falls back to the collision detector
            // of the diagnosed round (Alg. 1 line 14).
            if n <= 8 {
                // Bit-sliced tally: one pass over the rows accumulates every
                // column at once — byte `j` of `acc[lane]` counts the ok
                // votes for subject `j` over all present rows, *including*
                // row `j`'s self-opinion, which the resolution pass below
                // subtracts back out. Cuts the N³ tally to N² row visits.
                let acc = &mut self.acc[..b];
                let rp = &self.rp[..b];
                acc.fill(0);
                for r in 0..n {
                    let row = if r == i {
                        &self.row_prev[i * b..i * b + b]
                    } else {
                        &lanes.syndrome_row(i, r)[..b]
                    };
                    for lane in 0..b {
                        let pr = 0u64.wrapping_sub((rp[lane] >> r) & 1);
                        acc[lane] += spread8(row[lane] & pr & 0xFF);
                    }
                }
                let pc = &self.pc[..b];
                let coll = &self.coll[..b];
                let hv = &mut self.hv[..b];
                for j in 0..n {
                    let rowj = if j == i {
                        &self.row_prev[i * b..i * b + b]
                    } else {
                        &lanes.syndrome_row(i, j)[..b]
                    };
                    let bit = 1u64 << j;
                    let own_column = (j == i) as u64;
                    for lane in 0..b {
                        let present_j = (rp[lane] >> j) & 1;
                        let self_vote = ((rowj[lane] >> j) & present_j) as u32;
                        let okc = ((acc[lane] >> (8 * j)) & 0xFF) as u32 - self_vote;
                        let votes = pc[lane] - present_j as u32;
                        let voted = (2 * okc >= votes) as u64;
                        let undecidable = (votes == 0) as u64;
                        // Undecidable is only reachable on the own column
                        // (the forced own row votes on every other column).
                        let fallback = (coll[lane] >> i) & 1 | (own_column ^ 1);
                        let h = voted & (undecidable ^ 1) | (fallback & undecidable);
                        hv[lane] = (hv[lane] & !bit) | (h << j);
                    }
                }
            } else {
                for j in 0..n {
                    let okc = &mut self.okc[..b];
                    let rp = &self.rp[..b];
                    okc.fill(0);
                    for r in 0..n {
                        if r == j {
                            continue;
                        }
                        let row = if r == i {
                            &self.row_prev[i * b..i * b + b]
                        } else {
                            &lanes.syndrome_row(i, r)[..b]
                        };
                        for lane in 0..b {
                            let pr = (rp[lane] >> r) & 1;
                            okc[lane] += ((row[lane] >> j) & pr) as u32;
                        }
                    }
                    let bit = 1u64 << j;
                    let own_column = (j == i) as u64;
                    let pc = &self.pc[..b];
                    let coll = &self.coll[..b];
                    let hv = &mut self.hv[..b];
                    for lane in 0..b {
                        let votes = pc[lane] - ((rp[lane] >> j) & 1) as u32;
                        let voted = (2 * okc[lane] >= votes) as u64;
                        let undecidable = (votes == 0) as u64;
                        // Undecidable is only reachable on the own column
                        // (the forced own row votes on every other column).
                        let fallback = (coll[lane] >> i) & 1 | (own_column ^ 1);
                        let h = voted & (undecidable ^ 1) | (fallback & undecidable);
                        hv[lane] = (hv[lane] & !bit) | (h << j);
                    }
                }
            }
            // Alg. 2, branch-free: penalties charge by criticality on a
            // faulty verdict, rewards accrue on healthy verdicts with a
            // pending penalty, reaching R forgives, exceeding P isolates.
            // Retired lanes and already-isolated subjects multiply out.
            self.iso[..b].fill(0);
            {
                let active = &lanes.active_row(i)[..b];
                let live = &lanes.live()[..b];
                let hv = &self.hv[..b];
                let iso = &mut self.iso[..b];
                let fgv = &mut self.fgv[..b];
                let pthresh = &self.pthresh[..b];
                let rthresh = &self.rthresh[..b];
                for j in 0..n {
                    let base = (i * n + j) * b;
                    let crit = self.crit[j];
                    let pen = &mut self.pen[base..base + b];
                    let rew = &mut self.rew[base..base + b];
                    for lane in 0..b {
                        let act = (active[lane] >> j) & live[lane];
                        let hvj = (hv[lane] >> j) & 1;
                        let pen0 = pen[lane];
                        let rew0 = rew[lane];
                        let faulty = act & (hvj ^ 1);
                        let reward_step = act & hvj & (pen0 > 0) as u64;
                        // 0/1 flags widened to all-ones masks: an AND is one
                        // cheap vector op where a 64-bit multiply is not.
                        let p1 = pen0 + (crit & 0u64.wrapping_sub(faulty));
                        let r1 = (rew0 & 0u64.wrapping_sub(faulty ^ 1)) + reward_step;
                        let forgive = reward_step & (r1 >= rthresh[lane]) as u64;
                        let keep = 0u64.wrapping_sub(forgive ^ 1);
                        pen[lane] = p1 & keep;
                        rew[lane] = r1 & keep;
                        fgv[lane] += forgive;
                        iso[lane] |= (faulty & (p1 > pthresh[lane]) as u64) << j;
                    }
                }
            }
            // Isolation decisions: clear the observer's activity bits and
            // record the events (node order, like the scalar newly-isolated
            // sweep). Rare, so a per-lane branch on the zero mask is fine.
            for lane in 0..b {
                let mut mask = self.iso[lane];
                while mask != 0 {
                    let j = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    lanes.isolate(i, j, lane);
                    self.isolations[lane * n + i].push(IsolationEvent {
                        node: NodeId::from_slot(j),
                        decided_at: RoundIndex::new(k),
                        diagnosed: RoundIndex::new(diagnosed),
                    });
                }
            }
            if self.record {
                for lane in 0..b {
                    if lanes.live()[lane] == 0 {
                        continue;
                    }
                    let slot = lane * n + i;
                    self.health_logs[slot].push(HealthRecord {
                        diagnosed: RoundIndex::new(diagnosed),
                        decided_at: RoundIndex::new(k),
                        health: (0..n).map(|j| (self.hv[lane] >> j) & 1 == 1).collect(),
                    });
                    let base = i * n * b;
                    self.counter_logs[slot].push(CounterSample {
                        diagnosed: RoundIndex::new(diagnosed),
                        penalties: (0..n).map(|j| self.pen[base + j * b + lane]).collect(),
                        rewards: (0..n).map(|j| self.rew[base + j * b + lane]).collect(),
                    });
                }
            }
            if self.fingerprint {
                // The scalar state-hash byte stream, per observer: a
                // present marker, the health vector, then the post-update
                // penalty and reward counters (little endian). Retired
                // lanes' hashers run on garbage and are never finished.
                // Lane-inner order keeps the per-lane FNV dependency chains
                // interleaved, hiding the multiply latency.
                let hashers = &mut self.hashers[..b];
                for h in hashers.iter_mut() {
                    h.write(&[1]);
                }
                let hv = &self.hv[..b];
                for j in 0..n {
                    for (h, v) in hashers.iter_mut().zip(hv) {
                        h.write(&[((v >> j) & 1) as u8]);
                    }
                }
                for j in 0..n {
                    let base = (i * n + j) * b;
                    let pen = &self.pen[base..base + b];
                    for (h, p) in hashers.iter_mut().zip(pen) {
                        h.write(&p.to_le_bytes());
                    }
                }
                for j in 0..n {
                    let base = (i * n + j) * b;
                    let rew = &self.rew[base..base + b];
                    for (h, r) in hashers.iter_mut().zip(rew) {
                        h.write(&r.to_le_bytes());
                    }
                }
            }
        }
        if self.fingerprint {
            let live = &lanes.live()[..b];
            for (lane, &lv) in live.iter().enumerate() {
                if lv == 1 {
                    self.fps[lane].push(self.hashers[lane].finish());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiagJob, ProtocolConfig};
    use tt_sim::{
        BatchCluster, BatchFaultPlan, Cluster, ClusterBuilder, LaneEffect, LaneFault, SlotEffect,
        TxCtx,
    };

    type ScalarPipeline = Box<dyn FnMut(&TxCtx) -> SlotEffect + Send>;

    fn scalar_cluster(
        n: usize,
        p: u64,
        r: u64,
        pipeline: impl FnMut(&TxCtx) -> SlotEffect + Send + 'static,
    ) -> Cluster {
        let cfg = ProtocolConfig::builder(n)
            .penalty_threshold(p)
            .reward_threshold(r)
            .build()
            .expect("valid config");
        ClusterBuilder::new(n).build_with_jobs(
            move |id| Box::new(DiagJob::new(id, cfg.clone()).with_counter_trace()),
            Box::new(pipeline),
        )
    }

    /// Asserts lane `lane` of the batched run matches the scalar cluster's
    /// protocol state exactly: health vectors, counter samples, isolation
    /// events, counters and activity.
    fn assert_lane_matches(job: &BatchDiagJob, cluster: &Cluster, lane: usize) {
        let n = job.n_nodes();
        for i in 0..n {
            let scalar: &DiagJob = cluster
                .job_as(tt_sim::NodeId::from_slot(i))
                .expect("diag job");
            assert_eq!(
                job.health_log(lane, i),
                scalar.health_log(),
                "health log of observer {i}"
            );
            assert_eq!(
                job.counter_trace(lane, i),
                scalar.counter_trace(),
                "counter trace of observer {i}"
            );
            assert_eq!(
                job.isolation_events(lane, i),
                scalar.isolations(),
                "isolations of observer {i}"
            );
            for j in 0..n {
                let node = tt_sim::NodeId::from_slot(j);
                assert_eq!(job.penalty(lane, i, j), scalar.penalty(node));
                assert_eq!(job.reward(lane, i, j), scalar.reward(node));
            }
        }
    }

    #[test]
    fn healthy_batch_matches_scalar() {
        let mut batch = BatchCluster::new(5, vec![BatchFaultPlan::correct(); 3]).unwrap();
        let mut job = BatchDiagJob::new(
            5,
            &[BatchLaneParams {
                penalty_threshold: 3,
                reward_threshold: 2,
            }; 3],
        )
        .with_recording();
        batch.run_rounds(20, &mut job);
        let mut scalar = scalar_cluster(5, 3, 2, |_| SlotEffect::Correct);
        scalar.run_rounds(20);
        for lane in 0..3 {
            assert_lane_matches(&job, &scalar, lane);
        }
        // Steady state: everybody healthy, no counters moving.
        assert!(job
            .health_log(0, 0)
            .iter()
            .all(|h| h.health.iter().all(|&x| x)));
        assert_eq!(job.health_log(0, 0).len(), 17, "rounds - lag records");
    }

    #[test]
    fn benign_crash_isolates_in_lockstep_with_scalar() {
        let plan = BatchFaultPlan::new(vec![LaneFault {
            slot: 2,
            first_round: 5,
            hits: u64::MAX,
            stride: 1,
            effect: LaneEffect::Benign,
        }]);
        let mut batch = BatchCluster::new(4, vec![plan]).unwrap();
        let mut job = BatchDiagJob::new(
            4,
            &[BatchLaneParams {
                penalty_threshold: 3,
                reward_threshold: 10,
            }],
        )
        .with_recording();
        batch.run_rounds(20, &mut job);
        let mut scalar = scalar_cluster(4, 3, 10, |ctx: &TxCtx| {
            if ctx.sender.index() == 2 && ctx.round.as_u64() >= 5 {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        scalar.run_rounds(20);
        assert_lane_matches(&job, &scalar, 0);
        assert_eq!(job.isolation_events(0, 0).len(), 1, "node 3 isolated");
    }

    #[test]
    fn transient_and_malicious_faults_match_scalar() {
        let accuse_all_but_sender = 0b0010u64; // only node 2 claimed ok
        let plans = vec![
            BatchFaultPlan::new(vec![LaneFault {
                slot: 1,
                first_round: 6,
                hits: 3,
                stride: 2,
                effect: LaneEffect::Benign,
            }]),
            BatchFaultPlan::new(vec![LaneFault {
                slot: 1,
                first_round: 6,
                hits: 2,
                stride: 1,
                effect: LaneEffect::Malicious {
                    mask: accuse_all_but_sender,
                },
            }]),
            BatchFaultPlan::new(vec![LaneFault {
                slot: 3,
                first_round: 7,
                hits: 4,
                stride: 1,
                effect: LaneEffect::Asymmetric {
                    detected_by: 0b0011,
                    collision_ok: true,
                },
            }]),
        ];
        let mut batch = BatchCluster::new(4, plans).unwrap();
        let params = BatchLaneParams {
            penalty_threshold: 2,
            reward_threshold: 3,
        };
        let mut job = BatchDiagJob::new(4, &[params; 3]).with_recording();
        batch.run_rounds(24, &mut job);

        let scalars: Vec<ScalarPipeline> = vec![
            Box::new(|ctx: &TxCtx| {
                let r = ctx.round.as_u64();
                if ctx.sender.index() == 1 && r >= 6 && (r - 6).is_multiple_of(2) && (r - 6) / 2 < 3
                {
                    SlotEffect::Benign
                } else {
                    SlotEffect::Correct
                }
            }),
            Box::new(move |ctx: &TxCtx| {
                let r = ctx.round.as_u64();
                if ctx.sender.index() == 1 && (6..8).contains(&r) {
                    SlotEffect::SymmetricMalicious {
                        payload: bytes::Bytes::from(vec![accuse_all_but_sender as u8]),
                    }
                } else {
                    SlotEffect::Correct
                }
            }),
            Box::new(|ctx: &TxCtx| {
                let r = ctx.round.as_u64();
                if ctx.sender.index() == 3 && (7..11).contains(&r) {
                    SlotEffect::Asymmetric {
                        detected_by: vec![0, 1],
                        collision_ok: true,
                    }
                } else {
                    SlotEffect::Correct
                }
            }),
        ];
        for (lane, pipeline) in scalars.into_iter().enumerate() {
            let mut scalar = scalar_cluster(4, 2, 3, pipeline);
            scalar.run_rounds(24);
            assert_lane_matches(&job, &scalar, lane);
        }
    }

    #[test]
    fn per_lane_thresholds_diverge_independently() {
        // Same persistent fault in both lanes; lane 0's low P isolates
        // early, lane 1's high P never does.
        let plan = BatchFaultPlan::new(vec![LaneFault {
            slot: 0,
            first_round: 4,
            hits: u64::MAX,
            stride: 1,
            effect: LaneEffect::Benign,
        }]);
        let mut batch = BatchCluster::new(4, vec![plan.clone(), plan]).unwrap();
        let mut job = BatchDiagJob::new(
            4,
            &[
                BatchLaneParams {
                    penalty_threshold: 2,
                    reward_threshold: 5,
                },
                BatchLaneParams {
                    penalty_threshold: 1_000_000,
                    reward_threshold: 5,
                },
            ],
        );
        batch.run_rounds(30, &mut job);
        assert_eq!(job.isolation_events(0, 1).len(), 1, "lane 0 isolates");
        assert!(job.isolation_events(1, 1).is_empty(), "lane 1 tolerates");
        assert!(job.penalty(1, 1, 0) > job.penalty(0, 1, 0));
    }

    #[test]
    fn fingerprints_are_deterministic_and_lane_local() {
        let plan = BatchFaultPlan::new(vec![LaneFault {
            slot: 1,
            first_round: 5,
            hits: 2,
            stride: 1,
            effect: LaneEffect::Benign,
        }]);
        let params = BatchLaneParams {
            penalty_threshold: 3,
            reward_threshold: 2,
        };
        let run = |plans: Vec<BatchFaultPlan>| {
            let b = plans.len();
            let mut batch = BatchCluster::new(4, plans).unwrap();
            let mut job = BatchDiagJob::new(4, &vec![params; b]).with_fingerprints(16);
            batch.run_rounds(16, &mut job);
            (0..b)
                .map(|l| job.fingerprints(l).to_vec())
                .collect::<Vec<_>>()
        };
        let a = run(vec![BatchFaultPlan::correct(), plan.clone()]);
        let b = run(vec![plan.clone(), BatchFaultPlan::correct(), plan]);
        assert_eq!(a[0], b[1], "fault-free lanes agree regardless of batch");
        assert_eq!(a[1], b[0], "faulty lanes agree regardless of position");
        assert_eq!(a[1], b[2], "duplicate plans agree");
        assert_ne!(a[0], a[1], "the fault changes the state trajectory");
        assert_eq!(a[0].len(), 13, "one fingerprint per diagnosed round");
        assert_eq!(
            digest_fingerprints(&a[0]),
            digest_fingerprints(&b[1]),
            "digests fold the same stream"
        );
    }

    #[test]
    fn recording_off_tracks_isolations_anyway() {
        let plan = BatchFaultPlan::new(vec![LaneFault {
            slot: 2,
            first_round: 4,
            hits: u64::MAX,
            stride: 1,
            effect: LaneEffect::Benign,
        }]);
        let mut batch = BatchCluster::new(4, vec![plan]).unwrap();
        let mut job = BatchDiagJob::new(
            4,
            &[BatchLaneParams {
                penalty_threshold: 1,
                reward_threshold: 5,
            }],
        );
        batch.run_rounds(16, &mut job);
        assert!(job.health_log(0, 0).is_empty(), "recording off");
        assert!(job.counter_trace(0, 0).is_empty());
        assert_eq!(job.isolation_events(0, 0).len(), 1);
        assert_eq!(
            job.isolation_events(0, 0)[0].node,
            tt_sim::NodeId::from_slot(2)
        );
    }

    #[test]
    fn criticalities_weight_penalties() {
        let plan = BatchFaultPlan::new(vec![LaneFault {
            slot: 0,
            first_round: 4,
            hits: 1,
            stride: 1,
            effect: LaneEffect::Benign,
        }]);
        let mut batch = BatchCluster::new(4, vec![plan]).unwrap();
        let mut job = BatchDiagJob::new(
            4,
            &[BatchLaneParams {
                penalty_threshold: 1_000_000,
                reward_threshold: 1_000_000,
            }],
        )
        .with_criticalities(vec![40, 6, 1, 1]);
        batch.run_rounds(10, &mut job);
        assert_eq!(job.penalty(0, 1, 0), 40, "criticality-40 charge");
    }
}
