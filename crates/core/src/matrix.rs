//! The diagnostic matrix (paper Sec. 5, Table 1).
//!
//! Row `i` of the matrix is the (aligned) local syndrome sent by node `i`;
//! column `j` collects the opinions of all nodes on node `j`. A whole row is
//! ε when the diagnostic message carrying it was locally detected as faulty.
//! The analysis phase votes `H-maj` over each column, discarding the
//! diagnosed node's opinion about itself.

use tt_sim::NodeId;

use crate::syndrome::{format_row, Syndrome, SyndromeRow};
use crate::voting::{h_maj, h_maj_tally, HMaj, VoteTally};

/// A diagnostic matrix for one diagnosed round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticMatrix {
    rows: Vec<SyndromeRow>,
}

impl DiagnosticMatrix {
    /// Builds a matrix from aligned rows (index = sender index; `None` = ε).
    ///
    /// # Panics
    ///
    /// Panics if any present row's length differs from the number of rows.
    pub fn new(rows: Vec<SyndromeRow>) -> Self {
        let n = rows.len();
        for (i, row) in rows.iter().enumerate() {
            if let Some(s) = row {
                assert_eq!(s.len(), n, "row {i} has wrong width");
            }
        }
        DiagnosticMatrix { rows }
    }

    /// Cluster size `N`.
    pub fn n_nodes(&self) -> usize {
        self.rows.len()
    }

    /// The row of `sender`, i.e. the syndrome it disseminated (ε = `None`).
    pub fn row(&self, sender: NodeId) -> &SyndromeRow {
        &self.rows[sender.index()]
    }

    /// Consumes the matrix, returning its row storage (so callers recycling
    /// scratch vectors can reclaim the allocation).
    pub fn into_rows(self) -> Vec<SyndromeRow> {
        self.rows
    }

    /// Iterates the votes of column `j` with the self-opinion of the
    /// diagnosed node removed, without materialising them.
    fn column_votes_iter(&self, diagnosed: NodeId) -> impl Iterator<Item = Option<bool>> + '_ {
        let j = diagnosed.index();
        self.rows
            .iter()
            .enumerate()
            .filter(move |(i, _)| *i != j)
            .map(move |(_, row)| row.as_ref().map(|s| s.get(j)))
    }

    /// The votes of column `j` with the self-opinion of the diagnosed node
    /// removed: `⟨al_dm_1[j], …, al_dm_{j-1}[j], al_dm_{j+1}[j], …⟩`.
    pub fn column_votes(&self, diagnosed: NodeId) -> Vec<Option<bool>> {
        self.column_votes_iter(diagnosed).collect()
    }

    /// Votes `H-maj` on the column of `diagnosed` (Alg. 1, lines 11–12).
    pub fn vote(&self, diagnosed: NodeId) -> HMaj {
        h_maj(self.column_votes_iter(diagnosed))
    }

    /// The full [`VoteTally`] of the column of `diagnosed`: bucket counts
    /// plus the `H-maj` outcome (observability view of
    /// [`DiagnosticMatrix::vote`]).
    pub fn tally(&self, diagnosed: NodeId) -> VoteTally {
        h_maj_tally(self.column_votes_iter(diagnosed))
    }

    /// Computes the consistent health vector for this matrix.
    ///
    /// For columns where the vote is `⊥` (no non-ε opinion at all), the
    /// protocol falls back to `collision_fallback(j)` — the local collision
    /// detector for the diagnosed round (Alg. 1, line 14). The fallback's
    /// `None` (no observation available) is conservatively treated as
    /// healthy, preserving correctness.
    pub fn consistent_health_vector(
        &self,
        collision_fallback: impl FnMut(NodeId) -> Option<bool>,
    ) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.n_nodes());
        self.consistent_health_vector_into(&mut out, collision_fallback);
        out
    }

    /// [`DiagnosticMatrix::consistent_health_vector`] writing into a reused
    /// buffer (cleared first), for allocation-free steady-state voting.
    pub fn consistent_health_vector_into(
        &self,
        out: &mut Vec<bool>,
        mut collision_fallback: impl FnMut(NodeId) -> Option<bool>,
    ) {
        out.clear();
        out.extend(NodeId::all(self.n_nodes()).map(|j| match self.vote(j) {
            HMaj::Decided(v) => v,
            HMaj::Undecidable => collision_fallback(j).unwrap_or(true),
        }));
    }

    /// Renders the matrix in the style of the paper's Table 1.
    pub fn render(&self) -> String {
        let n = self.n_nodes();
        let mut out = String::new();
        out.push_str("Accuser    | ");
        for j in 1..=n {
            out.push_str(&format!("{j} "));
        }
        out.push('\n');
        for i in 0..n {
            out.push_str(&format!(
                "Node {:<5} | {}\n",
                i + 1,
                format_row(&self.rows[i], i, n)
            ));
        }
        out
    }
}

/// Convenience constructor used by tests and examples: builds the matrix of
/// the paper's Table 1 scenario, where `faulty` nodes were benign faulty in
/// both the diagnosed round and the dissemination round.
pub fn matrix_with_benign_faulty(n: usize, faulty: &[NodeId]) -> DiagnosticMatrix {
    let mut obedient_view = Syndrome::all_ok(n);
    for &f in faulty {
        obedient_view.set(f, false);
    }
    let rows = NodeId::all(n)
        .map(|i| {
            if faulty.contains(&i) {
                None // their dissemination also failed: ε row
            } else {
                Some(obedient_view)
            }
        })
        .collect();
    DiagnosticMatrix::new(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voting::HMaj;

    /// The exact scenario of Table 1: nodes 3 and 4 benign faulty.
    #[test]
    fn table1_reproduction() {
        let m = matrix_with_benign_faulty(4, &[NodeId::new(3), NodeId::new(4)]);
        let hv = m.consistent_health_vector(|_| None);
        assert_eq!(hv, vec![true, true, false, false], "voted cons_hv 1 1 0 0");
    }

    #[test]
    fn table1_rendering_shows_epsilon_rows() {
        let m = matrix_with_benign_faulty(4, &[NodeId::new(3), NodeId::new(4)]);
        let s = m.render();
        assert!(s.contains("- 1 0 0"), "row 1 as in Table 1:\n{s}");
        assert!(s.contains("ε ε - ε"), "row 3 as in Table 1:\n{s}");
    }

    #[test]
    fn self_opinion_is_discarded() {
        // Node 2 claims itself healthy while everyone else accuses it.
        let mut liar_row = Syndrome::all_ok(3);
        liar_row.set(NodeId::new(1), false); // frame-up attempt
        let mut accuse2 = Syndrome::all_ok(3);
        accuse2.set(NodeId::new(2), false);
        let m = DiagnosticMatrix::new(vec![Some(accuse2), Some(liar_row), Some(accuse2)]);
        // Column 2 votes exclude row 2 entirely.
        assert_eq!(
            m.column_votes(NodeId::new(2)),
            vec![Some(false), Some(false)]
        );
        assert_eq!(m.vote(NodeId::new(2)), HMaj::Decided(false));
        // The frame-up on node 1 is outvoted 1 against 1... tie => healthy.
        assert_eq!(m.vote(NodeId::new(1)), HMaj::Decided(true));
    }

    #[test]
    fn undecidable_column_uses_collision_fallback() {
        // Blackout: every row ε. Self-diagnosis must consult coll-det.
        let m = DiagnosticMatrix::new(vec![None, None, None, None]);
        let hv = m.consistent_health_vector(|j| {
            // Pretend the local collision detector saw node 2's slot fail.
            Some(j != NodeId::new(2))
        });
        assert_eq!(hv, vec![true, false, true, true]);
        // Without an observation, default to healthy (correctness-first).
        let hv = m.consistent_health_vector(|_| None);
        assert_eq!(hv, vec![true; 4]);
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn rejects_misshaped_rows() {
        let _ = DiagnosticMatrix::new(vec![Some(Syndrome::all_ok(3)), None]);
    }

    #[test]
    fn tally_exposes_bucket_counts() {
        let m = matrix_with_benign_faulty(4, &[NodeId::new(3), NodeId::new(4)]);
        // Column 3: rows 1 and 2 accuse, row 4 is ε (self-row 3 excluded).
        let t = m.tally(NodeId::new(3));
        assert_eq!((t.ok, t.faulty, t.epsilon), (0, 2, 1));
        assert_eq!(t.outcome, HMaj::Decided(false));
        assert!(t.contested());
        // Column 1: rows 2 endorses, rows 3 and 4 are ε.
        let t = m.tally(NodeId::new(1));
        assert_eq!((t.ok, t.faulty, t.epsilon), (1, 0, 2));
        assert_eq!(t.outcome, HMaj::Decided(true));
        assert_eq!(t.outcome, m.vote(NodeId::new(1)));
    }

    #[test]
    fn accessors() {
        let m = matrix_with_benign_faulty(4, &[NodeId::new(3)]);
        assert_eq!(m.n_nodes(), 4);
        assert!(m.row(NodeId::new(3)).is_none());
        assert!(m.row(NodeId::new(1)).is_some());
    }
}
