//! # tt-core — the tunable add-on diagnostic & membership protocols
//!
//! This crate implements the primary contribution of the DSN 2007 paper
//! *"A Tunable Add-On Diagnostic Protocol for Time-Triggered Systems"*
//! (Serafini, Suri, Brandstätter, Vinter, Tagliabò, Ademaj, Koch):
//!
//! * the **on-line diagnostic protocol** (paper Sec. 5, Alg. 1): five
//!   pipelined phases — local detection, dissemination, aggregation,
//!   analysis, counter update — executed by an application-level job on
//!   every node, with **read alignment** and **send alignment** making the
//!   protocol correct under arbitrary node schedules ([`protocol::DiagJob`]);
//! * the **hybrid majority voting** function `H-maj` (Eqn. 1) over the
//!   columns of the **diagnostic matrix** ([`voting`], [`matrix`]);
//! * the **penalty/reward algorithm** (Alg. 2) that accumulates diagnostic
//!   information to discriminate external transient faults from
//!   intermittent/permanent ones, with per-node criticality levels
//!   ([`penalty`]);
//! * the **membership protocol** variant (Sec. 7) with *minority
//!   accusations* that detects cliques formed by asymmetric faults and
//!   maintains membership views ([`membership`]);
//! * the **low-latency system-level variant** (Sec. 10) with per-slot
//!   analysis and one-round detection latency ([`lowlat`]);
//! * machine-checkable **property oracles** for the correctness,
//!   completeness and consistency guarantees of Theorem 1
//!   ([`properties`]).
//!
//! The protocol is an ordinary [`tt_sim::Job`]: it uses only interface
//! variables, validity bits, the local collision detector, and the two
//! schedule parameters `l_i` / `send_curr_round_i` — exactly the
//! application-level facilities the paper allows.
//!
//! ## Quick start
//!
//! ```
//! use tt_core::{DiagJob, ProtocolConfig};
//! use tt_sim::{ClusterBuilder, NodeId, SlotEffect, TxCtx, RoundIndex};
//!
//! // Node 3 crashes (permanently benign faulty) from round 5 on.
//! let pipeline = |ctx: &TxCtx| {
//!     if ctx.sender == NodeId::new(3) && ctx.round >= RoundIndex::new(5) {
//!         SlotEffect::Benign
//!     } else {
//!         SlotEffect::Correct
//!     }
//! };
//! let config = ProtocolConfig::builder(4)
//!     .penalty_threshold(3)
//!     .reward_threshold(10)
//!     .build()?;
//! let mut cluster = ClusterBuilder::new(4).build_with_jobs(
//!     |id| Box::new(DiagJob::new(id, config.clone())),
//!     Box::new(pipeline),
//! );
//! cluster.run_rounds(20);
//! let diag: &DiagJob = cluster.job_as(NodeId::new(1))?;
//! assert!(!diag.is_active(NodeId::new(3)), "crashed node isolated");
//! assert!(diag.is_active(NodeId::new(1)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod bandwidth;
pub mod batch;
pub mod config;
pub mod error;
pub mod lowlat;
pub mod matrix;
pub mod membership;
pub mod penalty;
pub mod pipeline;
pub mod properties;
pub mod protocol;
pub mod syndrome;
pub mod voting;

pub use batch::{digest_fingerprints, BatchDiagJob, BatchLaneParams};
pub use config::{ProtocolConfig, ProtocolConfigBuilder};
pub use error::ProtocolError;
pub use matrix::DiagnosticMatrix;
pub use membership::{MembershipJob, MembershipView};
pub use penalty::{PenaltyReward, PrTransition, ReintegrationPolicy};
pub use protocol::{CounterSample, DiagJob, HealthRecord, IsolationEvent};
pub use syndrome::{Syndrome, SyndromeRow};
pub use voting::{h_maj, h_maj_tally, HMaj, VoteTally};
