//! The low-latency system-level variant (paper Sec. 10).
//!
//! The add-on protocol trades latency for portability: it constrains
//! nothing about node scheduling and pays up to four rounds of detection
//! latency. The paper sketches a **system-level variant** that constrains
//! the internal node scheduling instead: every node observes each slot as
//! it happens, appends its local syndrome (its opinions on the last `N`
//! slots) to every message it sends, and runs the analysis *right after
//! each slot*, diagnosing a single previous slot. One TDMA round after a
//! slot, all local syndromes needed to diagnose it are collected —
//! **detection latency: one round**; two chained executions implement the
//! membership function in **two rounds**.
//!
//! Because this variant lives below the application (in the communication
//! controller / system layer), it is modelled here with its own
//! slot-granular driver ([`LowLatCluster`]) that reuses the simulator's bus
//! semantics ([`tt_sim::apply_effect`]) rather than the once-per-round job
//! model.
//!
//! Frame format: each message carries `2N` bits — the **window** (opinions
//! on the `N` slots preceding the sending slot) and the **accusation
//! vector** (minority accusations derived from recently completed
//! verdicts), giving the 2-round membership composition.

use std::collections::BTreeMap;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use tt_sim::{apply_effect, FaultPipeline, NodeId, Reception, RoundIndex, TxCtx};

use crate::syndrome::Syndrome;
use crate::voting::{h_maj, HMaj};

/// A per-slot diagnosis produced by the low-latency variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotVerdict {
    /// Absolute slot index of the diagnosed slot.
    pub abs_slot: u64,
    /// Round containing the diagnosed slot.
    pub round: RoundIndex,
    /// The sender owning the diagnosed slot.
    pub sender: NodeId,
    /// Agreed health of the sender in that slot.
    pub healthy: bool,
    /// Absolute slot index at which the verdict was available.
    pub decided_at_slot: u64,
}

impl SlotVerdict {
    /// Detection latency of this verdict, in slots.
    pub fn latency_slots(&self) -> u64 {
        self.decided_at_slot - self.abs_slot
    }
}

/// A vote on a diagnosed slot as reconstructed at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Vote {
    /// Not yet received (should not remain by decision time).
    Pending,
    /// The carrying frame was locally detected faulty: ε.
    Eps,
    /// A received opinion: `true` = slot looked correct.
    Opinion(bool),
}

impl Vote {
    fn as_option(self) -> Option<bool> {
        match self {
            Vote::Opinion(v) => Some(v),
            _ => None,
        }
    }
}

/// The per-node state of the low-latency protocol.
#[derive(Debug, Clone)]
struct LowLatNode {
    index: usize,
    n: usize,
    /// Own local observations of recent slots, keyed by absolute slot.
    own_obs: BTreeMap<u64, bool>,
    /// Vote tables for slots awaiting diagnosis: `votes[j]` = opinion of
    /// node `j` on the diagnosed slot.
    pending: BTreeMap<u64, Vec<Vote>>,
    /// Latest accusation vector received from each node, with the absolute
    /// slot of the carrying frame (ε if that frame was invalid).
    last_acc: Vec<Option<(u64, Option<Vec<bool>>)>>,
    /// Own outstanding accusations: accused index → expiry (absolute slot).
    own_acc: BTreeMap<usize, u64>,
    /// Completed verdicts, in decision order.
    verdicts: Vec<SlotVerdict>,
    /// Membership: `true` while the node has never been excluded.
    in_view: Vec<bool>,
    /// View history: (installed at absolute slot, surviving members).
    view_log: Vec<(u64, Vec<NodeId>)>,
    membership: bool,
}

impl LowLatNode {
    fn new(index: usize, n: usize, membership: bool) -> Self {
        LowLatNode {
            index,
            n,
            own_obs: BTreeMap::new(),
            pending: BTreeMap::new(),
            last_acc: vec![None; n],
            own_acc: BTreeMap::new(),
            verdicts: Vec::new(),
            in_view: vec![true; n],
            view_log: Vec::new(),
            membership,
        }
    }

    /// Builds the payload for this node's own sending slot at `abs`:
    /// window (opinions on slots `abs-N .. abs-1`) + accusation vector.
    fn build_frame(&self, abs: u64) -> Bytes {
        let window: Vec<bool> = (0..self.n as u64)
            .map(|t| {
                let slot = abs as i64 - self.n as i64 + t as i64;
                if slot < 0 {
                    true // before the start of time: vacuously correct
                } else {
                    *self.own_obs.get(&(slot as u64)).unwrap_or(&true)
                }
            })
            .collect();
        let acc: Vec<bool> = (0..self.n)
            .map(|x| !self.own_acc.contains_key(&x)) // bit 0 = accused
            .collect();
        let mut bytes = Syndrome::from_bits(window).encode().to_vec();
        bytes.extend_from_slice(&Syndrome::from_bits(acc).encode());
        Bytes::from(bytes)
    }

    /// Splits a received frame into (window, accusations).
    fn decode_frame(&self, payload: &[u8]) -> (Syndrome, Vec<bool>) {
        let w_len = self.n.div_ceil(8);
        let window = Syndrome::decode(payload, self.n);
        let acc_bytes = payload.get(w_len..).unwrap_or(&[]);
        let acc = Syndrome::decode(acc_bytes, self.n);
        // Accusation bit semantics: 0 = accused (like syndromes).
        (window, (0..self.n).map(|x| !acc.get(x)).collect())
    }

    /// Processes the delivery of slot `abs` (sender index `s`).
    /// `validity` is this node's local view (collision detector for its own
    /// slot); `payload` is present iff the frame passed local detection.
    fn on_slot(&mut self, abs: u64, s: usize, validity: bool, payload: Option<&Bytes>) {
        // 1. Record the local observation (our own future window/vote).
        self.own_obs.insert(abs, validity);
        // 2. Our own vote on this slot.
        self.pending
            .entry(abs)
            .or_insert_with(|| vec![Vote::Pending; self.n])[self.index] = Vote::Opinion(validity);
        // 3. Extract the sender's window votes and accusation vector.
        match payload {
            Some(p) => {
                let (window, acc) = self.decode_frame(p);
                for t in 0..self.n as u64 {
                    let covered = abs as i64 - self.n as i64 + t as i64;
                    if covered >= 0 {
                        let entry = self
                            .pending
                            .entry(covered as u64)
                            .or_insert_with(|| vec![Vote::Pending; self.n]);
                        // Keep our own locally recorded opinion authoritative.
                        if s != self.index {
                            entry[s] = Vote::Opinion(window.get(t as usize));
                        }
                    }
                }
                self.last_acc[s] = Some((abs, Some(acc)));
            }
            None => {
                for t in 0..self.n as u64 {
                    let covered = abs as i64 - self.n as i64 + t as i64;
                    if covered >= 0 && s != self.index {
                        self.pending
                            .entry(covered as u64)
                            .or_insert_with(|| vec![Vote::Pending; self.n])[s] = Vote::Eps;
                    }
                }
                self.last_acc[s] = Some((abs, None));
            }
        }
        // 4. One full round after a slot, every opinion on it has arrived:
        //    decide it.
        if abs >= self.n as u64 {
            self.decide(abs - self.n as u64, abs);
        }
        // 5. Membership: evaluate accusation majorities.
        if self.membership {
            self.evaluate_accusations(abs);
        }
        // 6. Expire stale state.
        self.own_acc.retain(|_, &mut exp| exp > abs);
        let horizon = abs.saturating_sub(3 * self.n as u64);
        self.own_obs.retain(|&a, _| a >= horizon);
    }

    /// Analysis for diagnosed slot `a`, executed right after slot `now`.
    fn decide(&mut self, a: u64, now: u64) {
        let Some(votes) = self.pending.remove(&a) else {
            return;
        };
        let sender = (a % self.n as u64) as usize;
        let electorate = votes
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != sender)
            .map(|(_, v)| v.as_option());
        let healthy = match h_maj(electorate) {
            HMaj::Decided(v) => v,
            HMaj::Undecidable => {
                // Blackout fallback: self-diagnosis via the collision
                // detector observation; others default to healthy.
                if sender == self.index {
                    *self.own_obs.get(&a).unwrap_or(&true)
                } else {
                    true
                }
            }
        };
        self.verdicts.push(SlotVerdict {
            abs_slot: a,
            round: RoundIndex::new(a / self.n as u64),
            sender: NodeId::from_slot(sender),
            healthy,
            decided_at_slot: now,
        });
        if self.membership {
            if !healthy && self.in_view[sender] {
                self.exclude(sender, now);
            }
            // Minority accusations: any node whose (non-ε) vote disagreed
            // with the verdict diverges from the agreed state.
            for (j, v) in votes.iter().enumerate() {
                if j == self.index || j == sender {
                    continue;
                }
                if let Vote::Opinion(op) = v {
                    if *op != healthy {
                        // Carry the accusation long enough to be seen in
                        // our next frame by everyone (two rounds).
                        self.own_acc.insert(j, now + 2 * self.n as u64);
                    }
                }
            }
        }
    }

    /// Excludes a node from the local view and logs the new view.
    fn exclude(&mut self, x: usize, now: u64) {
        self.in_view[x] = false;
        let members = self
            .in_view
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId::from_slot(i))
            .collect();
        self.view_log.push((now, members));
    }

    /// Votes accusation vectors: a member accused by the hybrid majority of
    /// the other nodes' freshest frames is excluded.
    fn evaluate_accusations(&mut self, now: u64) {
        for x in 0..self.n {
            if !self.in_view[x] {
                continue;
            }
            let votes: Vec<Option<bool>> = (0..self.n)
                .filter(|&j| j != x)
                .map(|j| match &self.last_acc[j] {
                    Some((abs, Some(acc))) if now.saturating_sub(*abs) < self.n as u64 => {
                        Some(!acc[x]) // vote `false` = accused
                    }
                    Some((abs, None)) if now.saturating_sub(*abs) < self.n as u64 => None,
                    _ => None,
                })
                .collect();
            if h_maj(votes) == HMaj::Decided(false) {
                self.exclude(x, now);
            }
        }
    }
}

/// A self-contained slot-granular cluster running the low-latency variant.
///
/// ```
/// use tt_core::lowlat::LowLatCluster;
/// use tt_sim::{NodeId, RoundIndex, SlotEffect, TxCtx};
///
/// // Node 2's slot in round 3 is benign faulty.
/// let pipeline = |ctx: &TxCtx| {
///     if ctx.round == RoundIndex::new(3) && ctx.sender == NodeId::new(2) {
///         SlotEffect::Benign
///     } else {
///         SlotEffect::Correct
///     }
/// };
/// let mut cluster = LowLatCluster::new(4, false, Box::new(pipeline));
/// cluster.run_rounds(6);
/// let v = cluster
///     .verdict_for(NodeId::new(1), RoundIndex::new(3), NodeId::new(2))
///     .expect("diagnosed");
/// assert!(!v.healthy);
/// assert_eq!(v.latency_slots(), 4, "one TDMA round of latency");
/// ```
pub struct LowLatCluster {
    n: usize,
    nodes: Vec<LowLatNode>,
    pipeline: Box<dyn FaultPipeline>,
    abs: u64,
    /// Ground truth per absolute slot (class of the applied effect), for
    /// the validation oracles; the protocol never reads it.
    ground_truth: Vec<tt_sim::SlotFaultClass>,
}

impl std::fmt::Debug for LowLatCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LowLatCluster")
            .field("n", &self.n)
            .field("abs_slot", &self.abs)
            .finish()
    }
}

impl LowLatCluster {
    /// Creates an `n`-node low-latency cluster. With `membership = true`
    /// the 2-round membership composition (accusation vectors and views) is
    /// active.
    pub fn new(n: usize, membership: bool, pipeline: Box<dyn FaultPipeline>) -> Self {
        LowLatCluster {
            n,
            nodes: (0..n).map(|i| LowLatNode::new(i, n, membership)).collect(),
            pipeline,
            abs: 0,
            ground_truth: Vec::new(),
        }
    }

    /// Executes one sending slot.
    pub fn run_slot(&mut self) {
        let abs = self.abs;
        let n = self.n;
        let s = (abs % n as u64) as usize;
        let sender = NodeId::from_slot(s);
        let payload = self.nodes[s].build_frame(abs);
        let ctx = TxCtx {
            round: RoundIndex::new(abs / n as u64),
            sender,
            n_nodes: n,
            abs_slot: abs,
        };
        let effect = self.pipeline.effect(&ctx);
        let outcome = apply_effect(&effect, &ctx, &payload);
        self.ground_truth.push(outcome.class);
        for (rx, reception) in outcome.receptions.into_iter().enumerate() {
            if rx == s {
                // The sender observes its own slot via collision detection
                // and processes its own (locally known) frame content.
                self.nodes[rx].on_slot(abs, s, outcome.collision_ok, Some(&payload));
            } else {
                match reception {
                    Reception::Valid(p) => self.nodes[rx].on_slot(abs, s, true, Some(&p)),
                    Reception::Detected => self.nodes[rx].on_slot(abs, s, false, None),
                }
            }
        }
        self.abs += 1;
    }

    /// Executes `rounds` full TDMA rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds * self.n as u64 {
            self.run_slot();
        }
    }

    /// All verdicts computed by `node`, in decision order.
    pub fn verdicts(&self, node: NodeId) -> &[SlotVerdict] {
        &self.nodes[node.index()].verdicts
    }

    /// The verdict of `node` on `sender`'s slot in `round`, if decided.
    pub fn verdict_for(
        &self,
        node: NodeId,
        round: RoundIndex,
        sender: NodeId,
    ) -> Option<&SlotVerdict> {
        let abs = round.as_u64() * self.n as u64 + sender.slot() as u64;
        self.nodes[node.index()]
            .verdicts
            .iter()
            .find(|v| v.abs_slot == abs)
    }

    /// The current membership view at `node` (all nodes if membership mode
    /// is off).
    pub fn view(&self, node: NodeId) -> Vec<NodeId> {
        self.nodes[node.index()]
            .in_view
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId::from_slot(i))
            .collect()
    }

    /// View changes recorded at `node`: (absolute slot, surviving members).
    pub fn view_log(&self, node: NodeId) -> &[(u64, Vec<NodeId>)] {
        &self.nodes[node.index()].view_log
    }

    /// Ground-truth fault class of `abs_slot` (recorded by the driver; the
    /// protocol never reads it).
    pub fn ground_truth(&self, abs_slot: u64) -> Option<tt_sim::SlotFaultClass> {
        self.ground_truth.get(abs_slot as usize).copied()
    }

    /// Validates the variant's verdicts against the ground truth, mirroring
    /// Theorem 1's properties at slot granularity:
    ///
    /// * every decided slot's verdicts are identical across all nodes
    ///   (consistency);
    /// * benign slots are convicted (completeness) and correct slots
    ///   acquitted (correctness) whenever the slot's *vote-collection
    ///   round* (the N slots after it) contains only benign or correct
    ///   slots — the per-slot analogue of the Lemma 2/3 hypotheses.
    ///
    /// Returns human-readable violations (empty = all properties held).
    pub fn check_properties(&self) -> Vec<String> {
        use tt_sim::SlotFaultClass;
        let mut violations = Vec::new();
        let n = self.n as u64;
        let decided = self.ground_truth.len() as u64;
        for a in 0..decided.saturating_sub(n) {
            let sender = NodeId::from_slot((a % n) as usize);
            let reference = match self.verdict_at(NodeId::new(1), a).map(|v| v.healthy) {
                Some(v) => v,
                None => {
                    violations.push(format!("slot {a}: node 1 has no verdict"));
                    continue;
                }
            };
            for id in NodeId::all(self.n).skip(1) {
                match self.verdict_at(id, a).map(|v| v.healthy) {
                    Some(v) if v == reference => {}
                    Some(_) => violations.push(format!("slot {a}: {id} disagrees")),
                    None => violations.push(format!("slot {a}: {id} has no verdict")),
                }
            }
            // Hypothesis: only benign/correct slots in the collection round.
            let in_hypothesis = (a..=a + n).all(|s| {
                matches!(
                    self.ground_truth.get(s as usize),
                    Some(SlotFaultClass::Correct) | Some(SlotFaultClass::Benign) | None
                )
            });
            if !in_hypothesis {
                continue;
            }
            match self.ground_truth[a as usize] {
                SlotFaultClass::Correct if !reference => {
                    violations.push(format!("slot {a}: correct {sender} convicted"))
                }
                SlotFaultClass::Benign if reference => {
                    violations.push(format!("slot {a}: benign {sender} acquitted"))
                }
                _ => {}
            }
        }
        violations
    }

    /// Whether the 2-round membership composition is active.
    pub fn membership_enabled(&self) -> bool {
        self.nodes.first().is_some_and(|nd| nd.membership)
    }

    /// Absolute slots executed so far.
    pub fn slots(&self) -> u64 {
        self.abs
    }

    /// The Sec. 10 latency oracle: every verdict is decided exactly one
    /// TDMA round (N slots) after its slot, and every node decides every
    /// past slot (no verdict is skipped or delayed). These are structural
    /// bounds of the per-slot pipeline, so they hold unconditionally —
    /// no fault hypothesis gates them.
    pub fn check_latency(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let n = self.n as u64;
        let expected = self.abs.saturating_sub(n);
        for id in NodeId::all(self.n) {
            let vs = &self.nodes[id.index()].verdicts;
            if vs.len() as u64 != expected {
                violations.push(format!("{id}: {} verdicts, expected {expected}", vs.len()));
            }
            for v in vs {
                if v.latency_slots() != n {
                    violations.push(format!(
                        "{id}: slot {} decided after {} slots, bound is {n}",
                        v.abs_slot,
                        v.latency_slots()
                    ));
                }
            }
        }
        violations
    }

    /// The view-synchrony oracle for the 2-round membership composition:
    /// when the whole run stays within the benign hypothesis (every slot's
    /// ground truth is `Correct` or `Benign`), all nodes install the exact
    /// same view sequence, and every excluded node really sent a benign
    /// slot earlier. Vacuous outside the hypothesis or when membership is
    /// off.
    pub fn check_view_synchrony(&self) -> Vec<String> {
        use tt_sim::SlotFaultClass;
        let mut violations = Vec::new();
        if !self.membership_enabled() {
            return violations;
        }
        let benign_only = self
            .ground_truth
            .iter()
            .all(|c| matches!(c, SlotFaultClass::Correct | SlotFaultClass::Benign));
        if !benign_only {
            return violations;
        }
        let reference = self.view_log(NodeId::new(1));
        for id in NodeId::all(self.n).skip(1) {
            if self.view_log(id) != reference {
                violations.push(format!("{id} installed a different view sequence"));
            }
        }
        // Wrongful exclusion: a node may only leave a view after sending a
        // benign slot.
        let n = self.n as u64;
        for (installed, members) in reference {
            for x in NodeId::all(self.n) {
                if members.contains(&x) {
                    continue;
                }
                let sent_benign = (0..*installed).any(|a| {
                    (a % n) as usize == x.slot()
                        && matches!(
                            self.ground_truth.get(a as usize),
                            Some(SlotFaultClass::Benign)
                        )
                });
                if !sent_benign {
                    violations.push(format!("view at slot {installed} excludes obedient {x}"));
                }
            }
        }
        violations
    }

    /// The membership-liveness oracle: a locally detectable (benign) faulty
    /// slot whose collection round is clean yields a view excluding its
    /// sender within two executions — 2·N slots (Sec. 10). Slots whose
    /// deadline falls past the end of the run are skipped.
    pub fn check_membership_liveness(&self) -> Vec<String> {
        use tt_sim::SlotFaultClass;
        let mut violations = Vec::new();
        if !self.membership_enabled() {
            return violations;
        }
        let n = self.n as u64;
        for (a, class) in self.ground_truth.iter().enumerate() {
            let a = a as u64;
            if !matches!(class, SlotFaultClass::Benign) || a + 2 * n >= self.abs {
                continue;
            }
            // The conviction at a + N needs every opinion on `a` delivered.
            let clean_collection = (a + 1..=a + n).all(|s| {
                matches!(
                    self.ground_truth.get(s as usize),
                    Some(SlotFaultClass::Correct)
                )
            });
            if !clean_collection {
                continue;
            }
            let sender = NodeId::from_slot((a % n) as usize);
            for id in NodeId::all(self.n) {
                let excluded = self
                    .view_log(id)
                    .iter()
                    .any(|(s, members)| *s <= a + 2 * n && !members.contains(&sender));
                if !excluded {
                    violations.push(format!(
                        "{id} never excluded {sender} within 2 rounds of benign slot {a}"
                    ));
                }
            }
        }
        violations
    }

    /// The verdict of `node` on absolute slot `abs`, if decided.
    fn verdict_at(&self, node: NodeId, abs: u64) -> Option<&SlotVerdict> {
        self.nodes[node.index()]
            .verdicts
            .iter()
            .find(|v| v.abs_slot == abs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sim::SlotEffect;

    fn benign_at(round: u64, sender: u32) -> impl FnMut(&TxCtx) -> SlotEffect + Send {
        move |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(round) && ctx.sender == NodeId::new(sender) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        }
    }

    #[test]
    fn healthy_run_all_verdicts_healthy() {
        let mut c = LowLatCluster::new(4, false, Box::new(tt_sim::NoFaults));
        c.run_rounds(10);
        for id in 1..=4 {
            let vs = c.verdicts(NodeId::new(id));
            assert_eq!(vs.len() as u64, 10 * 4 - 4, "one verdict per past slot");
            assert!(vs.iter().all(|v| v.healthy));
        }
    }

    #[test]
    fn detection_latency_is_one_round() {
        let mut c = LowLatCluster::new(4, false, Box::new(benign_at(5, 3)));
        c.run_rounds(8);
        for id in 1..=4 {
            let v = c
                .verdict_for(NodeId::new(id), RoundIndex::new(5), NodeId::new(3))
                .unwrap();
            assert!(!v.healthy, "node {id} detects the fault");
            assert_eq!(v.latency_slots(), 4, "exactly one TDMA round (N slots)");
        }
    }

    #[test]
    fn verdicts_are_consistent_across_nodes() {
        // A messy pattern of benign faults; all four nodes must agree on
        // every verdict.
        let pipeline = |ctx: &TxCtx| {
            if ctx.abs_slot % 5 == 2 {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let mut c = LowLatCluster::new(4, false, Box::new(pipeline));
        c.run_rounds(12);
        let reference: Vec<_> = c.verdicts(NodeId::new(1)).to_vec();
        for id in 2..=4 {
            assert_eq!(c.verdicts(NodeId::new(id)), &reference[..], "node {id}");
        }
    }

    #[test]
    fn blackout_self_diagnosis_via_collision() {
        // One entire round lost: every node still decides every slot, and
        // the verdicts stay consistent (Lemma 3 analogue at slot level).
        let pipeline = |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(4) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        };
        let mut c = LowLatCluster::new(4, false, Box::new(pipeline));
        c.run_rounds(8);
        for id in 1..=4 {
            for s in 1..=4u32 {
                let v = c
                    .verdict_for(NodeId::new(id), RoundIndex::new(4), NodeId::new(s))
                    .unwrap();
                assert!(!v.healthy, "node {id} on sender {s}");
            }
        }
    }

    #[test]
    fn membership_excludes_faulty_sender_within_two_rounds() {
        let mut c = LowLatCluster::new(4, true, Box::new(benign_at(5, 2)));
        c.run_rounds(9);
        for id in 1..=4 {
            let view = c.view(NodeId::new(id));
            assert!(!view.contains(&NodeId::new(2)), "node {id}");
            assert_eq!(view.len(), 3);
            let (installed, _) = c.view_log(NodeId::new(id))[0];
            // Fault at abs slot 5*4+1 = 21; exclusion within two rounds.
            assert!(installed <= 21 + 8, "2-round membership latency");
        }
    }

    #[test]
    fn membership_excludes_minority_clique() {
        // Node 1 misses everyone's messages in round 5: its window votes
        // disagree with the majority verdicts, and the accusation vectors
        // must evict it within two further rounds.
        let pipeline = |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(5) && ctx.sender != NodeId::new(1) {
                SlotEffect::Asymmetric {
                    detected_by: vec![0],
                    collision_ok: true,
                }
            } else {
                SlotEffect::Correct
            }
        };
        let mut c = LowLatCluster::new(4, true, Box::new(pipeline));
        c.run_rounds(10);
        for id in 2..=4 {
            let view = c.view(NodeId::new(id));
            assert!(
                !view.contains(&NodeId::new(1)),
                "node {id} evicted the minority clique: {view:?}"
            );
        }
    }

    #[test]
    fn frame_roundtrip() {
        let node = LowLatNode::new(0, 4, true);
        let frame = node.build_frame(0);
        assert_eq!(frame.len(), 2, "2N bits = 2 bytes for N = 4");
        let (window, acc) = node.decode_frame(&frame);
        assert!(window.iter().all(|b| b));
        assert!(acc.iter().all(|&a| !a), "no accusations initially");
    }
}
