//! The penalty/reward algorithm (paper Alg. 2).
//!
//! Each node keeps a penalty and a reward counter for every node. When the
//! consistent health vector reports a node faulty, its penalty grows by the
//! node's criticality level and its reward resets; when it reports the node
//! healthy (and a penalty is pending), the reward grows by one. Exceeding
//! the penalty threshold `P` isolates the node; reaching the reward
//! threshold `R` resets both counters ("the memory of its previous faults
//! is reset").
//!
//! Because the health vector is consistent across obedient nodes (Theorem
//! 1), all obedient nodes update the counters identically and decide
//! isolations in the same round.

use serde::{Deserialize, Serialize};

use tt_sim::NodeId;

/// Optional reintegration extension (the paper's Sec. 9 closing remark:
/// "isolated nodes could be kept under observation, collecting rewards if a
/// fault-free behavior is observed and reintegrating the node if a specific
/// reward threshold for reintegration is reached").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReintegrationPolicy {
    /// Isolated nodes stay isolated (the paper's baseline behaviour).
    #[default]
    Never,
    /// Reintegrate an isolated node after it is observed fault-free for
    /// this many consecutive rounds.
    AfterRewards(u64),
}

/// One observable counter transition of the p/r algorithm, reported to the
/// observer callback of [`PenaltyReward::update_observed`] as it happens.
///
/// Transitions refer to the *subject* node whose counters changed; the
/// caller knows which node is observing and which round is diagnosed, and
/// typically forwards each transition as a `tt_sim::MetricsEvent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrTransition {
    /// The subject's penalty counter grew by its criticality.
    Penalized {
        /// The convicted node.
        subject: NodeId,
        /// Penalty counter value after the charge.
        penalty: u64,
    },
    /// The subject's reward counter grew (healthy with pending penalty).
    Rewarded {
        /// The acquitted node.
        subject: NodeId,
        /// Reward counter value after the increment.
        reward: u64,
    },
    /// The reward threshold was reached; both counters reset.
    Forgiven {
        /// The forgiven node.
        subject: NodeId,
    },
    /// The penalty threshold was exceeded; the subject is now isolated.
    Isolated {
        /// The isolated node.
        subject: NodeId,
        /// Penalty counter value that crossed the threshold.
        penalty: u64,
    },
    /// The reintegration extension readmitted the subject.
    Reintegrated {
        /// The readmitted node.
        subject: NodeId,
    },
}

impl PrTransition {
    /// The node whose counters this transition refers to (the diagnosed
    /// subject, not the observer running the algorithm).
    pub fn subject(self) -> NodeId {
        match self {
            PrTransition::Penalized { subject, .. }
            | PrTransition::Rewarded { subject, .. }
            | PrTransition::Forgiven { subject }
            | PrTransition::Isolated { subject, .. }
            | PrTransition::Reintegrated { subject } => subject,
        }
    }

    /// The counter value carried by the transition: the penalty after a
    /// charge or isolation, the reward after an increment, `None` for the
    /// resets (forgiveness and reintegration zero both counters).
    pub fn counter_value(self) -> Option<u64> {
        match self {
            PrTransition::Penalized { penalty, .. } | PrTransition::Isolated { penalty, .. } => {
                Some(penalty)
            }
            PrTransition::Rewarded { reward, .. } => Some(reward),
            PrTransition::Forgiven { .. } | PrTransition::Reintegrated { .. } => None,
        }
    }
}

/// The p/r state of one protocol instance: per-node counters and activity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PenaltyReward {
    penalties: Vec<u64>,
    rewards: Vec<u64>,
    criticalities: Vec<u64>,
    penalty_threshold: u64,
    reward_threshold: u64,
    active: Vec<bool>,
    reintegration: ReintegrationPolicy,
    /// Rewards collected by isolated nodes under observation.
    observation_rewards: Vec<u64>,
}

impl PenaltyReward {
    /// Creates the p/r state for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `criticalities.len() != n` (validated upstream by
    /// [`crate::ProtocolConfig`]).
    pub fn new(
        n: usize,
        criticalities: Vec<u64>,
        penalty_threshold: u64,
        reward_threshold: u64,
        reintegration: ReintegrationPolicy,
    ) -> Self {
        assert_eq!(criticalities.len(), n, "one criticality per node");
        PenaltyReward {
            penalties: vec![0; n],
            rewards: vec![0; n],
            criticalities,
            penalty_threshold,
            reward_threshold,
            active: vec![true; n],
            reintegration,
            observation_rewards: vec![0; n],
        }
    }

    /// Applies one consistent health vector (`true` = healthy in the
    /// diagnosed round) and returns the nodes newly isolated by this update.
    ///
    /// This is Alg. 2 verbatim, plus the optional reintegration extension.
    /// The returned vector also reflects in [`PenaltyReward::active`].
    pub fn update(&mut self, cons_hv: &[bool]) -> Vec<NodeId> {
        self.update_observed(cons_hv, |_| {})
    }

    /// Like [`PenaltyReward::update`], but reports every counter transition
    /// to `observe` in node-index order, as it happens.
    ///
    /// The observer is a plain `FnMut` so instrumented callers can forward
    /// transitions to a metrics sink while uninstrumented callers pay only
    /// an inlined empty closure.
    pub fn update_observed(
        &mut self,
        cons_hv: &[bool],
        mut observe: impl FnMut(PrTransition),
    ) -> Vec<NodeId> {
        assert_eq!(cons_hv.len(), self.penalties.len(), "health vector size");
        let mut newly_isolated = Vec::new();
        #[allow(clippy::needless_range_loop)] // indexes five parallel per-node vectors
        for i in 0..self.penalties.len() {
            let subject = NodeId::from_slot(i);
            if !self.active[i] {
                // Extension: observe isolated nodes for reintegration.
                if let ReintegrationPolicy::AfterRewards(t) = self.reintegration {
                    if cons_hv[i] {
                        self.observation_rewards[i] += 1;
                        if self.observation_rewards[i] >= t {
                            self.active[i] = true;
                            self.penalties[i] = 0;
                            self.rewards[i] = 0;
                            self.observation_rewards[i] = 0;
                            observe(PrTransition::Reintegrated { subject });
                        }
                    } else {
                        self.observation_rewards[i] = 0;
                    }
                }
                continue;
            }
            if !cons_hv[i] {
                self.penalties[i] += self.criticalities[i];
                self.rewards[i] = 0;
                observe(PrTransition::Penalized {
                    subject,
                    penalty: self.penalties[i],
                });
                if self.penalties[i] > self.penalty_threshold {
                    self.active[i] = false;
                    newly_isolated.push(subject);
                    observe(PrTransition::Isolated {
                        subject,
                        penalty: self.penalties[i],
                    });
                }
            } else if self.penalties[i] > 0 {
                self.rewards[i] += 1;
                observe(PrTransition::Rewarded {
                    subject,
                    reward: self.rewards[i],
                });
                if self.rewards[i] >= self.reward_threshold {
                    self.penalties[i] = 0;
                    self.rewards[i] = 0;
                    observe(PrTransition::Forgiven { subject });
                }
            }
        }
        newly_isolated
    }

    /// The current penalty counter of `node`.
    pub fn penalty(&self, node: NodeId) -> u64 {
        self.penalties[node.index()]
    }

    /// The current reward counter of `node`.
    pub fn reward(&self, node: NodeId) -> u64 {
        self.rewards[node.index()]
    }

    /// Whether `node` is still active (not isolated).
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active[node.index()]
    }

    /// The activity vector (index = node index; `false` = isolated).
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// All penalty counters (index = node index).
    pub fn penalties(&self) -> &[u64] {
        &self.penalties
    }

    /// All reward counters (index = node index).
    pub fn rewards(&self) -> &[u64] {
        &self.rewards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pr(p: u64, r: u64) -> PenaltyReward {
        PenaltyReward::new(4, vec![1; 4], p, r, ReintegrationPolicy::Never)
    }

    fn hv(faulty: &[u32]) -> Vec<bool> {
        (1..=4u32).map(|i| !faulty.contains(&i)).collect()
    }

    #[test]
    fn penalties_accumulate_with_criticality() {
        let mut pr = PenaltyReward::new(4, vec![40, 6, 1, 1], 197, 10, ReintegrationPolicy::Never);
        pr.update(&hv(&[1, 2]));
        assert_eq!(pr.penalty(NodeId::new(1)), 40);
        assert_eq!(pr.penalty(NodeId::new(2)), 6);
        assert_eq!(pr.penalty(NodeId::new(3)), 0);
    }

    #[test]
    fn isolation_requires_exceeding_threshold() {
        // P = 2: isolation on the *third* fault (penalty 3 > 2), exactly as
        // Alg. 2's strict comparison specifies.
        let mut pr = pr(2, 10);
        assert!(pr.update(&hv(&[3])).is_empty());
        assert!(pr.update(&hv(&[3])).is_empty());
        let isolated = pr.update(&hv(&[3]));
        assert_eq!(isolated, vec![NodeId::new(3)]);
        assert!(!pr.is_active(NodeId::new(3)));
        assert!(pr.is_active(NodeId::new(1)));
    }

    #[test]
    fn reward_threshold_resets_counters() {
        let mut pr = pr(10, 3);
        pr.update(&hv(&[2]));
        assert_eq!(pr.penalty(NodeId::new(2)), 1);
        // Two healthy rounds: reward grows but no reset yet.
        pr.update(&hv(&[]));
        pr.update(&hv(&[]));
        assert_eq!(pr.reward(NodeId::new(2)), 2);
        assert_eq!(pr.penalty(NodeId::new(2)), 1);
        // Third healthy round reaches R = 3: both counters reset.
        pr.update(&hv(&[]));
        assert_eq!(pr.reward(NodeId::new(2)), 0);
        assert_eq!(pr.penalty(NodeId::new(2)), 0);
    }

    #[test]
    fn fault_resets_reward_counter() {
        // Intermittent faults that reappear before R healthy rounds keep
        // the penalty accumulating — the correlation property of Sec. 9.
        let mut pr = pr(10, 5);
        pr.update(&hv(&[2]));
        pr.update(&hv(&[]));
        pr.update(&hv(&[]));
        assert_eq!(pr.reward(NodeId::new(2)), 2);
        pr.update(&hv(&[2]));
        assert_eq!(pr.reward(NodeId::new(2)), 0);
        assert_eq!(pr.penalty(NodeId::new(2)), 2);
    }

    #[test]
    fn no_reward_bookkeeping_without_pending_penalty() {
        let mut pr = pr(10, 3);
        for _ in 0..10 {
            pr.update(&hv(&[]));
        }
        assert_eq!(pr.reward(NodeId::new(1)), 0, "rewards only track recovery");
    }

    #[test]
    fn isolated_nodes_stop_counting() {
        let mut pr = pr(1, 10);
        pr.update(&hv(&[4]));
        pr.update(&hv(&[4]));
        assert!(!pr.is_active(NodeId::new(4)));
        let p = pr.penalty(NodeId::new(4));
        pr.update(&hv(&[4]));
        assert_eq!(pr.penalty(NodeId::new(4)), p, "no further accumulation");
        assert!(pr.update(&hv(&[4])).is_empty(), "no duplicate isolation");
    }

    #[test]
    fn reintegration_after_observed_recovery() {
        let mut pr = PenaltyReward::new(4, vec![1; 4], 1, 10, ReintegrationPolicy::AfterRewards(3));
        pr.update(&hv(&[4]));
        pr.update(&hv(&[4]));
        assert!(!pr.is_active(NodeId::new(4)));
        // Two clean rounds, then a relapse: observation restarts.
        pr.update(&hv(&[]));
        pr.update(&hv(&[]));
        pr.update(&hv(&[4]));
        assert!(!pr.is_active(NodeId::new(4)));
        // Three consecutive clean rounds: reintegrated with fresh counters.
        pr.update(&hv(&[]));
        pr.update(&hv(&[]));
        pr.update(&hv(&[]));
        assert!(pr.is_active(NodeId::new(4)));
        assert_eq!(pr.penalty(NodeId::new(4)), 0);
    }

    #[test]
    fn update_observed_reports_full_transition_sequence() {
        // P = 2, R = 2: fault, fault, fault (isolates), then with a fresh
        // state: fault, healthy, healthy (forgives).
        let mut pr_iso = pr(2, 2);
        let mut seen = Vec::new();
        for _ in 0..3 {
            pr_iso.update_observed(&hv(&[3]), |t| seen.push(t));
        }
        let s = NodeId::new(3);
        assert_eq!(
            seen,
            vec![
                PrTransition::Penalized {
                    subject: s,
                    penalty: 1
                },
                PrTransition::Penalized {
                    subject: s,
                    penalty: 2
                },
                PrTransition::Penalized {
                    subject: s,
                    penalty: 3
                },
                PrTransition::Isolated {
                    subject: s,
                    penalty: 3
                },
            ]
        );
        let mut pr_forgive = pr(2, 2);
        let mut seen = Vec::new();
        pr_forgive.update_observed(&hv(&[3]), |t| seen.push(t));
        pr_forgive.update_observed(&hv(&[]), |t| seen.push(t));
        pr_forgive.update_observed(&hv(&[]), |t| seen.push(t));
        assert_eq!(
            seen,
            vec![
                PrTransition::Penalized {
                    subject: s,
                    penalty: 1
                },
                PrTransition::Rewarded {
                    subject: s,
                    reward: 1
                },
                PrTransition::Rewarded {
                    subject: s,
                    reward: 2
                },
                PrTransition::Forgiven { subject: s },
            ]
        );
    }

    #[test]
    fn update_observed_reports_reintegration() {
        let mut pr = PenaltyReward::new(4, vec![1; 4], 0, 10, ReintegrationPolicy::AfterRewards(2));
        pr.update(&hv(&[4]));
        assert!(!pr.is_active(NodeId::new(4)));
        let mut seen = Vec::new();
        pr.update_observed(&hv(&[]), |t| seen.push(t));
        pr.update_observed(&hv(&[]), |t| seen.push(t));
        assert_eq!(
            seen,
            vec![PrTransition::Reintegrated {
                subject: NodeId::new(4)
            }]
        );
        assert!(pr.is_active(NodeId::new(4)));
    }

    #[test]
    fn update_reports_only_new_isolations() {
        let mut pr = pr(1, 10);
        pr.update(&hv(&[1, 2]));
        let isolated = pr.update(&hv(&[1, 2]));
        assert_eq!(isolated, vec![NodeId::new(1), NodeId::new(2)]);
        assert!(pr.update(&hv(&[1, 2])).is_empty());
    }
}
