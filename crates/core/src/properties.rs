//! Machine-checkable oracles for the protocol's guarantees (paper Sec. 6).
//!
//! The paper proves three properties of the consistent health vector:
//!
//! * **Correctness** — a correct sender is never diagnosed as faulty by
//!   obedient nodes;
//! * **Completeness** — a benign faulty sender is always diagnosed as
//!   faulty by obedient nodes;
//! * **Consistency** — the diagnosis is agreed by all obedient nodes.
//!
//! These hold whenever `N > 2a + 2s + b + 1` and `a ≤ 1` (Lemma 2), or when
//! only benign faults occur — including total communication blackouts —
//! given a correct local collision detector (Lemma 3). Together: Theorem 1.
//!
//! The oracles below recompute ground truth from the simulator's fault
//! trace (which the protocol cannot see) and verify the recorded health
//! vectors against it. They are shared by unit tests, integration tests and
//! the Sec. 8 validation campaign binary.

use serde::{Deserialize, Serialize};

use tt_sim::{Cluster, NodeId, RoundIndex, SlotFaultClass, Trace};

use crate::protocol::DiagJob;

/// Ground-truth fault counts for one round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Asymmetric faulty senders (`a` in the paper).
    pub asymmetric: usize,
    /// Symmetric malicious senders (`s`).
    pub malicious: usize,
    /// Benign faulty senders (`b`).
    pub benign: usize,
}

impl FaultCounts {
    /// Counts the faulty senders of `round` from the trace.
    pub fn of_round(trace: &Trace, round: RoundIndex) -> Self {
        let mut c = FaultCounts::default();
        for rec in trace.records().iter().filter(|r| r.round == round) {
            match rec.class {
                SlotFaultClass::Correct => {}
                SlotFaultClass::Benign => c.benign += 1,
                SlotFaultClass::SymmetricMalicious => c.malicious += 1,
                SlotFaultClass::Asymmetric => c.asymmetric += 1,
            }
        }
        c
    }

    /// Accumulates the worst case over several rounds (one protocol
    /// execution spans the diagnosed round through dissemination).
    pub fn accumulate(&mut self, other: FaultCounts) {
        self.asymmetric += other.asymmetric;
        self.malicious += other.malicious;
        self.benign = self.benign.max(other.benign);
    }

    /// Lemma 2's hypothesis: `N > 2a + 2s + b + 1` and `a ≤ 1`.
    pub fn lemma2_holds(&self, n: usize) -> bool {
        self.asymmetric <= 1 && n > 2 * self.asymmetric + 2 * self.malicious + self.benign + 1
    }

    /// Lemma 3's hypothesis: only benign faults (any number of them).
    pub fn lemma3_holds(&self) -> bool {
        self.asymmetric == 0 && self.malicious == 0
    }
}

/// Whether the protocol execution diagnosing `diagnosed` stays within
/// Theorem 1's hypotheses, considering faults across the execution window
/// `[diagnosed, diagnosed + lag]` (local detection through dissemination).
pub fn execution_in_hypothesis(trace: &Trace, diagnosed: RoundIndex, lag: u64, n: usize) -> bool {
    let mut window = FaultCounts::default();
    for d in 0..=lag {
        window.accumulate(FaultCounts::of_round(trace, diagnosed + d));
    }
    window.lemma2_holds(n) || window.lemma3_holds()
}

/// One property violation found by the oracles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A correct sender was diagnosed faulty by an obedient node.
    Correctness {
        /// The diagnosed round.
        diagnosed: RoundIndex,
        /// The obedient observer holding the wrong verdict.
        observer: NodeId,
        /// The wrongly convicted (correct) sender.
        sender: NodeId,
    },
    /// A benign faulty sender escaped diagnosis at an obedient node.
    Completeness {
        /// The diagnosed round.
        diagnosed: RoundIndex,
        /// The obedient observer missing the fault.
        observer: NodeId,
        /// The benign faulty sender that went undetected.
        sender: NodeId,
    },
    /// Two obedient nodes disagree on the health vector of a round.
    Consistency {
        /// The diagnosed round.
        diagnosed: RoundIndex,
        /// The two disagreeing observers.
        observers: (NodeId, NodeId),
    },
    /// An obedient node has no record for a round it should have diagnosed.
    MissingRecord {
        /// The diagnosed round.
        diagnosed: RoundIndex,
        /// The observer with the missing record.
        observer: NodeId,
    },
}

/// Result of checking a range of diagnosed rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyReport {
    /// Rounds that were checked against all three properties.
    pub rounds_checked: u64,
    /// Rounds skipped because the fault load exceeded Theorem 1's bounds.
    pub rounds_out_of_hypothesis: u64,
    /// All violations found (empty = the theorem held).
    pub violations: Vec<Violation>,
}

impl PropertyReport {
    /// True iff no violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A uniform accessor for recorded health vectors, letting the oracles work
/// over [`DiagJob`], [`crate::MembershipJob`] or custom jobs.
pub type HealthGetter<'a> = &'a dyn Fn(NodeId, RoundIndex) -> Option<Vec<bool>>;

/// Checks correctness, completeness and consistency for every diagnosed
/// round in `rounds`, for the given obedient observers.
///
/// Rounds whose execution window exceeds Theorem 1's hypotheses are counted
/// in `rounds_out_of_hypothesis` and only checked for *consistency* when
/// `check_consistency_always` is false they are skipped entirely.
pub fn check_properties(
    trace: &Trace,
    n: usize,
    lag: u64,
    obedient: &[NodeId],
    rounds: impl IntoIterator<Item = RoundIndex>,
    health: HealthGetter<'_>,
) -> PropertyReport {
    let mut report = PropertyReport::default();
    for diagnosed in rounds {
        if !execution_in_hypothesis(trace, diagnosed, lag, n) {
            report.rounds_out_of_hypothesis += 1;
            continue;
        }
        report.rounds_checked += 1;
        // Gather each obedient node's verdict.
        let mut verdicts: Vec<(NodeId, Vec<bool>)> = Vec::with_capacity(obedient.len());
        for &obs in obedient {
            match health(obs, diagnosed) {
                Some(v) => verdicts.push((obs, v)),
                None => report.violations.push(Violation::MissingRecord {
                    diagnosed,
                    observer: obs,
                }),
            }
        }
        // Consistency: all obedient verdicts identical.
        for pair in verdicts.windows(2) {
            if pair[0].1 != pair[1].1 {
                report.violations.push(Violation::Consistency {
                    diagnosed,
                    observers: (pair[0].0, pair[1].0),
                });
            }
        }
        // Correctness & completeness against the ground-truth trace.
        for (obs, verdict) in &verdicts {
            for sender in NodeId::all(n) {
                let class = trace.class_of(diagnosed, sender);
                let deemed_healthy = verdict[sender.index()];
                match class {
                    SlotFaultClass::Correct if !deemed_healthy => {
                        report.violations.push(Violation::Correctness {
                            diagnosed,
                            observer: *obs,
                            sender,
                        });
                    }
                    SlotFaultClass::Benign if deemed_healthy => {
                        report.violations.push(Violation::Completeness {
                            diagnosed,
                            observer: *obs,
                            sender,
                        });
                    }
                    // Malicious/asymmetric senders: only consistency is
                    // required (checked above); any agreed verdict is legal.
                    _ => {}
                }
            }
        }
    }
    report
}

/// Convenience wrapper: checks a [`Cluster`] whose nodes run [`DiagJob`]s.
///
/// Once the p/r algorithm isolates a node, the other controllers ignore
/// its traffic *by design* (paper Sec. 5), so its slots read as invalid and
/// it stays convicted even if the bus would deliver them — that is the
/// intended steady state, not a correctness violation. Correctness checks
/// for a sender are therefore exempted from the earliest round ANY obedient
/// observer decided its isolation. Within the fault hypothesis the decisions
/// coincide (which [`check_counter_consistency`] verifies); after an
/// out-of-hypothesis period they may legitimately diverge, and a sender
/// isolated by a subset of controllers is already a standing partially
/// ignored source whose diagnosis is no longer attributable.
///
/// # Panics
///
/// Panics if an obedient node does not host a `DiagJob`.
pub fn check_diag_cluster(
    cluster: &Cluster,
    obedient: &[NodeId],
    rounds: impl IntoIterator<Item = RoundIndex>,
) -> PropertyReport {
    let n = cluster.schedule().n_nodes();
    let sample: &DiagJob = cluster
        .job_as(obedient[0])
        .expect("obedient node runs a DiagJob");
    let lag = crate::alignment::diagnosis_lag(sample.config().all_send_curr_round());
    // Earliest isolation decision per sender across ALL observers: once any
    // obedient controller has isolated a sender, that sender's traffic is
    // partially ignored and correctness can no longer be attributed to it —
    // even if other observers isolate it later (after an out-of-hypothesis
    // period, isolation decisions may legitimately diverge).
    let mut isolated_from: std::collections::HashMap<NodeId, RoundIndex> =
        std::collections::HashMap::new();
    for &obs in obedient {
        let job: &DiagJob = cluster.job_as(obs).expect("obedient node runs a DiagJob");
        for iso in job.isolations() {
            isolated_from
                .entry(iso.node)
                .and_modify(|d| *d = (*d).min(iso.decided_at))
                .or_insert(iso.decided_at);
        }
    }
    let getter = |node: NodeId, r: RoundIndex| -> Option<Vec<bool>> {
        let job: &DiagJob = cluster.job_as(node).ok()?;
        job.health_for(r).map(|h| h.health.clone())
    };
    let mut report = check_properties(cluster.trace(), n, lag, obedient, rounds, &getter);
    report.violations.retain(|v| match v {
        Violation::Correctness {
            diagnosed, sender, ..
        } => isolated_from
            .get(sender)
            .is_none_or(|from| diagnosed < from),
        _ => true,
    });
    report
}

/// Checks that the p/r state (penalties, rewards, activity) agrees across
/// all obedient nodes of a [`Cluster`] running [`DiagJob`]s — the paper's
/// claim that "the penalty and reward counters are always consistently
/// updated, and isolations are decided in the same round by all obedient
/// nodes" (Sec. 5).
///
/// Returns the pairs of observers whose counter state diverges (empty =
/// consistent).
///
/// # Panics
///
/// Panics if an obedient node does not host a `DiagJob`.
pub fn check_counter_consistency(cluster: &Cluster, obedient: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let mut divergent = Vec::new();
    let snapshot = |node: NodeId| {
        let job: &DiagJob = cluster.job_as(node).expect("obedient node runs a DiagJob");
        let n = job.config().n_nodes();
        let per_node: Vec<(u64, u64, bool)> = NodeId::all(n)
            .map(|x| (job.penalty(x), job.reward(x), job.is_active(x)))
            .collect();
        (per_node, job.isolations().to_vec())
    };
    for pair in obedient.windows(2) {
        if snapshot(pair[0]) != snapshot(pair[1]) {
            divergent.push((pair[0], pair[1]));
        }
    }
    divergent
}

/// Checks that all obedient nodes of a [`Cluster`] running
/// [`crate::MembershipJob`]s have installed identical view histories
/// (uniqueness of views, Sec. 7). Returns the divergent observer pairs.
///
/// # Panics
///
/// Panics if an obedient node does not host a `MembershipJob`.
pub fn check_view_consistency(cluster: &Cluster, obedient: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    use crate::membership::MembershipJob;
    let mut divergent = Vec::new();
    let views = |node: NodeId| {
        let job: &MembershipJob = cluster
            .job_as(node)
            .expect("obedient node runs a MembershipJob");
        job.views().to_vec()
    };
    for pair in obedient.windows(2) {
        if views(pair[0]) != views(pair[1]) {
            divergent.push((pair[0], pair[1]));
        }
    }
    divergent
}

/// One violation of an Alg. 2 (penalty/reward) invariant.
///
/// These complement the Theorem 1 oracles above: they verify that the p/r
/// layer *on top of* the consistent health vector behaves exactly as the
/// paper's Alg. 2 prescribes — no isolation before the penalty threshold is
/// strictly exceeded, forgiveness exactly at the reward threshold, and no
/// counter movement outside the paper's transitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alg2Violation {
    /// A node is isolated although its penalty never exceeded `P`.
    PrematureIsolation {
        /// The observer holding the state.
        observer: NodeId,
        /// The prematurely isolated node.
        subject: NodeId,
        /// The diagnosed round after whose update the state was seen.
        diagnosed: RoundIndex,
        /// The subject's penalty counter.
        penalty: u64,
        /// The penalty threshold `P`.
        threshold: u64,
    },
    /// A node's penalty exceeds `P` but it was not isolated.
    MissedIsolation {
        /// The observer holding the state.
        observer: NodeId,
        /// The node that should have been isolated.
        subject: NodeId,
        /// The diagnosed round after whose update the state was seen.
        diagnosed: RoundIndex,
        /// The subject's penalty counter.
        penalty: u64,
        /// The penalty threshold `P`.
        threshold: u64,
    },
    /// A reward counter reached `R` without the forgiveness reset firing.
    RewardAtThreshold {
        /// The observer holding the state.
        observer: NodeId,
        /// The subject whose reward overflowed.
        subject: NodeId,
        /// The diagnosed round after whose update the state was seen.
        diagnosed: RoundIndex,
        /// The subject's reward counter.
        reward: u64,
        /// The reward threshold `R`.
        threshold: u64,
    },
    /// A reward counter is positive although no penalty is pending (rewards
    /// only track recovery from a charged fault).
    RewardWithoutPenalty {
        /// The observer holding the state.
        observer: NodeId,
        /// The subject with the stray reward.
        subject: NodeId,
        /// The diagnosed round after whose update the state was seen.
        diagnosed: RoundIndex,
        /// The subject's reward counter.
        reward: u64,
    },
    /// Replaying the recorded health vectors through a fresh Alg. 2 state
    /// does not reproduce the observer's counters — some counter moved
    /// outside the paper's transitions.
    CounterDrift {
        /// The observer whose state diverged from the replay.
        observer: NodeId,
        /// The subject whose counters diverged.
        subject: NodeId,
        /// The diagnosed round at which the divergence was detected.
        diagnosed: RoundIndex,
        /// `(penalty, reward)` the replay expected.
        expected: (u64, u64),
        /// `(penalty, reward)` the observer actually recorded.
        actual: (u64, u64),
    },
    /// The observer's isolation decisions disagree with the replay (an
    /// isolation it never decided, or one the replay does not produce).
    IsolationDrift {
        /// The observer whose isolation log diverged.
        observer: NodeId,
        /// `(subject, diagnosed)` pairs the replay produced.
        expected: Vec<(NodeId, RoundIndex)>,
        /// `(subject, diagnosed)` pairs the observer recorded.
        actual: Vec<(NodeId, RoundIndex)>,
    },
}

/// Checks the stepwise Alg. 2 invariants on one p/r state, as observed
/// after the update for `diagnosed`:
///
/// * isolation only after the penalty *strictly* exceeds `P` — and always
///   once it has;
/// * rewards reset (forgiveness) exactly when they reach `R`, so an
///   observable reward counter is always `< R`;
/// * no reward bookkeeping without a pending penalty.
///
/// Shared verbatim by the property-based tests and the fault-scenario
/// explorer's oracle stack.
pub fn alg2_state_violations(
    pr: &crate::penalty::PenaltyReward,
    n: usize,
    penalty_threshold: u64,
    reward_threshold: u64,
    observer: NodeId,
    diagnosed: RoundIndex,
) -> Vec<Alg2Violation> {
    let mut v = Vec::new();
    for subject in NodeId::all(n) {
        let penalty = pr.penalty(subject);
        let reward = pr.reward(subject);
        let active = pr.is_active(subject);
        if !active && penalty <= penalty_threshold {
            v.push(Alg2Violation::PrematureIsolation {
                observer,
                subject,
                diagnosed,
                penalty,
                threshold: penalty_threshold,
            });
        }
        if active && penalty > penalty_threshold {
            v.push(Alg2Violation::MissedIsolation {
                observer,
                subject,
                diagnosed,
                penalty,
                threshold: penalty_threshold,
            });
        }
        if reward >= reward_threshold {
            v.push(Alg2Violation::RewardAtThreshold {
                observer,
                subject,
                diagnosed,
                reward,
                threshold: reward_threshold,
            });
        }
        if reward > 0 && penalty == 0 {
            v.push(Alg2Violation::RewardWithoutPenalty {
                observer,
                subject,
                diagnosed,
                reward,
            });
        }
    }
    v
}

/// Checks every obedient [`DiagJob`] of a [`Cluster`] against the Alg. 2
/// invariants: the recorded health vectors are replayed through a fresh
/// p/r state, the stepwise invariants of [`alg2_state_violations`] are
/// verified after each update, any recorded per-round counter samples
/// (see [`DiagJob::with_counter_trace`]) are compared against the replay,
/// and the final counters plus the isolation log must match the replay
/// exactly — i.e. the counters never moved except via the paper's
/// transitions.
///
/// Returns all violations found (empty = Alg. 2 held everywhere).
///
/// # Panics
///
/// Panics if an obedient node does not host a `DiagJob`.
pub fn check_alg2_cluster(cluster: &Cluster, obedient: &[NodeId]) -> Vec<Alg2Violation> {
    use crate::penalty::PenaltyReward;
    let mut violations = Vec::new();
    for &obs in obedient {
        let job: &DiagJob = cluster.job_as(obs).expect("obedient node runs a DiagJob");
        let cfg = job.config();
        let n = cfg.n_nodes();
        let (p, r) = (cfg.penalty_threshold(), cfg.reward_threshold());
        let mut replay =
            PenaltyReward::new(n, cfg.criticalities().to_vec(), p, r, cfg.reintegration());
        let mut replay_isolations: Vec<(NodeId, RoundIndex)> = Vec::new();
        for (step, rec) in job.health_log().iter().enumerate() {
            for iso in replay.update(&rec.health) {
                replay_isolations.push((iso, rec.diagnosed));
            }
            violations.extend(alg2_state_violations(&replay, n, p, r, obs, rec.diagnosed));
            // Per-round counter samples, when traced, must match the replay
            // step for step.
            if let Some(sample) = job.counter_trace().get(step) {
                for subject in NodeId::all(n) {
                    let expected = (replay.penalty(subject), replay.reward(subject));
                    let actual = (
                        sample.penalties[subject.index()],
                        sample.rewards[subject.index()],
                    );
                    if expected != actual {
                        violations.push(Alg2Violation::CounterDrift {
                            observer: obs,
                            subject,
                            diagnosed: rec.diagnosed,
                            expected,
                            actual,
                        });
                    }
                }
            }
        }
        // Final state: the job's live counters must equal the replay's.
        let final_round = job
            .health_log()
            .last()
            .map(|h| h.diagnosed)
            .unwrap_or(RoundIndex::ZERO);
        for subject in NodeId::all(n) {
            let expected = (replay.penalty(subject), replay.reward(subject));
            let actual = (job.penalty(subject), job.reward(subject));
            if expected != actual {
                violations.push(Alg2Violation::CounterDrift {
                    observer: obs,
                    subject,
                    diagnosed: final_round,
                    expected,
                    actual,
                });
            }
        }
        let actual_isolations: Vec<(NodeId, RoundIndex)> = job
            .isolations()
            .iter()
            .map(|i| (i.node, i.diagnosed))
            .collect();
        if replay_isolations != actual_isolations {
            violations.push(Alg2Violation::IsolationDrift {
                observer: obs,
                expected: replay_isolations,
                actual: actual_isolations,
            });
        }
    }
    violations
}

/// The diagnosed rounds that are safely checkable in a run of
/// `total_rounds` (skipping warm-up and the not-yet-diagnosed tail).
pub fn checkable_rounds(total_rounds: u64, lag: u64) -> impl Iterator<Item = RoundIndex> {
    // The first diagnosable round is `lag` activations in; the last is
    // `total - lag - 1` (its analysis runs in round `total - 1`).
    (lag..total_rounds.saturating_sub(lag)).map(RoundIndex::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use tt_sim::{ClusterBuilder, SlotEffect, TxCtx};

    fn run_cluster(
        rounds: u64,
        pipeline: impl FnMut(&TxCtx) -> SlotEffect + Send + 'static,
    ) -> Cluster {
        let cfg = ProtocolConfig::builder(4)
            .penalty_threshold(1_000)
            .reward_threshold(1_000)
            .build()
            .unwrap();
        let mut cluster = ClusterBuilder::new(4).build_with_jobs(
            move |id| Box::new(DiagJob::new(id, cfg.clone())),
            Box::new(pipeline),
        );
        cluster.run_rounds(rounds);
        cluster
    }

    fn all_nodes() -> Vec<NodeId> {
        NodeId::all(4).collect()
    }

    #[test]
    fn fault_free_run_passes_all_properties() {
        let cluster = run_cluster(30, |_| SlotEffect::Correct);
        let report = check_diag_cluster(&cluster, &all_nodes(), checkable_rounds(30, 3));
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.rounds_checked, 24);
        assert_eq!(report.rounds_out_of_hypothesis, 0);
    }

    #[test]
    fn benign_bursts_pass_all_properties() {
        let cluster = run_cluster(40, |ctx: &TxCtx| {
            // Two-slot bursts every 9 slots.
            if ctx.abs_slot % 9 < 2 {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        let report = check_diag_cluster(&cluster, &all_nodes(), checkable_rounds(40, 3));
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.rounds_checked > 0);
    }

    #[test]
    fn counts_classify_rounds() {
        let cluster = run_cluster(20, |ctx: &TxCtx| {
            match (ctx.round.as_u64(), ctx.sender.get()) {
                (5, 1) => SlotEffect::Benign,
                (5, 2) => SlotEffect::SymmetricMalicious {
                    payload: bytes::Bytes::from_static(b"\xff"),
                },
                (5, 3) => SlotEffect::Asymmetric {
                    detected_by: vec![0],
                    collision_ok: true,
                },
                _ => SlotEffect::Correct,
            }
        });
        let c = FaultCounts::of_round(cluster.trace(), RoundIndex::new(5));
        assert_eq!(
            c,
            FaultCounts {
                asymmetric: 1,
                malicious: 1,
                benign: 1
            }
        );
        // N = 4 is not > 2 + 2 + 1 + 1 = 6: out of hypothesis.
        assert!(!c.lemma2_holds(4));
        assert!(c.lemma2_holds(8));
        assert!(!c.lemma3_holds());
        assert!(FaultCounts {
            asymmetric: 0,
            malicious: 0,
            benign: 4
        }
        .lemma3_holds());
    }

    #[test]
    fn out_of_hypothesis_rounds_are_skipped() {
        // Two simultaneous asymmetric faults (a = 2 > 1).
        let cluster = run_cluster(20, |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(8) && ctx.sender.get() <= 2 {
                SlotEffect::Asymmetric {
                    detected_by: vec![2],
                    collision_ok: true,
                }
            } else {
                SlotEffect::Correct
            }
        });
        let report = check_diag_cluster(&cluster, &all_nodes(), checkable_rounds(20, 3));
        assert!(report.rounds_out_of_hypothesis >= 1);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn oracle_catches_planted_violations() {
        // Sanity-check the oracle itself: a fabricated health getter that
        // convicts node 1 (correct) and acquits node 2 (benign faulty).
        let cluster = run_cluster(12, |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(5) && ctx.sender == NodeId::new(2) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        let bad = |_: NodeId, r: RoundIndex| -> Option<Vec<bool>> {
            if r == RoundIndex::new(5) {
                Some(vec![false, true, true, true])
            } else {
                Some(vec![true; 4])
            }
        };
        let report = check_properties(
            cluster.trace(),
            4,
            3,
            &all_nodes(),
            [RoundIndex::new(5)],
            &bad,
        );
        assert_eq!(report.violations.len(), 8, "4 correctness + 4 completeness");
        // And a consistency violation with per-node divergence.
        let split = |node: NodeId, _: RoundIndex| -> Option<Vec<bool>> {
            Some(vec![node == NodeId::new(1); 4])
        };
        let report = check_properties(
            cluster.trace(),
            4,
            3,
            &all_nodes(),
            [RoundIndex::new(3)],
            &split,
        );
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Consistency { .. })));
    }

    #[test]
    fn missing_records_are_reported() {
        let none = |_: NodeId, _: RoundIndex| -> Option<Vec<bool>> { None };
        let cluster = run_cluster(12, |_| SlotEffect::Correct);
        let report = check_properties(
            cluster.trace(),
            4,
            3,
            &all_nodes(),
            [RoundIndex::new(4)],
            &none,
        );
        assert_eq!(report.violations.len(), 4);
        assert!(matches!(
            report.violations[0],
            Violation::MissingRecord { .. }
        ));
    }

    #[test]
    fn counter_consistency_holds_and_catches_divergence() {
        // A consistent cluster: counters agree everywhere.
        let cluster = run_cluster(30, |ctx: &TxCtx| {
            if ctx.round == RoundIndex::new(10) && ctx.sender == NodeId::new(2) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        });
        assert!(check_counter_consistency(&cluster, &all_nodes()).is_empty());
        // Restricting the observers still works.
        assert!(check_counter_consistency(&cluster, &[NodeId::new(1), NodeId::new(3)]).is_empty());
    }

    #[test]
    fn post_isolation_convictions_are_not_correctness_violations() {
        // A transient burst pushes node 2 over a small P; afterwards the
        // bus is healthy but its traffic is ignored by design, so it stays
        // convicted. The oracle must not flag those rounds — and must
        // still flag any genuine pre-isolation false conviction.
        let cfg = ProtocolConfig::builder(4)
            .penalty_threshold(2)
            .reward_threshold(1_000)
            .build()
            .unwrap();
        let mut cluster = tt_sim::ClusterBuilder::new(4).build_with_jobs(
            |id| Box::new(DiagJob::new(id, cfg.clone())),
            Box::new(|ctx: &TxCtx| {
                if (8..11).contains(&ctx.round.as_u64()) && ctx.sender == NodeId::new(2) {
                    SlotEffect::Benign
                } else {
                    SlotEffect::Correct
                }
            }),
        );
        cluster.run_rounds(30);
        let d: &DiagJob = cluster.job_as(NodeId::new(1)).unwrap();
        assert!(!d.is_active(NodeId::new(2)), "isolated by the burst");
        let report = check_diag_cluster(&cluster, &all_nodes(), checkable_rounds(30, 3));
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn checkable_rounds_skips_warmup_and_tail() {
        let rounds: Vec<u64> = checkable_rounds(10, 3).map(|r| r.as_u64()).collect();
        assert_eq!(rounds, vec![3, 4, 5, 6]);
        assert_eq!(checkable_rounds(4, 3).count(), 0);
    }
}
