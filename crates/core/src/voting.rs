//! The hybrid majority voting function `H-maj` (paper Eqn. 1).
//!
//! Voting combines the opinions of the other `N-1` nodes on one diagnosed
//! node. Erroneous votes ε (from benign-faulty disseminators) are excluded
//! before the majority is computed, following the hybrid-fault voting of
//! Lincoln & Rushby \[18\] as adapted by the paper:
//!
//! ```text
//!            ⎧ ⊥   if |excl(V, ε)| = 0
//! H-maj(V) = ⎨ v   if v = maj(excl(V, ε)) and |excl(V, ε)| ≥ 1
//!            ⎩ 1   else
//! ```
//!
//! `0` denotes "faulty", `1` denotes "not faulty"; a tie therefore resolves
//! to "not faulty" (the `else` branch), which preserves *correctness*: a
//! correct node is never convicted by a non-majority.

/// The outcome of hybrid-majority voting on one diagnostic-matrix column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HMaj {
    /// No non-ε vote was available (`⊥`): the voter must fall back to its
    /// local collision detector for self-diagnosis (Alg. 1, line 14).
    Undecidable,
    /// The voted health: `true` = not faulty (1), `false` = faulty (0).
    Decided(bool),
}

impl HMaj {
    /// The decided value, if any.
    pub fn decided(self) -> Option<bool> {
        match self {
            HMaj::Undecidable => None,
            HMaj::Decided(v) => Some(v),
        }
    }
}

/// Computes `H-maj` over a column of votes.
///
/// Each vote is `Some(opinion)` or `None` for ε (the voter's own syndrome
/// was not received). The caller is responsible for excluding the diagnosed
/// node's opinion about itself before calling (paper Sec. 5: "The opinion
/// of a node about itself is considered unreliable and discarded").
///
/// ```
/// use tt_core::voting::{h_maj, HMaj};
/// // Two accusations outvote one endorsement.
/// assert_eq!(h_maj([Some(false), Some(false), Some(true)]), HMaj::Decided(false));
/// // ε votes are excluded before the majority.
/// assert_eq!(h_maj([None, None, Some(false)]), HMaj::Decided(false));
/// // No usable votes at all: undecidable.
/// assert_eq!(h_maj([None, None, None]), HMaj::Undecidable);
/// ```
pub fn h_maj(votes: impl IntoIterator<Item = Option<bool>>) -> HMaj {
    let mut ok = 0usize;
    let mut faulty = 0usize;
    for v in votes {
        match v {
            Some(true) => ok += 1,
            Some(false) => faulty += 1,
            None => {}
        }
    }
    if ok + faulty == 0 {
        HMaj::Undecidable
    } else if faulty > ok {
        HMaj::Decided(false)
    } else if ok > faulty {
        HMaj::Decided(true)
    } else {
        // Tie: the `else` branch of Eqn. 1 — default to "not faulty".
        HMaj::Decided(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_votes_decide() {
        assert_eq!(h_maj(vec![Some(true); 3]), HMaj::Decided(true));
        assert_eq!(h_maj(vec![Some(false); 3]), HMaj::Decided(false));
    }

    #[test]
    fn epsilon_votes_are_excluded() {
        assert_eq!(
            h_maj([None, Some(true), Some(true), Some(false)]),
            HMaj::Decided(true)
        );
        assert_eq!(h_maj([None, None, Some(false)]), HMaj::Decided(false));
    }

    #[test]
    fn all_epsilon_is_undecidable() {
        assert_eq!(h_maj(std::iter::repeat_n(None, 5)), HMaj::Undecidable);
        assert_eq!(h_maj(std::iter::empty()), HMaj::Undecidable);
    }

    #[test]
    fn tie_defaults_to_not_faulty() {
        // Eqn. 1 `else` branch: protects correct nodes from split votes
        // caused by malicious/asymmetric disseminators.
        assert_eq!(h_maj([Some(true), Some(false)]), HMaj::Decided(true));
        assert_eq!(h_maj([Some(true), Some(false), None]), HMaj::Decided(true));
    }

    #[test]
    fn single_vote_decides() {
        // |excl(V, ε)| = 1: the lone opinion is the majority (Lemma 3's
        // blackout case relies on this).
        assert_eq!(h_maj([None, None, Some(false)]), HMaj::Decided(false));
        assert_eq!(h_maj([Some(true)]), HMaj::Decided(true));
    }

    #[test]
    fn decided_accessor() {
        assert_eq!(HMaj::Undecidable.decided(), None);
        assert_eq!(HMaj::Decided(false).decided(), Some(false));
    }
}
