//! The hybrid majority voting function `H-maj` (paper Eqn. 1).
//!
//! Voting combines the opinions of the other `N-1` nodes on one diagnosed
//! node. Erroneous votes ε (from benign-faulty disseminators) are excluded
//! before the majority is computed, following the hybrid-fault voting of
//! Lincoln & Rushby \[18\] as adapted by the paper:
//!
//! ```text
//!            ⎧ ⊥   if |excl(V, ε)| = 0
//! H-maj(V) = ⎨ v   if v = maj(excl(V, ε)) and |excl(V, ε)| ≥ 1
//!            ⎩ 1   else
//! ```
//!
//! `0` denotes "faulty", `1` denotes "not faulty"; a tie therefore resolves
//! to "not faulty" (the `else` branch), which preserves *correctness*: a
//! correct node is never convicted by a non-majority.

/// The outcome of hybrid-majority voting on one diagnostic-matrix column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HMaj {
    /// No non-ε vote was available (`⊥`): the voter must fall back to its
    /// local collision detector for self-diagnosis (Alg. 1, line 14).
    Undecidable,
    /// The voted health: `true` = not faulty (1), `false` = faulty (0).
    Decided(bool),
}

impl HMaj {
    /// The decided value, if any.
    pub fn decided(self) -> Option<bool> {
        match self {
            HMaj::Undecidable => None,
            HMaj::Decided(v) => Some(v),
        }
    }
}

/// Computes `H-maj` over a column of votes.
///
/// Each vote is `Some(opinion)` or `None` for ε (the voter's own syndrome
/// was not received). The caller is responsible for excluding the diagnosed
/// node's opinion about itself before calling (paper Sec. 5: "The opinion
/// of a node about itself is considered unreliable and discarded").
///
/// ```
/// use tt_core::voting::{h_maj, HMaj};
/// // Two accusations outvote one endorsement.
/// assert_eq!(h_maj([Some(false), Some(false), Some(true)]), HMaj::Decided(false));
/// // ε votes are excluded before the majority.
/// assert_eq!(h_maj([None, None, Some(false)]), HMaj::Decided(false));
/// // No usable votes at all: undecidable.
/// assert_eq!(h_maj([None, None, None]), HMaj::Undecidable);
/// ```
pub fn h_maj(votes: impl IntoIterator<Item = Option<bool>>) -> HMaj {
    h_maj_tally(votes).outcome
}

/// The full accounting of one `H-maj` vote: how many opinions landed in
/// each bucket, plus the outcome.
///
/// This is what observability consumers want (a `1 0 0` vote and a `4 3 0`
/// vote are both `Decided(false)` but tell very different stories); the
/// protocol itself only needs [`VoteTally::outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VoteTally {
    /// Explicit "not faulty" opinions.
    pub ok: u64,
    /// Explicit "faulty" opinions.
    pub faulty: u64,
    /// Excluded ε opinions.
    pub epsilon: u64,
    /// The `H-maj` outcome over the non-ε opinions.
    pub outcome: HMaj,
}

impl VoteTally {
    /// Whether the column was contested: any explicit accusation, any ε
    /// exclusion, or an undecidable outcome. Unanimous all-healthy columns
    /// (the steady state) answer `false`.
    pub fn contested(&self) -> bool {
        self.faulty > 0 || self.epsilon > 0 || self.outcome != HMaj::Decided(true)
    }

    /// The decided health of [`VoteTally::outcome`], if any (shorthand for
    /// `self.outcome.decided()`).
    pub fn decided(&self) -> Option<bool> {
        self.outcome.decided()
    }
}

/// Computes `H-maj` over a column of votes, returning the full
/// [`VoteTally`] (bucket counts plus outcome). [`h_maj`] is the
/// outcome-only shorthand.
pub fn h_maj_tally(votes: impl IntoIterator<Item = Option<bool>>) -> VoteTally {
    let mut ok = 0u64;
    let mut faulty = 0u64;
    let mut epsilon = 0u64;
    for v in votes {
        match v {
            Some(true) => ok += 1,
            Some(false) => faulty += 1,
            None => epsilon += 1,
        }
    }
    let outcome = if ok + faulty == 0 {
        HMaj::Undecidable
    } else if faulty > ok {
        HMaj::Decided(false)
    } else {
        // Majority healthy, or a tie: the `else` branch of Eqn. 1 —
        // default to "not faulty".
        HMaj::Decided(true)
    };
    VoteTally {
        ok,
        faulty,
        epsilon,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_votes_decide() {
        assert_eq!(h_maj(vec![Some(true); 3]), HMaj::Decided(true));
        assert_eq!(h_maj(vec![Some(false); 3]), HMaj::Decided(false));
    }

    #[test]
    fn epsilon_votes_are_excluded() {
        assert_eq!(
            h_maj([None, Some(true), Some(true), Some(false)]),
            HMaj::Decided(true)
        );
        assert_eq!(h_maj([None, None, Some(false)]), HMaj::Decided(false));
    }

    #[test]
    fn all_epsilon_is_undecidable() {
        assert_eq!(h_maj(std::iter::repeat_n(None, 5)), HMaj::Undecidable);
        assert_eq!(h_maj(std::iter::empty()), HMaj::Undecidable);
    }

    #[test]
    fn tie_defaults_to_not_faulty() {
        // Eqn. 1 `else` branch: protects correct nodes from split votes
        // caused by malicious/asymmetric disseminators.
        assert_eq!(h_maj([Some(true), Some(false)]), HMaj::Decided(true));
        assert_eq!(h_maj([Some(true), Some(false), None]), HMaj::Decided(true));
    }

    #[test]
    fn single_vote_decides() {
        // |excl(V, ε)| = 1: the lone opinion is the majority (Lemma 3's
        // blackout case relies on this).
        assert_eq!(h_maj([None, None, Some(false)]), HMaj::Decided(false));
        assert_eq!(h_maj([Some(true)]), HMaj::Decided(true));
    }

    #[test]
    fn decided_accessor() {
        assert_eq!(HMaj::Undecidable.decided(), None);
        assert_eq!(HMaj::Decided(false).decided(), Some(false));
    }

    #[test]
    fn tally_counts_every_bucket() {
        let t = h_maj_tally([Some(true), Some(false), Some(false), None]);
        assert_eq!((t.ok, t.faulty, t.epsilon), (1, 2, 1));
        assert_eq!(t.outcome, HMaj::Decided(false));
        assert!(t.contested());
    }

    #[test]
    fn tally_contested_classification() {
        // Unanimous healthy: the steady state, not contested.
        assert!(!h_maj_tally([Some(true), Some(true)]).contested());
        // Outvoted accusation: still contested.
        assert!(h_maj_tally([Some(true), Some(true), Some(false)]).contested());
        // ε exclusions alone mark the column contested.
        assert!(h_maj_tally([Some(true), None]).contested());
        // Undecidable (all ε) is contested by definition.
        assert!(h_maj_tally([None, None]).contested());
    }

    #[test]
    fn tally_outcome_matches_h_maj() {
        let cases: [&[Option<bool>]; 5] = [
            &[Some(true), Some(false)],
            &[Some(false), Some(false), Some(true)],
            &[None, None],
            &[Some(true); 4],
            &[None, Some(false)],
        ];
        for votes in cases {
            assert_eq!(
                h_maj_tally(votes.iter().copied()).outcome,
                h_maj(votes.iter().copied())
            );
        }
    }
}
