//! Read and send alignment (paper Sec. 5, Fig. 2).
//!
//! In a TDMA round, a job scheduled after `l` slots of round `k` sees
//! *fresh* values (sent in round `k`) for senders `1..=l` and *stale*
//! values (sent in round `k-1`) for senders `l+1..=N`. **Read alignment**
//! reconstructs a consistent snapshot of round `k-1` by combining the
//! previous activation's buffered values for the fresh positions with the
//! current values for the stale positions.
//!
//! **Send alignment** (Alg. 1, lines 7–10) chooses *which* syndrome to
//! write into the outgoing interface variable so that every local syndrome
//! transmitted in a given round refers to the same diagnosed round, even
//! when some nodes can send in the round their job runs in
//! (`send_curr_round_i`) and others cannot.

/// Combines buffered previous-activation values with current values so that
/// every position refers to the round *before* the current one.
///
/// `aligned[j] = prev[j]` for `j < l` (those slots were already refreshed
/// this round, so last round's value lives in the buffer) and
/// `aligned[j] = curr[j]` for `j >= l` (not yet refreshed: the current copy
/// still holds last round's value). This is lines 3–6 of Alg. 1.
///
/// # Panics
///
/// Panics if `prev` and `curr` have different lengths or `l > len`.
///
/// ```
/// use tt_core::alignment::read_align;
/// // Fig. 2 of the paper: N = 4, l = 2.
/// let prev = ["p1", "p2", "p3", "p4"];
/// let curr = ["c1", "c2", "c3", "c4"];
/// assert_eq!(read_align(&prev, &curr, 2), ["p1", "p2", "c3", "c4"]);
/// ```
pub fn read_align<T: Clone>(prev: &[T], curr: &[T], l: usize) -> Vec<T> {
    assert_eq!(prev.len(), curr.len(), "prev/curr length mismatch");
    assert!(l <= curr.len(), "l out of range");
    let mut out = Vec::with_capacity(curr.len());
    out.extend_from_slice(&prev[..l]);
    out.extend_from_slice(&curr[l..]);
    out
}

/// The send-alignment decision of Alg. 1, lines 7–10: which syndrome a node
/// writes into its outgoing interface variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendChoice {
    /// Write the syndrome aligned in the *current* activation (`al_ls`).
    Current,
    /// Write the syndrome aligned in the *previous* activation
    /// (`prev_al_ls`).
    Previous,
}

/// Chooses which aligned syndrome to disseminate.
///
/// * If **all** nodes can send in the round their job runs in
///   (`all_send_curr_round`, evaluable at design time for static
///   schedules), everyone writes the current aligned syndrome and the
///   protocol gains one round of latency (line 7).
/// * Otherwise, a node that *can* send this round writes the previous
///   aligned syndrome (line 9) while a node that cannot writes the current
///   one (line 10) — its write is only transmitted next round, so both
///   choices refer to the same diagnosed round on the bus.
pub fn send_align(all_send_curr_round: bool, send_curr_round: bool) -> SendChoice {
    if all_send_curr_round {
        SendChoice::Current
    } else if send_curr_round {
        SendChoice::Previous
    } else {
        SendChoice::Current
    }
}

/// Number of rounds between a diagnosed round and the round whose job
/// activations compute its consistent health vector.
///
/// With `all_send_curr_round` the analysis at round `k` diagnoses round
/// `k - 2`; otherwise round `k - 3` (Lemma 1: "either k - 3 or k - 2").
pub fn diagnosis_lag(all_send_curr_round: bool) -> u64 {
    if all_send_curr_round {
        2
    } else {
        3
    }
}

/// The diagnosed round that a local syndrome transmitted in `tx_round`
/// refers to.
///
/// Inverse of the pipeline timing: a fault in round `d` appears in the
/// aligned local syndrome whose transmission slot is round
/// `d + diagnosis_lag - 1`, so that the analysis at round
/// `d + diagnosis_lag` can read-align it into the diagnostic matrix.
/// Returns `None` for start-up rounds with no complete instance behind
/// them. Provenance consumers use this to stamp dissemination spans with
/// the fault round they carry evidence about.
pub fn syndrome_reference_round(
    tx_round: tt_sim::RoundIndex,
    all_send_curr_round: bool,
) -> Option<tt_sim::RoundIndex> {
    tx_round.checked_sub(diagnosis_lag(all_send_curr_round) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_align_boundaries() {
        let prev = [10, 20, 30];
        let curr = [1, 2, 3];
        assert_eq!(read_align(&prev, &curr, 0), vec![1, 2, 3]);
        assert_eq!(read_align(&prev, &curr, 3), vec![10, 20, 30]);
        assert_eq!(read_align(&prev, &curr, 1), vec![10, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn read_align_rejects_mismatched_lengths() {
        let _ = read_align(&[1], &[1, 2], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_align_rejects_large_l() {
        let _ = read_align(&[1, 2], &[1, 2], 3);
    }

    #[test]
    fn send_align_uniform_schedules_use_current() {
        assert_eq!(send_align(true, true), SendChoice::Current);
    }

    #[test]
    fn send_align_mixed_schedules_line_up() {
        // A node that sends this round ships last activation's syndrome;
        // one that sends next round ships this activation's. Both end up
        // on the bus in the same round referring to the same diagnosed
        // round.
        assert_eq!(send_align(false, true), SendChoice::Previous);
        assert_eq!(send_align(false, false), SendChoice::Current);
    }

    #[test]
    fn diagnosis_lag_matches_lemma_1() {
        assert_eq!(diagnosis_lag(true), 2);
        assert_eq!(diagnosis_lag(false), 3);
    }

    #[test]
    fn syndrome_reference_round_inverts_pipeline_timing() {
        use tt_sim::RoundIndex;
        // Conservative alignment (lag 3): tx in round 12 refers to round 10.
        assert_eq!(
            syndrome_reference_round(RoundIndex::new(12), false),
            Some(RoundIndex::new(10))
        );
        // Uniform schedules (lag 2): tx in round 12 refers to round 11.
        assert_eq!(
            syndrome_reference_round(RoundIndex::new(12), true),
            Some(RoundIndex::new(11))
        );
        // Start-up rounds with no diagnosed round behind them.
        assert_eq!(syndrome_reference_round(RoundIndex::new(1), false), None);
        assert_eq!(syndrome_reference_round(RoundIndex::ZERO, true), None);
    }
}
