//! Bench comparing the paper's mechanism against the baselines: cost of
//! running each protocol/filter through the same environments.

use criterion::{criterion_group, criterion_main, Criterion};

use tt_baselines::{AlphaCount, TtpcCluster};
use tt_bench::comparison::{alpha_time_to_isolation, intermittent_detection, ttpc_survival};
use tt_fault::TransientScenario;
use tt_sim::{Nanos, SlotEffect, TxCtx};

fn pattern(ctx: &TxCtx) -> SlotEffect {
    if ctx.abs_slot % 13 == 5 {
        SlotEffect::Benign
    } else {
        SlotEffect::Correct
    }
}

fn bench_baselines(c: &mut Criterion) {
    let t = Nanos::from_micros(2_500);
    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);
    group.bench_function("ttpc_100_rounds", |b| {
        b.iter(|| {
            let mut cl = TtpcCluster::new(4, Box::new(pattern));
            cl.run_rounds(100);
            cl.alive()
        })
    });
    group.bench_function("ttpc_blinking_light_survival", |b| {
        b.iter(|| ttpc_survival(&TransientScenario::blinking_light(), t, 4))
    });
    group.bench_function("alpha_blinking_light_isolation", |b| {
        let k = AlphaCount::max_uncorrelating_k(5.0, 1_000_000).min(0.999_999_9);
        b.iter(|| alpha_time_to_isolation(&TransientScenario::blinking_light(), k, 5.0, t, 4))
    });
    group.bench_function("intermittent_detection_all_mechanisms", |b| {
        let k = AlphaCount::max_uncorrelating_k(5.0, 1_000_000).min(0.999_999_9);
        b.iter(|| intermittent_detection(20, 5, 1_000_000, k, 5.0, 4))
    });
    group.finish();
    // Correctness guard: the baseline really does lose the whole cluster.
    let (_, alive) = ttpc_survival(&TransientScenario::blinking_light(), t, 4);
    assert_eq!(alive, 0);
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
