//! Bench for the Sec. 8 validation campaign: cost of one experiment per
//! class, plus a small end-to-end campaign.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tt_fault::{run_experiment, sec8_classes, ExperimentClass};
use tt_sim::NodeId;

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec8_validation");
    group.sample_size(20);
    let representative = [
        ExperimentClass::Burst {
            len_slots: 1,
            start_slot: 0,
        },
        ExperimentClass::Burst {
            len_slots: 2,
            start_slot: 3,
        },
        ExperimentClass::Burst {
            len_slots: 8,
            start_slot: 0,
        },
        ExperimentClass::PenaltyRewardStepping {
            node: NodeId::new(2),
        },
        ExperimentClass::MaliciousSyndromes {
            node: NodeId::new(3),
        },
        ExperimentClass::CliqueFormation {
            victim: NodeId::new(1),
        },
    ];
    for class in representative {
        group.bench_with_input(
            BenchmarkId::new("experiment", class.label()),
            &class,
            |b, &class| {
                b.iter(|| {
                    let o = run_experiment(class, 4, 5);
                    assert!(o.passed, "{:?}", o.notes);
                    o
                })
            },
        );
    }
    group.bench_function("campaign_1rep_all_classes", |b| {
        let classes = sec8_classes(4);
        b.iter(|| {
            let r = tt_fault::run_campaign(&classes, 4, 1, 42);
            assert!(r.all_passed());
            r.total()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
