//! Scaling benches for the add-on protocol itself: per-round cost of the
//! full five-phase pipeline as the cluster grows, plus micro-benches for
//! the voting and alignment primitives, and an ablation comparing the
//! conservative and `all_send_curr_round` configurations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tt_core::alignment::read_align;
use tt_core::voting::h_maj;
use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{ClusterBuilder, Nanos, SlotEffect, TraceMode, TxCtx};

fn cluster_rounds(n: usize, rounds: u64, all_curr: bool) -> u64 {
    let cfg = ProtocolConfig::builder(n)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .all_send_curr_round(all_curr)
        .build()
        .unwrap();
    // A sparse benign pattern keeps the matrices non-trivial.
    let pipeline = |ctx: &TxCtx| {
        if ctx.abs_slot % 17 == 3 {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let round_len = Nanos::from_nanos(2_560_000); // divisible by all n used
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round_len)
        .trace_mode(TraceMode::Off)
        .build(Box::new(pipeline))
        .unwrap();
    for id in tt_sim::NodeId::all(n) {
        cluster
            .add_job(
                id,
                0,
                Box::new(DiagJob::with_logging(id, cfg.clone(), false)),
            )
            .unwrap();
    }
    cluster.run_rounds(rounds);
    cluster.round().as_u64()
}

fn bench_protocol_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_rounds");
    for n in [4usize, 8, 16, 32] {
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("100_rounds", n), &n, |b, &n| {
            b.iter(|| cluster_rounds(n, 100, false))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("alignment_ablation");
    group.bench_function("conservative_lag3_n8", |b| {
        b.iter(|| cluster_rounds(8, 100, false))
    });
    group.bench_function("all_send_curr_lag2_n8", |b| {
        b.iter(|| cluster_rounds(8, 100, true))
    });
    group.finish();

    let mut group = c.benchmark_group("primitives");
    for n in [4usize, 16, 64, 256] {
        let votes: Vec<Option<bool>> = (0..n)
            .map(|i| match i % 5 {
                0 => None,
                1 => Some(false),
                _ => Some(true),
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("h_maj", n), &votes, |b, votes| {
            b.iter(|| h_maj(black_box(votes.iter().copied())))
        });
        let prev: Vec<u64> = (0..n as u64).collect();
        let curr: Vec<u64> = (0..n as u64).map(|x| x + 1).collect();
        group.bench_with_input(BenchmarkId::new("read_align", n), &n, |b, &n| {
            b.iter(|| read_align(black_box(&prev), black_box(&curr), n / 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_scaling);
criterion_main!(benches);
