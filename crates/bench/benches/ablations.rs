//! Ablation benches: the sensitivity sweeps around the paper's tuned
//! operating points (P, R, burst length), each iteration running the full
//! sweep on the simulator.

use criterion::{criterion_group, criterion_main, Criterion};

use tt_analysis::{burst_length_sweep, penalty_sweep, reward_sweep};
use tt_fault::TransientScenario;
use tt_sim::Nanos;

fn bench_ablations(c: &mut Criterion) {
    let t = Nanos::from_micros(2_500);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("penalty_sweep_5_points", |b| {
        let scenario = TransientScenario::blinking_light();
        b.iter(|| penalty_sweep(&scenario, 40, 1_000_000, t, 4, [50u64, 100, 197, 400, 700]))
    });
    group.bench_function("reward_sweep_boundary", |b| {
        b.iter(|| reward_sweep(10, 3, 4, [5u64, 8, 9, 10, 20, 100]))
    });
    group.bench_function("burst_length_sweep", |b| {
        b.iter(|| burst_length_sweep(4, [1u64, 2, 4, 8, 16]))
    });
    group.finish();
    // Correctness guards: the correlation boundary sits at R = period - 1.
    let points = reward_sweep(10, 3, 4, [9u64, 10]);
    assert!(!points[0].correlated && points[1].correlated);
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
