//! Bench for Tables 3 & 4: replaying the abnormal transient scenarios until
//! incorrect isolation.
//!
//! The automotive SC and aerospace rows are short (hundreds of simulated
//! rounds); the NSR row simulates ~25 simulated seconds (~10k rounds) per
//! iteration and runs with a reduced sample count.

use criterion::{criterion_group, criterion_main, Criterion};

use tt_analysis::measure_time_to_isolation;
use tt_fault::TransientScenario;
use tt_sim::Nanos;

const T: Nanos = Nanos::from_micros(2_500);

fn bench_isolation(c: &mut Criterion) {
    let blinking = TransientScenario::blinking_light();
    let lightning = TransientScenario::lightning_bolt();
    let mut group = c.benchmark_group("table4_isolation");
    group.sample_size(10);
    group.bench_function("auto_SC_s40", |b| {
        b.iter(|| measure_time_to_isolation(&blinking, 40, 197, 1_000_000, T, 4))
    });
    group.bench_function("auto_SR_s6", |b| {
        b.iter(|| measure_time_to_isolation(&blinking, 6, 197, 1_000_000, T, 4))
    });
    group.bench_function("auto_NSR_s1", |b| {
        b.iter(|| measure_time_to_isolation(&blinking, 1, 197, 1_000_000, T, 4))
    });
    group.bench_function("aero_SC_s1", |b| {
        b.iter(|| measure_time_to_isolation(&lightning, 1, 17, 1_000_000, T, 4))
    });
    group.finish();
    // Correctness guards: SC ~0.518 s, aero ~0.205 s.
    let sc = measure_time_to_isolation(&blinking, 40, 197, 1_000_000, T, 4);
    assert!((sc.time_to_isolation.unwrap().as_secs_f64() - 0.518).abs() < 0.01);
    let aero = measure_time_to_isolation(&lightning, 1, 17, 1_000_000, T, 4);
    assert!((aero.time_to_isolation.unwrap().as_secs_f64() - 0.205).abs() < 0.01);
}

criterion_group!(benches, bench_isolation);
criterion_main!(benches);
