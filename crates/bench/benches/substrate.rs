//! Substrate benches: raw engine slot throughput, frame codec, syndrome
//! codec, clock resynchronization — the costs under every protocol number.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tt_core::syndrome::Syndrome;
use tt_sim::{
    crc32, ClockConfig, ClockEnsemble, ClusterBuilder, Frame, Nanos, NodeId, RoundIndex, TraceMode,
};

fn bench_substrate(c: &mut Criterion) {
    // Engine: rounds/second with an idle job on every node.
    let mut group = c.benchmark_group("engine");
    for n in [4usize, 16, 64] {
        group.throughput(Throughput::Elements(1_000));
        group.bench_with_input(BenchmarkId::new("1000_idle_rounds", n), &n, |b, &n| {
            struct Idle;
            impl tt_sim::Job for Idle {
                fn execute(&mut self, ctx: &mut tt_sim::JobCtx<'_>) {
                    ctx.write_iface(vec![0u8]);
                }
                fn as_any(&self) -> &dyn std::any::Any {
                    self
                }
            }
            b.iter(|| {
                let mut cluster = ClusterBuilder::new(n)
                    .round_length(Nanos::from_nanos(2_560_000))
                    .trace_mode(TraceMode::Off)
                    .build_with_jobs(|_| Box::new(Idle), Box::new(tt_sim::NoFaults));
                cluster.run_rounds(1_000);
                cluster.round().as_u64()
            })
        });
    }
    group.finish();

    // Frame codec and CRC.
    let mut group = c.benchmark_group("frame_codec");
    let frame = Frame {
        sender: NodeId::new(3),
        round: RoundIndex::new(1_000),
        payload: bytes::Bytes::from(vec![0xA5u8; 8]),
    };
    let wire = frame.encode();
    group.bench_function("encode", |b| b.iter(|| black_box(&frame).encode()));
    group.bench_function("decode", |b| {
        b.iter(|| Frame::decode(black_box(&wire), NodeId::new(3), RoundIndex::new(1_000)))
    });
    group.bench_function("crc32_64bytes", |b| {
        let data = vec![0x5Au8; 64];
        b.iter(|| crc32(black_box(&data)))
    });
    group.finish();

    // Syndrome codec across cluster sizes.
    let mut group = c.benchmark_group("syndrome_codec");
    for n in [4usize, 16, 64, 256] {
        let s = Syndrome::all_ok(n);
        let enc = s.encode();
        group.bench_with_input(BenchmarkId::new("encode", n), &s, |b, s| {
            b.iter(|| s.encode())
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &n, |b, &n| {
            b.iter(|| Syndrome::decode(black_box(&enc), n))
        });
    }
    group.finish();

    // Clock resynchronization step.
    let mut group = c.benchmark_group("clock");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("resync_round", n), &n, |b, &n| {
            let mut cfg = ClockConfig::healthy(n);
            cfg.fta_drop = 1;
            let mut ensemble = ClockEnsemble::new(cfg, 1);
            b.iter(|| {
                ensemble.advance_round();
                ensemble.precision_ns()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
