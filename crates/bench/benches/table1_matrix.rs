//! Bench for Table 1: building a diagnostic matrix and voting it into a
//! consistent health vector, across cluster sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use tt_core::matrix::matrix_with_benign_faulty;
use tt_sim::NodeId;

fn bench_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_matrix");
    for n in [4usize, 8, 16, 32, 64] {
        let faulty: Vec<NodeId> = (1..=n as u32 / 4).map(NodeId::new).collect();
        group.bench_with_input(BenchmarkId::new("build_and_vote", n), &n, |b, &n| {
            b.iter(|| {
                let m = matrix_with_benign_faulty(black_box(n), &faulty);
                m.consistent_health_vector(|_| None)
            })
        });
        let m = matrix_with_benign_faulty(n, &faulty);
        group.bench_with_input(BenchmarkId::new("vote_only", n), &n, |b, _| {
            b.iter(|| m.consistent_health_vector(|_| None))
        });
    }
    // The paper's exact instance for reference.
    let m4 = matrix_with_benign_faulty(4, &[NodeId::new(3), NodeId::new(4)]);
    group.bench_function("paper_4node_instance", |b| {
        b.iter(|| m4.consistent_health_vector(|_| None))
    });
    group.finish();
    assert_eq!(
        matrix_with_benign_faulty(4, &[NodeId::new(3), NodeId::new(4)])
            .consistent_health_vector(|_| None),
        vec![true, true, false, false]
    );
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
