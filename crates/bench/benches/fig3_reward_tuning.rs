//! Bench for Fig. 3: the reward-threshold tuning model.
//!
//! Measures the cost of evaluating the false-correlation curve and of
//! inverting it (finding the maximal `R` for a target probability), and
//! regenerates the figure's series as a side effect of the run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use tt_analysis::correlation::{curve, default_r_sweep, default_rates};
use tt_analysis::max_reward_threshold;
use tt_sim::Nanos;

fn bench_fig3(c: &mut Criterion) {
    let t = Nanos::from_micros(2_500);
    let mut group = c.benchmark_group("fig3");
    group.bench_function("full_curve_family", |b| {
        b.iter(|| {
            let mut points = 0usize;
            for &rate in &default_rates() {
                points += curve(black_box(rate), t, default_r_sweep()).len();
            }
            points
        })
    });
    group.bench_function("invert_r_for_one_percent", |b| {
        b.iter(|| {
            default_rates()
                .iter()
                .map(|&rate| max_reward_threshold(black_box(rate), t, 0.01))
                .sum::<u64>()
        })
    });
    group.finish();
    // Correctness guard: the paper's operating point stays below 1 %.
    let p = tt_analysis::correlation_probability(0.014, 1_000_000, t);
    assert!(p < 0.01);
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
