//! Bench for the Sec. 10 system-level variant: per-round cost at slot
//! granularity, with and without the membership composition, compared to
//! the add-on protocol on the same fault pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tt_core::lowlat::LowLatCluster;
use tt_core::{DiagJob, ProtocolConfig};
use tt_sim::{ClusterBuilder, SlotEffect, TraceMode, TxCtx};

fn pattern(ctx: &TxCtx) -> SlotEffect {
    if ctx.abs_slot % 13 == 5 {
        SlotEffect::Benign
    } else {
        SlotEffect::Correct
    }
}

fn bench_lowlat(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowlat_100_rounds");
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("diagnosis", n), &n, |b, &n| {
            b.iter(|| {
                let mut cl = LowLatCluster::new(n, false, Box::new(pattern));
                cl.run_rounds(100);
                cl.verdicts(tt_sim::NodeId::new(1)).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("with_membership", n), &n, |b, &n| {
            b.iter(|| {
                let mut cl = LowLatCluster::new(n, true, Box::new(pattern));
                cl.run_rounds(100);
                cl.verdicts(tt_sim::NodeId::new(1)).len()
            })
        });
    }
    // Baseline: the portable add-on on the same pattern and size.
    group.bench_function("addon_baseline_n4", |b| {
        let cfg = ProtocolConfig::builder(4)
            .penalty_threshold(u64::MAX / 2)
            .reward_threshold(u64::MAX / 2)
            .build()
            .unwrap();
        b.iter(|| {
            let mut cluster = ClusterBuilder::new(4)
                .trace_mode(TraceMode::Off)
                .build_with_jobs(
                    |id| Box::new(DiagJob::with_logging(id, cfg.clone(), false)),
                    Box::new(pattern),
                );
            cluster.run_rounds(100);
            cluster.round().as_u64()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lowlat);
criterion_main!(benches);
