//! Bench for Table 2: the continuous-burst tuning procedure.
//!
//! Each iteration runs the full penalty-budget measurement on the
//! simulator (hundreds of TDMA rounds with the protocol active on every
//! node).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tt_analysis::tuning::{automotive_setup, measure_penalty_budget};
use tt_analysis::{aerospace_setup, tune};
use tt_sim::Nanos;

fn bench_tuning(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_tuning");
    group.sample_size(20);
    let setup = automotive_setup();
    for (label, outage_ms) in [("SC_20ms", 20u64), ("SR_100ms", 100), ("NSR_500ms", 500)] {
        group.bench_with_input(
            BenchmarkId::new("penalty_budget", label),
            &outage_ms,
            |b, &ms| b.iter(|| measure_penalty_budget(&setup, Nanos::from_millis(ms))),
        );
    }
    group.bench_function("tune_automotive_full", |b| {
        b.iter(|| tune(&automotive_setup()).penalty_threshold)
    });
    group.bench_function("tune_aerospace_full", |b| {
        b.iter(|| tune(&aerospace_setup()).penalty_threshold)
    });
    group.finish();
    // Correctness guard: the paper's constants.
    assert_eq!(tune(&automotive_setup()).penalty_threshold, 197);
    assert_eq!(tune(&aerospace_setup()).penalty_threshold, 17);
}

criterion_group!(benches, bench_tuning);
criterion_main!(benches);
