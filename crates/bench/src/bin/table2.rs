//! Regenerates the paper's Table 2 (experimental tuning of the p/r
//! algorithm) by running the continuous-burst tuning procedure.

fn main() {
    println!("{}", tt_bench::table2_report());
}
