//! `throughput` — measures simulation and campaign throughput and writes
//! `BENCH_throughput.json` (run from the repository root:
//! `cargo run --release -p tt-bench --bin throughput`).
//!
//! Four families of numbers:
//!
//! * **rounds/sec** of the substrate hot path (`Cluster::run_round` with a
//!   healthy bus and `TraceMode::Off`) for N ∈ {4, 8, 16} nodes;
//! * **experiments/sec** of the Sec. 8 validation campaign, repeatedly
//!   issued the way sensitivity/tuning sweeps do, on the persistent
//!   [`tt_bench::CampaignExecutor`] pool versus the legacy
//!   spawn-per-campaign runner, at 8 worker threads;
//! * with `--batched`, **experiments/sec** of the lockstep
//!   [`tt_bench::BatchedCampaign`] engine on a *single* worker thread at
//!   N=8 — structure-of-arrays lanes versus one-cluster-per-experiment
//!   pooling — cross-checked digest-for-digest against the sequential
//!   scalar path;
//! * the **instrumented-vs-noop overhead** of the observability layer on a
//!   full diagnostic cluster ([`tt_bench::measure_overhead`]).
//!
//! With `--gate BASELINE.json` the run additionally compares its N=8
//! rounds/sec (and, like-for-like, its batched sample) against the
//! committed baseline and exits non-zero on a regression beyond
//! [`tt_bench::GATE_MAX_REGRESSION`] — this is the CI bench gate.

use std::time::Instant;

use serde::Serialize;

use tt_bench::{
    check_batched_gate, check_rounds_gate, matches_scalar, measure_overhead, run_parallel_campaign,
    run_parallel_campaign_legacy, BatchedCampaign, BatchedSample, HostFingerprint, OverheadSample,
    RoundsSample, ThroughputBaseline, GATE_N_NODES,
};
use tt_fault::{execute_schedule, run_campaign, sec8_classes, ExploreConfig};
use tt_sim::{ClusterBuilder, NoFaults, TraceMode};

#[derive(Serialize)]
struct CampaignSample {
    classes: usize,
    reps: u64,
    threads: usize,
    iterations: usize,
    pooled_experiments_per_sec: f64,
    legacy_experiments_per_sec: f64,
    pooled_over_legacy: f64,
    matches_sequential: bool,
}

#[derive(Serialize)]
struct ThroughputReport {
    /// The machine the numbers were measured on — recorded so a
    /// baseline's provenance is visible (and machine-checkable by the
    /// batched gate) when comparing reports across hosts.
    host: HostFingerprint,
    rounds: Vec<RoundsSample>,
    campaign: CampaignSample,
    /// `null` when the run was invoked without `--batched`.
    batched: Option<BatchedSample>,
    overhead: OverheadSample,
}

/// Steady-state rounds/sec of an n-node cluster with tracing off.
fn rounds_per_sec(n: usize) -> f64 {
    let mut cluster = ClusterBuilder::new(n)
        .trace_mode(TraceMode::Off)
        .build(Box::new(NoFaults))
        .expect("valid cluster");
    cluster.run_rounds(1_000); // warm the scratch buffers
    let batch = 10_000u64;
    let mut rounds = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < 0.5 {
        cluster.run_rounds(batch);
        rounds += batch;
    }
    rounds as f64 / start.elapsed().as_secs_f64()
}

/// Experiments/sec over repeated Sec. 8 campaigns: pooled vs legacy runner.
fn campaign_sample() -> CampaignSample {
    let classes = sec8_classes(4);
    let (n, reps, threads, base_seed) = (4usize, 1u64, 8usize, 2_007u64);
    let iterations = 20usize;

    // Correctness cross-check doubles as warm-up (the pooled warm-up spawns
    // and caches the executor — exactly what a sweep's first call does).
    let seq = run_campaign(&classes, n, reps, base_seed);
    let pooled = run_parallel_campaign(&classes, n, reps, base_seed, threads);
    let legacy = run_parallel_campaign_legacy(&classes, n, reps, base_seed, threads);
    let matches_sequential = seq.outcomes == pooled.outcomes && seq.outcomes == legacy.outcomes;

    let experiments = (iterations * classes.len()) as u64 * reps;
    let start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(run_parallel_campaign(&classes, n, reps, base_seed, threads));
    }
    let pooled_experiments_per_sec = experiments as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(run_parallel_campaign_legacy(
            &classes, n, reps, base_seed, threads,
        ));
    }
    let legacy_experiments_per_sec = experiments as f64 / start.elapsed().as_secs_f64();

    CampaignSample {
        classes: classes.len(),
        reps,
        threads,
        iterations,
        pooled_experiments_per_sec,
        legacy_experiments_per_sec,
        pooled_over_legacy: pooled_experiments_per_sec / legacy_experiments_per_sec,
        matches_sequential,
    }
}

/// Experiments/sec of the single-threaded lockstep engine at the gated
/// cluster size, with a sequential scalar cross-check as warm-up and a
/// one-cluster-per-experiment run of the identical workload as the pooled
/// reference.
fn batched_sample(host: &HostFingerprint) -> BatchedSample {
    let campaign = BatchedCampaign {
        schedule: ExploreConfig {
            n: GATE_N_NODES,
            rounds: 24,
            ..ExploreConfig::default()
        },
        experiments: 4_096,
        batch_size: 256,
        threads: 1,
        base_seed: 2_007,
    };
    let iterations = 8usize;

    // Correctness cross-check doubles as warm-up: a smaller slice of the
    // same work list is re-derived experiment by experiment on the scalar
    // path and compared digest for digest.
    let check = BatchedCampaign {
        experiments: 512,
        ..campaign.clone()
    };
    let matches = matches_scalar(&check, &check.run().outcomes);

    // The pooled reference: the same experiment list, one scalar cluster
    // per experiment, on the same single worker thread.
    let start = Instant::now();
    for index in 0..check.experiments {
        std::hint::black_box(execute_schedule(&check.schedule_for(index)));
    }
    let pooled_experiments_per_sec = check.experiments as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(campaign.run());
    }
    let experiments = (iterations * campaign.experiments) as f64;
    let batched_experiments_per_sec = experiments / start.elapsed().as_secs_f64();

    BatchedSample {
        n_nodes: campaign.schedule.n,
        rounds_per_experiment: campaign.schedule.rounds,
        experiments: campaign.experiments,
        batch_size: campaign.batch_size,
        threads: campaign.threads,
        iterations,
        batched_experiments_per_sec,
        pooled_experiments_per_sec,
        batched_over_pooled: batched_experiments_per_sec / pooled_experiments_per_sec,
        matches_scalar: matches,
        host: Some(host.clone()),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut gate: Option<String> = None;
    let mut batched = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--gate" => gate = Some(args.next().expect("--gate needs a baseline path")),
            "--batched" => batched = true,
            other => {
                eprintln!(
                    "unknown flag {other:?} (usage: throughput [--batched] [--gate BASELINE.json])"
                );
                std::process::exit(2);
            }
        }
    }

    let host = HostFingerprint::detect();
    println!(
        "host: {} logical cores, {}, target {}",
        host.logical_cores, host.cpu_model, host.target_cpu
    );

    let rounds: Vec<RoundsSample> = [4usize, 8, 16]
        .into_iter()
        .map(|n_nodes| {
            let r = RoundsSample {
                n_nodes,
                rounds_per_sec: rounds_per_sec(n_nodes),
            };
            println!("N={:<2} {:>12.0} rounds/sec", r.n_nodes, r.rounds_per_sec);
            r
        })
        .collect();

    let campaign = campaign_sample();
    println!(
        "sec8 campaign ({} classes x {} reps, {} threads, {} iterations):",
        campaign.classes, campaign.reps, campaign.threads, campaign.iterations
    );
    println!(
        "  pooled {:>9.1} exp/sec | legacy {:>9.1} exp/sec | ratio {:.2}x | matches sequential: {}",
        campaign.pooled_experiments_per_sec,
        campaign.legacy_experiments_per_sec,
        campaign.pooled_over_legacy,
        campaign.matches_sequential
    );

    let batched = batched.then(|| {
        let b = batched_sample(&host);
        println!(
            "batched lockstep campaign (N={}, {} rounds, batch {}, {} thread, {} iterations):",
            b.n_nodes, b.rounds_per_experiment, b.batch_size, b.threads, b.iterations
        );
        println!(
            "  batched {:>9.1} exp/sec | pooled {:>9.1} exp/sec | ratio {:.2}x | \
             matches scalar: {}",
            b.batched_experiments_per_sec,
            b.pooled_experiments_per_sec,
            b.batched_over_pooled,
            b.matches_scalar
        );
        b
    });

    let overhead = measure_overhead(GATE_N_NODES, 20_000);
    println!(
        "observability overhead (N={}, {} rounds): noop {:>9.0} r/s | recording {:>9.0} r/s \
         | {:.2}x | {} events",
        overhead.n_nodes,
        overhead.rounds,
        overhead.noop_rounds_per_sec,
        overhead.recording_rounds_per_sec,
        overhead.noop_over_recording,
        overhead.recorded_events
    );
    println!(
        "tracing overhead       (N={}, {} rounds): noop {:>9.0} r/s | tracing   {:>9.0} r/s \
         | {:.2}x | {} spans",
        overhead.n_nodes,
        overhead.rounds,
        overhead.noop_rounds_per_sec,
        overhead.tracing_rounds_per_sec,
        overhead.noop_over_tracing,
        overhead.recorded_spans
    );

    let report = ThroughputReport {
        host,
        rounds,
        campaign,
        batched,
        overhead,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_throughput.json", json + "\n").expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");

    if let Some(path) = gate {
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading gate baseline {path}: {e}"));
        let baseline: ThroughputBaseline = serde_json::from_str(&body)
            .unwrap_or_else(|e| panic!("parsing gate baseline {path}: {e}"));
        match check_rounds_gate(&baseline.rounds, &report.rounds) {
            Ok(verdict) => println!("{verdict}"),
            Err(verdict) => {
                eprintln!("{verdict}");
                std::process::exit(1);
            }
        }
        match &report.batched {
            None => println!("batched gate: run without --batched — skipping"),
            Some(current) => match check_batched_gate(baseline.batched.as_ref(), current) {
                Ok(verdict) => println!("{verdict}"),
                Err(verdict) => {
                    eprintln!("{verdict}");
                    std::process::exit(1);
                }
            },
        }
    }
}
