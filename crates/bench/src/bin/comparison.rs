//! Quantitative comparison against the baseline mechanisms: availability
//! under abnormal transients and detection of unhealthy nodes.

fn main() {
    println!("{}", tt_bench::comparison_report());
}
