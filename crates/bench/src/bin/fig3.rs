//! Regenerates the paper's Fig. 3 (reward-threshold tuning trade-off).

fn main() {
    println!("{}", tt_bench::fig3_report());
}
