//! Runs the Sec. 8 fault-injection validation campaign.
//!
//! Usage: `validation [repetitions] [threads] [--json <path>]` (default 100
//! repetitions — the paper's count per class — on 8 threads). With
//! `--json`, the full per-experiment outcomes are also written to `<path>`
//! for archival/regression diffing.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = Some(it.next().expect("--json requires a path"));
        } else {
            positional.push(a);
        }
    }
    let reps: u64 = positional
        .first()
        .map(|a| a.parse().expect("repetitions must be a number"))
        .unwrap_or(100);
    let threads: usize = positional
        .get(1)
        .map(|a| a.parse().expect("threads must be a number"))
        .unwrap_or(8);
    if let Some(path) = json_path {
        let classes = tt_fault::sec8_classes(4);
        let result = tt_bench::run_parallel_campaign(&classes, 4, reps, 2_007, threads);
        let json = serde_json::to_string_pretty(&result).expect("campaign serializes");
        std::fs::write(&path, json).expect("write campaign results");
        println!("wrote {} outcomes to {path}", result.total());
        assert!(result.all_passed(), "campaign failures recorded in {path}");
    } else {
        println!("{}", tt_bench::validation_report(reps, threads));
    }
}
