//! Regenerates the golden snapshots under `tests/golden/` (run from the
//! repository root after an intentional report change).

fn main() {
    let dir = std::path::Path::new("tests/golden");
    for (name, content) in [
        ("fig1.txt", tt_bench::fig1_report()),
        ("fig2.txt", tt_bench::fig2_report()),
        ("table1.txt", tt_bench::table1_report()),
        ("fig3.txt", tt_bench::fig3_report()),
        ("table2.txt", tt_bench::table2_report()),
        ("table3.txt", tt_bench::table3_report()),
        ("bandwidth.txt", tt_bench::bandwidth_report()),
        ("lowlat.txt", tt_bench::lowlat_report()),
        ("metrics_events.json", {
            let report = tt_bench::canonical_metrics_report();
            serde_json::to_string_pretty(&report).unwrap() + "\n"
        }),
        ("metrics_events_lightning.json", {
            let report = tt_bench::lightning_metrics_report();
            serde_json::to_string_pretty(&report).unwrap() + "\n"
        }),
        ("tune_sweep_small.json", {
            // The pinned small grid behind CI's tune-goldens job: the
            // default `SweepConfig` IS the golden grid.
            let outcome = tt_analysis::run_sweep(
                &tt_analysis::SweepConfig::default(),
                &tt_analysis::SweepSupervisor::default(),
            )
            .unwrap();
            tt_analysis::sweep_json(&outcome.report)
        }),
    ] {
        std::fs::write(dir.join(name), content).unwrap();
        println!("wrote {name}");
    }
}
