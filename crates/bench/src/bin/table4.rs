//! Regenerates the paper's Tables 3 and 4 (abnormal transient scenarios and
//! the resulting time to incorrect isolation).

fn main() {
    println!("{}", tt_bench::table3_report());
    println!("{}", tt_bench::table4_report());
}
