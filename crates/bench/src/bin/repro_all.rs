//! Regenerates every table and figure of the paper in one run.
//!
//! Usage: `repro_all [validation-repetitions]` (default 100).

fn main() {
    let reps: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("repetitions must be a number"))
        .unwrap_or(100);
    let sep = "=".repeat(78);
    for (name, report) in [
        ("Fig. 1", tt_bench::fig1_report()),
        ("Fig. 2", tt_bench::fig2_report()),
        ("Table 1", tt_bench::table1_report()),
        ("Fig. 3", tt_bench::fig3_report()),
        ("Table 2", tt_bench::table2_report()),
        ("Table 3", tt_bench::table3_report()),
        ("Table 4", tt_bench::table4_report()),
        ("Sec. 8 validation", tt_bench::validation_report(reps, 8)),
        ("Sec. 10 variants", tt_bench::lowlat_report()),
        ("Bandwidth", tt_bench::bandwidth_report()),
        ("Ablations", tt_bench::ablation_report()),
        ("Baseline comparison", tt_bench::comparison_report()),
    ] {
        println!("{sep}\n{name}\n{sep}\n{report}");
    }
}
