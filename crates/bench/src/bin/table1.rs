//! Regenerates the paper's Table 1 (example diagnostic matrix).

fn main() {
    println!("{}", tt_bench::table1_report());
}
