//! The long-lived diagnosis job service behind `ttdiag serve`.
//!
//! A [`DiagService`] owns the three live feed hubs (`metrics`, `spans`,
//! `progress`), a state directory of per-job checkpoints, and one executor
//! thread that drains a job queue. Jobs are the three campaign-scale
//! workloads the CLI already runs in batch mode — the Sec. 8 validation
//! [`JobSpec::Campaign`], the coverage-guided [`JobSpec::Explore`], and
//! the Sec. 9 Monte Carlo [`JobSpec::TuneSweep`] — executed **in chunks**
//! on the existing supervised machinery with a checkpoint written after
//! every chunk, so any job can be halted over the admin socket and later
//! resumed byte-identically from its checkpoint.
//!
//! Liveness contract: the executor publishes [`ProgressEvent`]s (started /
//! per-settle / per-chunk / halted / finished) to the progress hub, and
//! campaign experiment clusters run with the streaming metrics/trace sinks
//! attached — all behind the `StreamHub` zero-subscriber fast path, so an
//! unobserved service pays nothing on the simulation hot path. Explore and
//! tune-sweep jobs execute on the batched lockstep engine and therefore
//! feed the progress stream only.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use tt_analysis::{resume_sweep, run_sweep, SweepConfig, SweepSupervisor};
use tt_fault::{
    no_extra_oracle, read_json, sec8_classes, write_json_atomic, CampaignCheckpoint,
    ExperimentSinks, ExploreCheckpoint, ExploreConfig, Explorer, NoHarnessFaults,
};
use tt_sim::{
    MetricsEvent, ProgressEvent, SpanEvent, StreamHub, StreamingSink, StreamingTraceSink,
};

use crate::observability::HostFingerprint;
use crate::supervised::{LiveFeeds, SupervisedCampaign, SupervisorConfig};

/// The three live feed hubs of one service instance.
#[derive(Debug, Clone, Default)]
pub struct FeedHubs {
    /// `MetricsEvent` feed (campaign experiment clusters).
    pub metrics: Arc<StreamHub<MetricsEvent>>,
    /// `SpanEvent` provenance feed (campaign experiment clusters).
    pub spans: Arc<StreamHub<SpanEvent>>,
    /// `ProgressEvent` job-lifecycle feed (all job kinds).
    pub progress: Arc<StreamHub<ProgressEvent>>,
}

impl FeedHubs {
    /// Fresh hubs with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One job accepted over the admin socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobSpec {
    /// The Sec. 8 validation campaign on the supervised executor.
    Campaign {
        /// Cluster size (≥ 4).
        nodes: usize,
        /// Seeded repetitions per experiment class.
        reps: u64,
        /// Base seed (per-item seeds derive deterministically).
        base_seed: u64,
        /// Worker threads.
        threads: usize,
        /// Experiments settled per chunk (checkpoint + halt granularity).
        chunk: u64,
    },
    /// The coverage-guided fault-scenario explorer.
    Explore {
        /// Cluster size (≥ 4).
        nodes: usize,
        /// Rounds per schedule execution.
        rounds: u64,
        /// Schedule executions to spend.
        budget: u64,
        /// Generator/mutator seed.
        seed: u64,
        /// Schedules executed per chunk.
        chunk: u64,
    },
    /// The pinned small Sec. 9 tuning grid (the default [`SweepConfig`]).
    TuneSweep {
        /// Sweep cells completed per chunk.
        chunk: u64,
    },
}

impl JobSpec {
    /// A short stable label for the job kind.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Campaign { .. } => "campaign",
            JobSpec::Explore { .. } => "explore",
            JobSpec::TuneSweep { .. } => "tune-sweep",
        }
    }

    /// Total work items: experiments, schedule executions, or sweep cells.
    pub fn total(&self) -> u64 {
        match *self {
            JobSpec::Campaign { nodes, reps, .. } => sec8_classes(nodes).len() as u64 * reps,
            JobSpec::Explore { budget, .. } => budget,
            JobSpec::TuneSweep { .. } => SweepConfig::default().cells().len() as u64,
        }
    }

    /// Validates the spec (usage errors, reported before queueing).
    pub fn validate(&self) -> Result<(), String> {
        let chunk = match *self {
            JobSpec::Campaign {
                nodes, reps, chunk, ..
            } => {
                if nodes < 4 {
                    return Err("campaign needs nodes >= 4".into());
                }
                if reps == 0 {
                    return Err("campaign needs reps >= 1".into());
                }
                chunk
            }
            JobSpec::Explore {
                nodes,
                rounds,
                budget,
                chunk,
                ..
            } => {
                if nodes < 4 {
                    return Err("explore needs nodes >= 4".into());
                }
                if rounds < 12 {
                    return Err("explore needs rounds >= 12".into());
                }
                if budget == 0 {
                    return Err("explore needs budget >= 1".into());
                }
                chunk
            }
            JobSpec::TuneSweep { chunk } => chunk,
        };
        if chunk == 0 {
            return Err("chunk must be >= 1".into());
        }
        Ok(())
    }
}

/// Job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted, waiting for the executor.
    Queued,
    /// Currently executing.
    Running,
    /// Stopped at a halt request; resumable from its checkpoint.
    Halted,
    /// Ran to completion.
    Done,
    /// Terminal executor error (I/O, bad checkpoint).
    Failed,
}

impl JobState {
    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Halted => "halted",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// A snapshot of one job, as returned by submit/status responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Service-assigned job id (monotone from 1).
    pub id: u64,
    /// Job kind label (`campaign`, `explore`, `tune-sweep`).
    pub kind: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Work items settled so far (including quarantined ones).
    pub completed: u64,
    /// Total work items.
    pub total: u64,
    /// Items quarantined so far (campaign jobs).
    pub quarantined: u64,
    /// Checkpoints written for this job so far — the checkpoint sequence
    /// number live throughput numbers can be attributed to.
    pub checkpoint_seq: u64,
    /// Whether a halt was requested and not yet honored.
    pub halt_requested: bool,
    /// Whether every settled item passed its oracle so far.
    pub passed: bool,
    /// Human-readable detail (summary or error), filled when terminal.
    pub detail: String,
}

struct JobRecord {
    spec: JobSpec,
    status: JobStatus,
    halt: Arc<AtomicBool>,
}

struct ServiceState {
    next_id: u64,
    jobs: BTreeMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    shutdown: bool,
}

/// The long-lived job service: feed hubs + job table + one executor
/// thread. Create with [`DiagService::start`]; share via `Arc`.
pub struct DiagService {
    hubs: FeedHubs,
    host: HostFingerprint,
    state_dir: PathBuf,
    state: Mutex<ServiceState>,
    wake: Condvar,
    executor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for DiagService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiagService")
            .field("state_dir", &self.state_dir)
            .finish_non_exhaustive()
    }
}

impl DiagService {
    /// Creates the state directory, starts the executor thread and returns
    /// the shared service handle.
    ///
    /// # Errors
    ///
    /// Fails if the state directory cannot be created.
    pub fn start(state_dir: &Path) -> io::Result<Arc<DiagService>> {
        std::fs::create_dir_all(state_dir)?;
        let service = Arc::new(DiagService {
            hubs: FeedHubs::new(),
            host: HostFingerprint::detect(),
            state_dir: state_dir.to_path_buf(),
            state: Mutex::new(ServiceState {
                next_id: 1,
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            executor: Mutex::new(None),
        });
        let worker = Arc::clone(&service);
        let handle = std::thread::Builder::new()
            .name("ttdiag-executor".into())
            .spawn(move || worker.executor_loop())?;
        *service.executor.lock().expect("executor slot") = Some(handle);
        Ok(service)
    }

    /// The live feed hubs.
    pub fn hubs(&self) -> &FeedHubs {
        &self.hubs
    }

    /// The serving host's fingerprint (reported in submit/status
    /// responses so clients can attribute throughput numbers).
    pub fn host(&self) -> &HostFingerprint {
        &self.host
    }

    /// Queues a job and returns its initial status.
    ///
    /// # Errors
    ///
    /// Rejects invalid specs and submissions after shutdown began.
    pub fn submit(&self, spec: JobSpec) -> Result<JobStatus, String> {
        spec.validate()?;
        let mut state = self.lock();
        if state.shutdown {
            return Err("service is shutting down".into());
        }
        let id = state.next_id;
        state.next_id += 1;
        let status = JobStatus {
            id,
            kind: spec.kind().to_string(),
            state: JobState::Queued,
            completed: 0,
            total: spec.total(),
            quarantined: 0,
            checkpoint_seq: 0,
            halt_requested: false,
            passed: true,
            detail: String::new(),
        };
        state.jobs.insert(
            id,
            JobRecord {
                spec,
                status: status.clone(),
                halt: Arc::new(AtomicBool::new(false)),
            },
        );
        state.queue.push_back(id);
        drop(state);
        self.wake.notify_all();
        Ok(status)
    }

    /// The current status of a job.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.lock().jobs.get(&id).map(|r| r.status.clone())
    }

    /// Status of every known job, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        self.lock()
            .jobs
            .values()
            .map(|r| r.status.clone())
            .collect()
    }

    /// Requests a halt: a queued job halts immediately; a running job
    /// stops at its next chunk boundary (with a resumable checkpoint).
    ///
    /// # Errors
    ///
    /// Fails for unknown job ids and terminal jobs.
    pub fn halt(&self, id: u64) -> Result<JobStatus, String> {
        let mut state = self.lock();
        let record = state.jobs.get_mut(&id).ok_or(format!("unknown job {id}"))?;
        match record.status.state {
            JobState::Queued => {
                record.status.state = JobState::Halted;
                record.status.halt_requested = false;
                let status = record.status.clone();
                state.queue.retain(|&q| q != id);
                Ok(status)
            }
            JobState::Running => {
                record.halt.store(true, Ordering::Relaxed);
                record.status.halt_requested = true;
                Ok(record.status.clone())
            }
            terminal => Err(format!("job {id} is {} already", terminal.label())),
        }
    }

    /// Requeues a halted job; it resumes from its last checkpoint.
    ///
    /// # Errors
    ///
    /// Fails for unknown job ids and jobs not in the halted state.
    pub fn resume(&self, id: u64) -> Result<JobStatus, String> {
        let mut state = self.lock();
        if state.shutdown {
            return Err("service is shutting down".into());
        }
        let record = state.jobs.get_mut(&id).ok_or(format!("unknown job {id}"))?;
        if record.status.state != JobState::Halted {
            return Err(format!(
                "job {id} is {}, only halted jobs resume",
                record.status.state.label()
            ));
        }
        record.halt.store(false, Ordering::Relaxed);
        record.status.state = JobState::Queued;
        record.status.halt_requested = false;
        let status = record.status.clone();
        state.queue.push_back(id);
        drop(state);
        self.wake.notify_all();
        Ok(status)
    }

    /// Begins shutdown: no new submissions, queued jobs are parked as
    /// halted, a running job is asked to halt at its chunk boundary.
    pub fn begin_shutdown(&self) {
        let mut state = self.lock();
        state.shutdown = true;
        while let Some(id) = state.queue.pop_front() {
            if let Some(r) = state.jobs.get_mut(&id) {
                r.status.state = JobState::Halted;
            }
        }
        for r in state.jobs.values_mut() {
            if r.status.state == JobState::Running {
                r.halt.store(true, Ordering::Relaxed);
                r.status.halt_requested = true;
            }
        }
        drop(state);
        self.wake.notify_all();
    }

    /// Begins shutdown and joins the executor thread.
    pub fn shutdown_wait(&self) {
        self.begin_shutdown();
        let handle = self.executor.lock().expect("executor slot").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// The checkpoint path of job `id` inside the state directory.
    pub fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.state_dir.join(format!("job-{id}.checkpoint.json"))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ServiceState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    // ------------------------------------------------------- executor side

    fn executor_loop(self: Arc<Self>) {
        loop {
            let job = {
                let mut state = self.lock();
                loop {
                    if let Some(id) = state.queue.pop_front() {
                        break Some(id);
                    }
                    if state.shutdown {
                        break None;
                    }
                    state = match self.wake.wait_timeout(state, Duration::from_millis(200)) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            };
            let Some(id) = job else { return };
            self.run_job(id);
        }
    }

    /// Marks the job running and returns what the executor needs.
    fn job_setup(&self, id: u64) -> Option<(JobSpec, Arc<AtomicBool>, u64)> {
        let mut state = self.lock();
        let record = state.jobs.get_mut(&id)?;
        if record.status.state != JobState::Queued {
            return None; // halted while queued
        }
        record.status.state = JobState::Running;
        Some((
            record.spec,
            Arc::clone(&record.halt),
            record.status.completed,
        ))
    }

    fn update_status(&self, id: u64, f: impl FnOnce(&mut JobStatus)) {
        let mut state = self.lock();
        if let Some(record) = state.jobs.get_mut(&id) {
            f(&mut record.status);
        }
    }

    fn publish_progress(&self, event: ProgressEvent) {
        self.hubs.progress.publish(event);
    }

    fn run_job(self: &Arc<Self>, id: u64) {
        let Some((spec, halt, resumed_from)) = self.job_setup(id) else {
            return;
        };
        self.publish_progress(ProgressEvent::JobStarted {
            job: id,
            kind: spec.kind().to_string(),
            total: spec.total(),
            resumed_from,
        });
        let result = match spec {
            JobSpec::Campaign { .. } => self.run_campaign_job(id, &spec, &halt),
            JobSpec::Explore { .. } => self.run_explore_job(id, &spec, &halt),
            JobSpec::TuneSweep { chunk } => self.run_sweep_job(id, chunk, &halt),
        };
        match result {
            Ok(ChunkedEnd::Halted) => {
                let status = self.status(id).expect("running job is known");
                self.update_status(id, |s| {
                    s.state = JobState::Halted;
                    s.halt_requested = false;
                });
                self.publish_progress(ProgressEvent::Halted {
                    job: id,
                    completed: status.completed,
                    checkpoint_seq: status.checkpoint_seq,
                });
            }
            Ok(ChunkedEnd::Finished { passed, detail }) => {
                self.update_status(id, |s| {
                    s.state = JobState::Done;
                    s.passed = s.passed && passed;
                    s.detail = detail;
                });
                let status = self.status(id).expect("running job is known");
                self.publish_progress(ProgressEvent::JobFinished {
                    job: id,
                    completed: status.completed,
                    total: status.total,
                    quarantined: status.quarantined,
                    passed: status.passed,
                });
            }
            Err(e) => {
                self.update_status(id, |s| {
                    s.state = JobState::Failed;
                    s.passed = false;
                    s.detail = e.to_string();
                });
                let status = self.status(id).expect("running job is known");
                self.publish_progress(ProgressEvent::JobFinished {
                    job: id,
                    completed: status.completed,
                    total: status.total,
                    quarantined: status.quarantined,
                    passed: false,
                });
            }
        }
    }

    /// Records one finished chunk: bumps the checkpoint sequence, updates
    /// the job table, and publishes the per-chunk progress event.
    fn finish_chunk(&self, id: u64, completed: u64, total: u64, quarantined: u64, secs: f64) {
        let mut checkpoint_seq = 0;
        let mut settled_before = 0;
        self.update_status(id, |s| {
            settled_before = s.completed;
            s.checkpoint_seq += 1;
            s.completed = completed;
            s.quarantined = quarantined;
            checkpoint_seq = s.checkpoint_seq;
        });
        let items_per_sec = if secs > 0.0 {
            (completed.saturating_sub(settled_before)) as f64 / secs
        } else {
            0.0
        };
        self.publish_progress(ProgressEvent::Chunk {
            job: id,
            completed,
            total,
            quarantined,
            checkpoint_seq,
            items_per_sec,
        });
    }

    fn run_campaign_job(
        self: &Arc<Self>,
        id: u64,
        spec: &JobSpec,
        halt: &AtomicBool,
    ) -> io::Result<ChunkedEnd> {
        let JobSpec::Campaign {
            nodes,
            reps,
            base_seed,
            threads,
            chunk,
        } = *spec
        else {
            unreachable!("dispatched on the Campaign variant");
        };
        let classes = sec8_classes(nodes);
        let total = classes.len() as u64 * reps;
        let checkpoint_path = self.checkpoint_path(id);
        let live = LiveFeeds {
            job: id,
            sinks: ExperimentSinks {
                metrics: Arc::new(StreamingSink::new(Arc::clone(&self.hubs.metrics))),
                trace: Arc::new(StreamingTraceSink::new(Arc::clone(&self.hubs.spans))),
            },
            progress: Arc::clone(&self.hubs.progress),
        };
        loop {
            let campaign = SupervisedCampaign {
                classes: &classes,
                n: nodes,
                reps,
                base_seed,
                config: SupervisorConfig {
                    threads: threads.max(1),
                    checkpoint_every: 0,
                    checkpoint_path: Some(checkpoint_path.clone()),
                    halt_after: Some(chunk as usize),
                    live: Some(live.clone()),
                    ..SupervisorConfig::default()
                },
            };
            let started = Instant::now();
            let outcome = if checkpoint_path.exists() {
                let cp: CampaignCheckpoint = read_json(&checkpoint_path)?;
                campaign.run_resumed(&NoHarnessFaults, &cp)?
            } else {
                campaign.run(&NoHarnessFaults)?
            };
            let quarantined = outcome.supervision.quarantined.len() as u64;
            let settled = outcome.result.outcomes.len() as u64 + quarantined;
            let passed = outcome.result.outcomes.iter().all(|o| o.passed) && quarantined == 0;
            if !passed {
                self.update_status(id, |s| s.passed = false);
            }
            self.finish_chunk(
                id,
                settled,
                total,
                quarantined,
                started.elapsed().as_secs_f64(),
            );
            if !outcome.halted {
                return Ok(ChunkedEnd::Finished {
                    passed,
                    detail: format!(
                        "{} completed, {} quarantined, {} retries",
                        outcome.result.outcomes.len(),
                        quarantined,
                        outcome.supervision.retries
                    ),
                });
            }
            if halt.load(Ordering::Relaxed) {
                return Ok(ChunkedEnd::Halted);
            }
        }
    }

    fn run_explore_job(
        self: &Arc<Self>,
        id: u64,
        spec: &JobSpec,
        halt: &AtomicBool,
    ) -> io::Result<ChunkedEnd> {
        let JobSpec::Explore {
            nodes,
            rounds,
            budget,
            seed,
            chunk,
        } = *spec
        else {
            unreachable!("dispatched on the Explore variant");
        };
        let cfg = ExploreConfig {
            n: nodes,
            rounds,
            budget,
            seed,
            ..ExploreConfig::default()
        };
        let checkpoint_path = self.checkpoint_path(id);
        let mut session = if checkpoint_path.exists() {
            let cp: ExploreCheckpoint = read_json(&checkpoint_path)?;
            Explorer::from_checkpoint(&cp)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        } else {
            Explorer::new(&cfg, &[])
        };
        let total = budget;
        loop {
            let started = Instant::now();
            let mut stepped = 0;
            while stepped < chunk && session.step(&no_extra_oracle) {
                stepped += 1;
                let executed = session.executed();
                let hub = &self.hubs.progress;
                if hub.has_subscribers() {
                    hub.publish(ProgressEvent::Settled {
                        job: id,
                        completed: executed,
                        total,
                        quarantined: 0,
                    });
                }
            }
            write_json_atomic(&checkpoint_path, &session.checkpoint())?;
            self.finish_chunk(
                id,
                session.executed(),
                total,
                0,
                started.elapsed().as_secs_f64(),
            );
            if session.done() {
                let report = session.into_report();
                let passed = report.counterexamples.is_empty();
                return Ok(ChunkedEnd::Finished {
                    passed,
                    detail: format!(
                        "{} executed, {} unique states, {} counterexamples",
                        report.executed,
                        report.unique_states,
                        report.counterexamples.len()
                    ),
                });
            }
            if halt.load(Ordering::Relaxed) {
                return Ok(ChunkedEnd::Halted);
            }
        }
    }

    fn run_sweep_job(
        self: &Arc<Self>,
        id: u64,
        chunk: u64,
        halt: &AtomicBool,
    ) -> io::Result<ChunkedEnd> {
        let config = SweepConfig::default();
        let checkpoint_path = self.checkpoint_path(id);
        loop {
            let supervisor = SweepSupervisor {
                checkpoint_path: Some(checkpoint_path.clone()),
                halt_after_cells: Some(chunk),
            };
            let started = Instant::now();
            let outcome = if checkpoint_path.exists() {
                let cp = read_json(&checkpoint_path)?;
                resume_sweep(cp, &supervisor)?
            } else {
                run_sweep(&config, &supervisor)?
            };
            let completed = outcome.report.cells.len() as u64;
            self.finish_chunk(
                id,
                completed,
                outcome.total_cells as u64,
                0,
                started.elapsed().as_secs_f64(),
            );
            if !outcome.halted {
                return Ok(ChunkedEnd::Finished {
                    passed: true,
                    detail: format!("{completed} cells"),
                });
            }
            if halt.load(Ordering::Relaxed) {
                return Ok(ChunkedEnd::Halted);
            }
        }
    }
}

/// How a chunked job execution ended.
enum ChunkedEnd {
    /// Stopped at a halt request with a fresh checkpoint on disk.
    Halted,
    /// Ran out of work.
    Finished {
        /// Whether every item passed.
        passed: bool,
        /// Human-readable summary for the job table.
        detail: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ttdiag-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wait_state(service: &DiagService, id: u64, want: JobState, timeout: Duration) -> JobStatus {
        let deadline = Instant::now() + timeout;
        loop {
            let status = service.status(id).expect("job exists");
            if status.state == want {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {want:?}, last {status:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn campaign_job_runs_to_done_with_progress_feed() {
        let dir = tmp_dir("campaign");
        let service = DiagService::start(&dir).unwrap();
        let sub = service.hubs().progress.subscribe(4096);
        let status = service
            .submit(JobSpec::Campaign {
                nodes: 4,
                reps: 1,
                base_seed: 2_007,
                threads: 2,
                chunk: 7,
            })
            .unwrap();
        assert_eq!(status.state, JobState::Queued);
        assert_eq!(status.total, 18); // 12 bursts + stepping + 4 malicious + clique
        let done = wait_state(
            &service,
            status.id,
            JobState::Done,
            Duration::from_secs(120),
        );
        assert_eq!(done.completed, 18);
        assert!(done.passed, "sec8 campaign must pass: {}", done.detail);
        assert!(
            done.checkpoint_seq >= 2,
            "chunked into multiple checkpoints"
        );
        let frames = sub.drain(usize::MAX);
        let kinds: Vec<&str> = frames.iter().map(|f| f.event.kind()).collect();
        assert_eq!(kinds.first(), Some(&"job_started"));
        assert_eq!(kinds.last(), Some(&"job_finished"));
        assert!(kinds.contains(&"settled"));
        assert!(kinds.contains(&"chunk"));
        // Monotone gap-free seq for a keeping-up subscriber.
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
        }
        service.shutdown_wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn halt_then_resume_completes_the_job() {
        let dir = tmp_dir("halt");
        let service = DiagService::start(&dir).unwrap();
        // A deliberately long work list (136 items) chunked very finely, so
        // the job is reliably observable in the running state.
        let status = service
            .submit(JobSpec::Campaign {
                nodes: 8,
                reps: 4,
                base_seed: 99,
                threads: 2,
                chunk: 2,
            })
            .unwrap();
        let id = status.id;
        wait_state(&service, id, JobState::Running, Duration::from_secs(120));
        service.halt(id).expect("halt a running job");
        let halted = wait_state(&service, id, JobState::Halted, Duration::from_secs(120));
        assert!(halted.completed < halted.total, "{halted:?}");
        assert!(service.checkpoint_path(id).exists());
        service.resume(id).unwrap();
        let done = wait_state(&service, id, JobState::Done, Duration::from_secs(120));
        assert_eq!(done.completed, done.total);
        assert!(done.passed);
        service.shutdown_wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explore_job_reports_executions() {
        let dir = tmp_dir("explore");
        let service = DiagService::start(&dir).unwrap();
        let status = service
            .submit(JobSpec::Explore {
                nodes: 4,
                rounds: 24,
                budget: 12,
                seed: 7,
                chunk: 5,
            })
            .unwrap();
        let done = wait_state(
            &service,
            status.id,
            JobState::Done,
            Duration::from_secs(120),
        );
        assert_eq!(done.completed, 12);
        assert!(done.passed, "{}", done.detail);
        service.shutdown_wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let dir = tmp_dir("invalid");
        let service = DiagService::start(&dir).unwrap();
        assert!(service
            .submit(JobSpec::Campaign {
                nodes: 2,
                reps: 1,
                base_seed: 0,
                threads: 1,
                chunk: 1,
            })
            .is_err());
        assert!(service.submit(JobSpec::TuneSweep { chunk: 0 }).is_err());
        assert!(service.status(42).is_none());
        assert!(service.halt(42).is_err());
        service.shutdown_wait();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
