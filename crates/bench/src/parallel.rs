//! Parallel campaign execution.
//!
//! Each experiment is an independent, seeded simulation, so campaigns
//! parallelize embarrassingly: experiments are distributed over a scoped
//! thread pool and the outcomes re-assembled in deterministic order.

use parking_lot::Mutex;

use tt_fault::{run_experiment, CampaignResult, ExperimentClass, ExperimentOutcome};

/// Runs `reps` seeded repetitions of each class across `threads` worker
/// threads. The result is identical (including ordering) to the sequential
/// [`tt_fault::run_campaign`] with the same seeds.
pub fn run_parallel_campaign(
    classes: &[ExperimentClass],
    n: usize,
    reps: u64,
    base_seed: u64,
    threads: usize,
) -> CampaignResult {
    // Materialize the work list with the same seed derivation as the
    // sequential runner.
    let work: Vec<(usize, ExperimentClass, u64)> = classes
        .iter()
        .enumerate()
        .flat_map(|(ci, &class)| {
            (0..reps).map(move |rep| {
                let seed = base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((ci as u64) << 32)
                    .wrapping_add(rep);
                (ci * reps as usize + rep as usize, class, seed)
            })
        })
        .collect();
    let outcomes: Mutex<Vec<Option<ExperimentOutcome>>> =
        Mutex::new(vec![None; work.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let threads = threads.max(1).min(work.len().max(1));
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(slot, class, seed)) = work.get(i) else {
                    break;
                };
                let outcome = run_experiment(class, n, seed);
                outcomes.lock()[slot] = Some(outcome);
            });
        }
    })
    .expect("campaign worker panicked");
    CampaignResult {
        outcomes: outcomes
            .into_inner()
            .into_iter()
            .map(|o| o.expect("all work items completed"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_fault::run_campaign;

    #[test]
    fn parallel_matches_sequential() {
        let classes = [
            ExperimentClass::Burst {
                len_slots: 1,
                start_slot: 0,
            },
            ExperimentClass::Burst {
                len_slots: 2,
                start_slot: 3,
            },
        ];
        let seq = run_campaign(&classes, 4, 3, 42);
        let par = run_parallel_campaign(&classes, 4, 3, 42, 4);
        assert_eq!(seq.outcomes, par.outcomes);
        assert!(par.all_passed());
    }

    #[test]
    fn single_thread_degenerate_case() {
        let classes = [ExperimentClass::Burst {
            len_slots: 1,
            start_slot: 1,
        }];
        let r = run_parallel_campaign(&classes, 4, 2, 7, 1);
        assert_eq!(r.total(), 2);
    }
}
