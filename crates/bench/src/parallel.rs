//! Parallel campaign execution on a persistent, lock-free worker pool.
//!
//! Each experiment is an independent, seeded simulation, so campaigns
//! parallelize embarrassingly. Earlier revisions spawned a fresh scoped
//! thread pool per campaign and funnelled every result through a
//! `Mutex<Vec<Option<_>>>`; sweeps that issue many campaigns back to back
//! (sensitivity analyses, tuning sweeps, the validation matrix) paid the
//! spawn/join cost and the lock traffic on every call.
//!
//! [`CampaignExecutor`] keeps its worker threads alive across campaigns.
//! Work distribution is chunked and lock-free: workers claim contiguous
//! chunks of the deterministic work list with a single `fetch_add` on an
//! atomic cursor, run each chunk's experiments into a chunk-local `Vec`,
//! and hand finished chunks back over an `mpsc` channel — no mutex is
//! taken anywhere on the work or result path. The submitting thread
//! reassembles chunks by index, so the outcome order is bit-identical to
//! the sequential [`tt_fault::run_campaign`] regardless of thread count or
//! scheduling.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use tt_fault::{
    experiment_seed, quarantined_outcome, run_experiment, CampaignResult, ChaosPlan,
    ExperimentClass, ExperimentOutcome, HarnessFault,
};

/// One campaign submitted to the pool: the deterministic work list plus the
/// lock-free chunk cursor and the channel finished chunks go back on.
struct CampaignWork {
    /// `(class, seed)` in sequential-campaign order.
    items: Vec<(ExperimentClass, u64)>,
    /// Cluster size.
    n: usize,
    /// Work-list chunking (contiguous, disjoint ranges covering `items`).
    chunks: Vec<Range<usize>>,
    /// Index of the next unclaimed chunk.
    next_chunk: AtomicUsize,
    /// Finished chunks, tagged with their chunk index.
    results: Sender<(usize, Vec<ExperimentOutcome>)>,
    /// Harness-fault plan injected into the run (tests, chaos CI job).
    chaos: Option<ChaosPlan>,
}

/// Runs one experiment under `catch_unwind`, so a panicking experiment
/// becomes a quarantine-marked failed outcome (seed preserved for local
/// reproduction) instead of killing the worker thread — which would leave
/// the submitting thread waiting forever on a chunk that never arrives.
fn run_quarantining(
    class: ExperimentClass,
    n: usize,
    seed: u64,
    chaos: Option<&ChaosPlan>,
    item: usize,
) -> ExperimentOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        // The basic pool has no watchdog or retry machinery, so only
        // panics are injectable here; hangs and transients need the
        // supervised executor.
        if chaos.and_then(|p| p.fault_for_item(item)) == Some(HarnessFault::Panic) {
            panic!("injected harness panic");
        }
        run_experiment(class, n, seed)
    }));
    result.unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        quarantined_outcome(class, seed, &msg)
    })
}

fn worker_loop(jobs: Receiver<Arc<CampaignWork>>) {
    while let Ok(work) = jobs.recv() {
        loop {
            let c = work.next_chunk.fetch_add(1, Ordering::Relaxed);
            let Some(range) = work.chunks.get(c) else {
                break;
            };
            let outcomes: Vec<ExperimentOutcome> = work.items[range.clone()]
                .iter()
                .enumerate()
                .map(|(off, &(class, seed))| {
                    run_quarantining(class, work.n, seed, work.chaos.as_ref(), range.start + off)
                })
                .collect();
            // The submitter may have been dropped (e.g. on panic); a closed
            // channel just means nobody wants the chunk any more.
            let _ = work.results.send((c, outcomes));
        }
    }
}

/// A persistent pool of campaign worker threads.
///
/// Workers are spawned once and reused for every campaign submitted via
/// [`CampaignExecutor::run`]; they sleep on a channel between campaigns.
/// Results are identical (including ordering) to the sequential
/// [`tt_fault::run_campaign`] with the same seeds.
pub struct CampaignExecutor {
    senders: Vec<Sender<Arc<CampaignWork>>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for CampaignExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignExecutor")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl CampaignExecutor {
    /// Spawns a pool with `threads.max(1)` persistent workers.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("campaign-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn campaign worker"),
            );
        }
        CampaignExecutor { senders, handles }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `reps` seeded repetitions of each class on the pool and returns
    /// the outcomes in sequential-campaign order.
    pub fn run(
        &self,
        classes: &[ExperimentClass],
        n: usize,
        reps: u64,
        base_seed: u64,
    ) -> CampaignResult {
        self.run_with_chaos(classes, n, reps, base_seed, None)
    }

    /// Like [`CampaignExecutor::run`], with an optional [`ChaosPlan`]
    /// injecting panics into the marked work items. Panicking experiments
    /// come back as quarantine-marked failed outcomes (in their normal
    /// work-list position); the pool itself is never poisoned and stays
    /// usable for subsequent campaigns.
    pub fn run_with_chaos(
        &self,
        classes: &[ExperimentClass],
        n: usize,
        reps: u64,
        base_seed: u64,
        chaos: Option<ChaosPlan>,
    ) -> CampaignResult {
        let items: Vec<(ExperimentClass, u64)> = classes
            .iter()
            .enumerate()
            .flat_map(|(ci, &class)| {
                (0..reps).map(move |rep| (class, experiment_seed(base_seed, ci, rep)))
            })
            .collect();
        if items.is_empty() {
            return CampaignResult::default();
        }
        // Small chunks keep long-tailed experiments balanced across
        // workers; chunking only groups sends, it cannot change the
        // reassembled order.
        let chunk_size = items.len().div_ceil(self.threads() * 4).max(1);
        let chunks: Vec<Range<usize>> = (0..items.len())
            .step_by(chunk_size)
            .map(|lo| lo..(lo + chunk_size).min(items.len()))
            .collect();
        let n_chunks = chunks.len();
        let (results, collected) = mpsc::channel();
        let work = Arc::new(CampaignWork {
            items,
            n,
            chunks,
            next_chunk: AtomicUsize::new(0),
            results,
            chaos,
        });
        for sender in &self.senders {
            sender
                .send(Arc::clone(&work))
                .expect("campaign worker exited unexpectedly");
        }
        drop(work);
        let mut slots: Vec<Option<Vec<ExperimentOutcome>>> = vec![None; n_chunks];
        for _ in 0..n_chunks {
            let (idx, outcomes) = collected.recv().expect("campaign worker panicked");
            slots[idx] = Some(outcomes);
        }
        CampaignResult {
            outcomes: slots
                .into_iter()
                .flat_map(|c| c.expect("every chunk index reported once"))
                .collect(),
        }
    }
}

impl Drop for CampaignExecutor {
    fn drop(&mut self) {
        // Closing the job channels wakes the workers out of `recv`.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Process-wide executor cache, keyed by thread count, so repeated
/// campaigns (sensitivity sweeps, tuning matrices) reuse one warm pool
/// instead of spawning threads per call.
fn shared_executor(threads: usize) -> Arc<CampaignExecutor> {
    type PoolRegistry = Mutex<Vec<(usize, Arc<CampaignExecutor>)>>;
    static POOLS: OnceLock<PoolRegistry> = OnceLock::new();
    let registry = POOLS.get_or_init(|| Mutex::new(Vec::new()));
    let mut pools = registry.lock().expect("executor registry poisoned");
    if let Some((_, executor)) = pools.iter().find(|(t, _)| *t == threads) {
        return Arc::clone(executor);
    }
    let executor = Arc::new(CampaignExecutor::new(threads));
    pools.push((threads, Arc::clone(&executor)));
    executor
}

/// Runs `reps` seeded repetitions of each class across `threads` worker
/// threads. The result is identical (including ordering) to the sequential
/// [`tt_fault::run_campaign`] with the same seeds.
///
/// Pools are cached per thread count and reused across calls; use
/// [`CampaignExecutor`] directly for explicit pool lifetime control.
pub fn run_parallel_campaign(
    classes: &[ExperimentClass],
    n: usize,
    reps: u64,
    base_seed: u64,
    threads: usize,
) -> CampaignResult {
    shared_executor(threads.max(1)).run(classes, n, reps, base_seed)
}

/// The pre-pool runner, retained as the measured baseline for
/// `tt-bench throughput`: scoped threads spawned per campaign, every
/// result written behind one mutex.
pub fn run_parallel_campaign_legacy(
    classes: &[ExperimentClass],
    n: usize,
    reps: u64,
    base_seed: u64,
    threads: usize,
) -> CampaignResult {
    let work: Vec<(usize, ExperimentClass, u64)> = classes
        .iter()
        .enumerate()
        .flat_map(|(ci, &class)| {
            (0..reps).map(move |rep| {
                (
                    ci * reps as usize + rep as usize,
                    class,
                    experiment_seed(base_seed, ci, rep),
                )
            })
        })
        .collect();
    let outcomes: Mutex<Vec<Option<ExperimentOutcome>>> = Mutex::new(vec![None; work.len()]);
    let next = AtomicUsize::new(0);
    let threads = threads.max(1).min(work.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(slot, class, seed)) = work.get(i) else {
                    break;
                };
                let outcome = run_experiment(class, n, seed);
                outcomes.lock().expect("result mutex poisoned")[slot] = Some(outcome);
            });
        }
    });
    CampaignResult {
        outcomes: outcomes
            .into_inner()
            .expect("result mutex poisoned")
            .into_iter()
            .map(|o| o.expect("all work items completed"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_fault::run_campaign;

    fn burst(len_slots: u64, start_slot: usize) -> ExperimentClass {
        ExperimentClass::Burst {
            len_slots,
            start_slot,
        }
    }

    #[test]
    fn parallel_matches_sequential_across_thread_counts() {
        // Uneven work list: three classes, five reps — does not divide
        // evenly into chunks for any of the pool sizes below.
        let classes = [burst(1, 0), burst(2, 3), burst(1, 2)];
        let seq = run_campaign(&classes, 4, 5, 42);
        for threads in [1usize, 2, 7, 16] {
            let par = run_parallel_campaign(&classes, 4, 5, 42, threads);
            assert_eq!(seq.outcomes, par.outcomes, "{threads} threads");
            assert!(par.all_passed());
            let legacy = run_parallel_campaign_legacy(&classes, 4, 5, 42, threads);
            assert_eq!(seq.outcomes, legacy.outcomes, "{threads} threads (legacy)");
        }
    }

    #[test]
    fn single_thread_degenerate_case() {
        let classes = [burst(1, 1)];
        let r = run_parallel_campaign(&classes, 4, 2, 7, 1);
        assert_eq!(r.total(), 2);
    }

    #[test]
    fn empty_classes_and_zero_reps() {
        assert_eq!(run_parallel_campaign(&[], 4, 3, 7, 4).total(), 0);
        assert_eq!(run_parallel_campaign(&[burst(1, 0)], 4, 0, 7, 4).total(), 0);
        assert_eq!(run_parallel_campaign_legacy(&[], 4, 3, 7, 4).total(), 0);
    }

    #[test]
    fn pool_survives_repeated_campaigns() {
        let executor = CampaignExecutor::new(3);
        let classes = [burst(1, 0), burst(2, 1)];
        let seq = run_campaign(&classes, 4, 2, 11);
        for _ in 0..4 {
            let par = executor.run(&classes, 4, 2, 11);
            assert_eq!(seq.outcomes, par.outcomes);
        }
        assert_eq!(executor.threads(), 3);
    }

    #[test]
    fn panicking_experiments_are_quarantined_without_poisoning_the_pool() {
        let executor = CampaignExecutor::new(3);
        let classes = [burst(1, 0), burst(2, 3), burst(1, 2)];
        let plan = ChaosPlan {
            seed: 5,
            panic_per_mille: 300,
            hang_per_mille: 0,
            transient_per_mille: 0,
            first_attempt_only: false,
        };
        let (panics, _, _) = plan.expected_faults(3 * 5);
        assert!(panics > 0, "plan must panic at least one item");
        let chaotic = executor.run_with_chaos(&classes, 4, 5, 42, Some(plan));
        assert_eq!(chaotic.total(), 15, "every item reports an outcome");
        let seq = run_campaign(&classes, 4, 5, 42);
        let mut quarantined = 0;
        for (i, (got, want)) in chaotic.outcomes.iter().zip(&seq.outcomes).enumerate() {
            if plan.fault_for_item(i).is_some() {
                quarantined += 1;
                assert!(!got.passed);
                assert!(
                    got.notes
                        .iter()
                        .any(|n| n.starts_with("quarantined: panic")),
                    "{:?}",
                    got.notes
                );
                assert_eq!(got.seed, want.seed, "reproduction seed preserved");
            } else {
                assert_eq!(got, want, "healthy item {i} unaffected");
            }
        }
        assert_eq!(quarantined, panics);
        // The pool keeps draining: a follow-up clean campaign on the same
        // executor is bit-identical to the sequential reference.
        let clean = executor.run(&classes, 4, 5, 42);
        assert_eq!(clean.outcomes, seq.outcomes);
    }

    #[test]
    fn more_threads_than_work_items() {
        let classes = [burst(1, 0)];
        let seq = run_campaign(&classes, 4, 1, 5);
        let par = run_parallel_campaign(&classes, 4, 1, 5, 16);
        assert_eq!(seq.outcomes, par.outcomes);
    }
}
