//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each function runs the relevant experiment on the simulator and renders
//! a report comparing the measured values with the paper's. The binaries
//! (`fig3`, `table1`, `table2`, `table4`, `validation`, `repro_all`) are
//! thin wrappers; EXPERIMENTS.md records a snapshot of their output.

use tt_analysis::correlation::{curve, default_r_sweep, default_rates};
use tt_analysis::{
    aerospace_setup, automotive_setup, measure_time_to_isolation, tune, ReportBuilder, Table,
    TuningResult,
};
use tt_core::lowlat::LowLatCluster;
use tt_core::matrix::matrix_with_benign_faulty;
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{sec8_classes, Burst, DisturbanceNode, TransientScenario};
use tt_sim::{ClusterBuilder, Nanos, NodeId, RoundIndex, SlotEffect, TxCtx};

use crate::parallel::run_parallel_campaign;

/// The paper's TDMA round length (2.5 ms).
pub fn paper_round() -> Nanos {
    Nanos::from_micros(2_500)
}

/// The paper's cluster size (4 nodes).
pub const PAPER_N: usize = 4;

fn fault_at(round: u64, node: u32) -> impl FnMut(&TxCtx) -> SlotEffect + Send {
    move |ctx: &TxCtx| {
        if ctx.round == RoundIndex::new(round) && ctx.sender == NodeId::new(node) {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    }
}

/// **Fig. 1** — the pipelined phases of interleaved protocol instances.
///
/// Runs a real cluster with a single benign fault and reconstructs, per
/// round, which phase the instance diagnosing the faulty round is in.
pub fn fig1_report() -> String {
    let cfg = ProtocolConfig::builder(PAPER_N).build().expect("valid");
    let mut cluster = ClusterBuilder::new(PAPER_N).build_with_jobs(
        |id| Box::new(DiagJob::new(id, cfg.clone())),
        Box::new(fault_at(10, 2)),
    );
    cluster.run_rounds(16);
    let diag: &DiagJob = cluster.job_as(NodeId::new(1)).expect("diag job");
    let rec = diag
        .health_for(RoundIndex::new(10))
        .expect("fault diagnosed");
    let mut out = String::from(
        "Fig. 1 — pipelined protocol phases (4 nodes, conservative send alignment)\n\n",
    );
    let k = 10u64;
    let mut t = Table::new(vec!["Round", "Phase of the instance diagnosing round 10"]);
    t.row(vec![
        format!("{k}"),
        "faults occur (diagnosed round)".into(),
    ]);
    t.row(vec![
        format!("{}", k + 1),
        "local detection: validity bits of round 10 read & aligned".into(),
    ]);
    t.row(vec![
        format!("{}", k + 2),
        "dissemination: aligned local syndromes transmitted".into(),
    ]);
    t.row(vec![
        format!("{}", k + 3),
        "aggregation + analysis: diagnostic matrix voted, counters updated".into(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nMeasured: consistent health vector for round 10 decided at round {} \
         (detection latency {} rounds); verdict = {:?}\n",
        rec.decided_at.as_u64(),
        rec.decided_at.as_u64() - k,
        rec.health
    ));
    out
}

/// **Fig. 2** — the read-alignment example (`l_i = 2`).
pub fn fig2_report() -> String {
    use tt_core::alignment::read_align;
    let prev = ["dm1(k-1)", "dm2(k-1)", "dm3(k-1)", "dm4(k-1)"];
    let curr = ["dm1(k)", "dm2(k)", "dm3(k-1)", "dm4(k-1)"];
    let aligned = read_align(&prev, &curr, 2);
    let mut out = String::from("Fig. 2 — read alignment at round k with l_i = 2\n\n");
    let mut t = Table::new(vec!["Variable", "prev buffer", "current copy", "aligned"]);
    for j in 0..4 {
        t.row(vec![
            format!("dm{}", j + 1),
            prev[j].to_string(),
            curr[j].to_string(),
            aligned[j].to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nAll aligned values were sent in round k-1: slots 1..l use the previous\n\
         activation's buffer, slots l+1..N the (still stale) current copies.\n",
    );
    out
}

/// **Table 1** — the diagnostic matrix with nodes 3 and 4 benign faulty.
///
/// Reproduces the matrix analytically and cross-checks the voted health
/// vector against a live simulation of the same scenario.
pub fn table1_report() -> String {
    let faulty = [NodeId::new(3), NodeId::new(4)];
    let matrix = matrix_with_benign_faulty(PAPER_N, &faulty);
    let voted = matrix.consistent_health_vector(|_| None);
    // Cross-check on a live cluster: nodes 3 and 4 benign faulty across the
    // diagnosed and dissemination rounds.
    let cfg = ProtocolConfig::builder(PAPER_N).build().expect("valid");
    let mut cluster = ClusterBuilder::new(PAPER_N).build_with_jobs(
        |id| Box::new(DiagJob::new(id, cfg.clone())),
        Box::new(|ctx: &TxCtx| {
            let r = ctx.round.as_u64();
            if (10..=13).contains(&r) && (ctx.sender.get() == 3 || ctx.sender.get() == 4) {
                SlotEffect::Benign
            } else {
                SlotEffect::Correct
            }
        }),
    );
    cluster.run_rounds(18);
    let diag: &DiagJob = cluster.job_as(NodeId::new(1)).expect("diag job");
    let live = &diag
        .health_for(RoundIndex::new(11))
        .expect("round 11 diagnosed")
        .health;
    let fmt_hv = |hv: &[bool]| -> String {
        hv.iter()
            .map(|&b| if b { "1 " } else { "0 " })
            .collect::<String>()
            .trim_end()
            .to_string()
    };
    let mut out = String::from("Table 1 — diagnostic matrix, nodes 3-4 benign faulty\n\n");
    out.push_str(&matrix.render());
    out.push_str(&format!("Voted cons_hv : {}\n", fmt_hv(&voted)));
    out.push_str(&format!(
        "Live cluster  : {} (diagnosed round 11, all obedient nodes agree: {})\n",
        fmt_hv(live),
        live == &voted,
    ));
    out
}

/// **Fig. 3** — false-correlation probability vs. reward threshold.
pub fn fig3_report() -> String {
    let t = paper_round();
    let rates = default_rates();
    let sweep = default_r_sweep();
    let mut out = String::from(
        "Fig. 3 — probability of falsely correlating a second independent transient\n\
         (rounds of T = 2.5 ms; columns = transient rates in faults/hour)\n\n",
    );
    let mut header: Vec<String> = vec!["R".into(), "R x T".into()];
    header.extend(rates.iter().map(|r| format!("{r}/h")));
    let mut table = Table::new(header);
    for &r in &sweep {
        let window = t * r;
        let mut row = vec![format!("{r:.0e}"), format!("{window}")];
        for &rate in &rates {
            let p = tt_analysis::correlation_probability(rate, r, t);
            row.push(format!("{:.4}%", p * 100.0));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    let p_paper = tt_analysis::correlation_probability(0.014, 1_000_000, t);
    out.push_str(&format!(
        "\nPaper's operating point: R = 10^6 => R x T = {} (~42 min); at the\n\
         implied environment rate (0.014 faults/h) the false-correlation\n\
         probability is {:.3}% (< 1%, as stated in Sec. 9).\n",
        t * 1_000_000,
        p_paper * 100.0
    ));
    // The figure itself, as an ASCII chart (log-x via the log-spaced sweep,
    // log-y via log10 of the probability).
    let series: Vec<(&str, Vec<f64>)> = vec![
        (
            "0.001/h",
            curve(0.001, t, sweep.clone())
                .iter()
                .map(|p| p.probability.log10())
                .collect(),
        ),
        (
            "0.014/h",
            curve(0.014, t, sweep.clone())
                .iter()
                .map(|p| p.probability.log10())
                .collect(),
        ),
        (
            "0.2/h",
            curve(0.2, t, sweep.clone())
                .iter()
                .map(|p| p.probability.log10())
                .collect(),
        ),
    ];
    out.push_str("\nlog10 P(false correlation) vs R (log-spaced 1e2..1e8, T = 2.5 ms):\n\n");
    out.push_str(&tt_analysis::line_chart(&series, 12, ".o*"));
    // The full series (for plotting).
    out.push_str("\nSeries (rate = 0.014/h): R, probability\n");
    for p in curve(0.014, t, sweep) {
        out.push_str(&format!("{}, {:.6}\n", p.reward_threshold, p.probability));
    }
    out
}

/// **Table 2** — the experimental tuning of the p/r algorithm.
pub fn table2_report() -> String {
    let auto = tune(&automotive_setup());
    let aero = tune(&aerospace_setup());
    let mut out =
        String::from("Table 2 — results of the experimental tuning of the p/r algorithm\n\n");
    let mut t = Table::new(vec![
        "Domain",
        "Criticality class",
        "Example",
        "Tolerated outage",
        "Crit. lvl (s_i)",
        "P",
        "R",
        "TDMA",
    ]);
    let mut add_rows = |res: &TuningResult| {
        for row in &res.rows {
            let outage = match row.class.tolerated_outage_hi {
                Some(hi) => format!("{} - {}", row.class.tolerated_outage, hi),
                None => format!("{}", row.class.tolerated_outage),
            };
            t.row(vec![
                res.domain.clone(),
                row.class.name.clone(),
                row.class.example.clone(),
                outage,
                row.criticality.to_string(),
                res.penalty_threshold.to_string(),
                format!("{:.0e}", res.reward_threshold as f64),
                format!("{}", res.round),
            ]);
        }
    };
    add_rows(&auto);
    add_rows(&aero);
    out.push_str(&t.render());
    let mut cmp = ReportBuilder::new();
    cmp.record(
        "P (automotive)",
        "197",
        auto.penalty_threshold.to_string(),
        auto.penalty_threshold == 197,
        "measured via continuous-burst injection",
    );
    cmp.record(
        "s SC/SR/NSR (automotive)",
        "40/6/1",
        auto.rows
            .iter()
            .map(|r| r.criticality.to_string())
            .collect::<Vec<_>>()
            .join("/"),
        auto.rows.iter().map(|r| r.criticality).collect::<Vec<_>>() == vec![40, 6, 1],
        "derived s_i = ceil(P / p_i)",
    );
    cmp.record(
        "P (aerospace)",
        "17",
        aero.penalty_threshold.to_string(),
        aero.penalty_threshold == 17,
        "",
    );
    cmp.record(
        "s SC (aerospace)",
        "1",
        aero.rows[0].criticality.to_string(),
        aero.rows[0].criticality == 1,
        "",
    );
    out.push('\n');
    out.push_str(&cmp.render());
    out
}

/// **Table 3** — the abnormal transient scenarios (experiment inputs).
pub fn table3_report() -> String {
    let mut out = String::from("Table 3 — abnormal transient scenarios\n\n");
    let mut t = Table::new(vec!["Scenario", "Burst", "TTReapp.", "# Inj."]);
    for s in [
        TransientScenario::blinking_light(),
        TransientScenario::lightning_bolt(),
    ] {
        for seg in s.segments() {
            t.row(vec![
                s.name().to_string(),
                format!("{}", seg.burst),
                format!("{}", seg.reappearance),
                seg.count.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// **Table 4** — time to incorrect isolation under the Table 3 scenarios.
pub fn table4_report() -> String {
    let t = paper_round();
    let auto = tune(&automotive_setup());
    let aero = tune(&aerospace_setup());
    let blinking = TransientScenario::blinking_light();
    let lightning = TransientScenario::lightning_bolt();
    let mut out =
        String::from("Table 4 — time to incorrect isolation (healthy nodes, external bursts)\n\n");
    let mut table = Table::new(vec![
        "Setting",
        "Criticality class",
        "Crit. lvl",
        "Time to isolation (measured)",
        "Paper",
    ]);
    let paper_auto = ["0.518 s", "4.595 s", "24.475 s"];
    let mut measured = Vec::new();
    for (row, paper) in auto.rows.iter().zip(paper_auto) {
        let m = measure_time_to_isolation(
            &blinking,
            row.criticality,
            auto.penalty_threshold,
            auto.reward_threshold,
            t,
            PAPER_N,
        );
        let time = m
            .time_to_isolation
            .map(|d| format!("{:.3} s", d.as_secs_f64()))
            .unwrap_or_else(|| "never".into());
        measured.push(m.time_to_isolation);
        table.row(vec![
            "Automotive".to_string(),
            row.class.name.clone(),
            row.criticality.to_string(),
            time,
            paper.to_string(),
        ]);
    }
    let m_aero = measure_time_to_isolation(
        &lightning,
        aero.rows[0].criticality,
        aero.penalty_threshold,
        aero.reward_threshold,
        t,
        PAPER_N,
    );
    table.row(vec![
        "Aerospace".to_string(),
        aero.rows[0].class.name.clone(),
        aero.rows[0].criticality.to_string(),
        m_aero
            .time_to_isolation
            .map(|d| format!("{:.3} s", d.as_secs_f64()))
            .unwrap_or_else(|| "never".into()),
        "0.205 s".to_string(),
    ]);
    out.push_str(&table.render());
    out.push_str(
        "\nShape check: SC is isolated within the second burst; lower criticality\n\
         classes survive roughly P/(4 s_i) burst periods; the SC/SR/NSR ordering and\n\
         the ~1 : 8 : 48 ratio match the paper. Residual deltas on the SR/NSR rows\n\
         stem from the paper's unstated recovery-time accounting (see EXPERIMENTS.md).\n",
    );
    out
}

/// **Sec. 8** — the fault-injection validation campaign.
pub fn validation_report(reps: u64, threads: usize) -> String {
    let classes = sec8_classes(PAPER_N);
    let result = run_parallel_campaign(&classes, PAPER_N, reps, 2_007, threads);
    let mut out = format!(
        "Sec. 8 — validation campaign: {} experiment classes x {} repetitions = {} injections\n\n",
        classes.len(),
        reps,
        result.total()
    );
    let mut t = Table::new(vec![
        "Experiment class",
        "Passed",
        "Total",
        "Mean detection latency",
    ]);
    for (label, passed, total) in result.summary() {
        let mut latency = tt_analysis::Summary::new();
        latency.extend(
            result
                .outcomes
                .iter()
                .filter(|o| o.label == label)
                .filter_map(|o| o.mean_detection_latency),
        );
        t.row(vec![
            label,
            passed.to_string(),
            total.to_string(),
            if latency.count() > 0 {
                format!("{:.2} rounds", latency.mean())
            } else {
                "-".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nAll passed: {} (each run checks correctness, completeness, consistency\n\
         via the ground-truth oracles, plus class-specific expectations)\n",
        result.all_passed()
    ));
    for o in result.outcomes.iter().filter(|o| !o.passed).take(5) {
        out.push_str(&format!(
            "FAILURE {} seed {}: {:?}\n",
            o.label, o.seed, o.notes
        ));
    }
    out
}

/// **Sec. 10** — detection latency of the add-on protocol vs. the
/// low-latency system-level variant.
pub fn lowlat_report() -> String {
    // Add-on protocol, conservative alignment: fault at round 10.
    let cfg = ProtocolConfig::builder(PAPER_N).build().expect("valid");
    let mut addon = ClusterBuilder::new(PAPER_N).build_with_jobs(
        |id| Box::new(DiagJob::new(id, cfg.clone())),
        Box::new(fault_at(10, 2)),
    );
    addon.run_rounds(16);
    let diag: &DiagJob = addon.job_as(NodeId::new(1)).expect("diag job");
    let addon_latency = diag
        .health_for(RoundIndex::new(10))
        .expect("diagnosed")
        .decided_at
        .as_u64()
        - 10;
    // Add-on with the uniform-schedule optimization (lag 2).
    let cfg_fast = ProtocolConfig::builder(PAPER_N)
        .all_send_curr_round(true)
        .build()
        .expect("valid");
    let mut addon_fast = ClusterBuilder::new(PAPER_N).build_with_jobs(
        |id| Box::new(DiagJob::new(id, cfg_fast.clone())),
        Box::new(fault_at(10, 2)),
    );
    addon_fast.run_rounds(16);
    let diag_fast: &DiagJob = addon_fast.job_as(NodeId::new(1)).expect("diag job");
    let fast_latency = diag_fast
        .health_for(RoundIndex::new(10))
        .expect("diagnosed")
        .decided_at
        .as_u64()
        - 10;
    // System-level variant: per-slot analysis.
    let mut lowlat = LowLatCluster::new(PAPER_N, true, Box::new(fault_at(10, 2)));
    lowlat.run_rounds(16);
    let v = lowlat
        .verdict_for(NodeId::new(1), RoundIndex::new(10), NodeId::new(2))
        .expect("diagnosed");
    let slot_latency = v.latency_slots();
    let view_installed = lowlat.view_log(NodeId::new(1)).first().map(|(s, _)| *s);
    let mut out = String::from("Sec. 10 — detection latency across protocol variants\n\n");
    let mut t = Table::new(vec!["Variant", "Detection latency", "Paper"]);
    t.row(vec![
        "Add-on, unconstrained scheduling".to_string(),
        format!("{addon_latency} rounds"),
        "<= 4 rounds".to_string(),
    ]);
    t.row(vec![
        "Add-on, all_send_curr_round".to_string(),
        format!("{fast_latency} rounds"),
        "".to_string(),
    ]);
    t.row(vec![
        "System-level (per-slot analysis)".to_string(),
        format!("{slot_latency} slots = 1 round"),
        "1 round".to_string(),
    ]);
    t.row(vec![
        "System-level membership".to_string(),
        view_installed
            .map(|s| {
                let fault_abs = 10 * PAPER_N as u64 + 1;
                format!("{} slots after fault", s - fault_abs)
            })
            .unwrap_or_else(|| "no view change".into()),
        "2 rounds".to_string(),
    ]);
    out.push_str(&t.render());
    out
}

/// **Bandwidth** — the paper's O(N)/O(N^2) cost claims, computed from the
/// actual wire encoders for every variant and cluster size.
pub fn bandwidth_report() -> String {
    use tt_core::bandwidth::{bandwidth_table, verify_against_encoders, Variant};
    let t = paper_round();
    let mut out =
        String::from("Bandwidth — protocol overhead per variant (from the wire encoders)\n\n");
    let mut table = Table::new(vec![
        "Variant",
        "N",
        "bits/message",
        "bytes on wire",
        "bits/round",
        "bits/s @ 2.5 ms",
    ]);
    for n in [4usize, 8, 16, 64] {
        for row in bandwidth_table(n, t) {
            table.row(vec![
                match row.variant {
                    Variant::AddOnDiagnosis => "add-on diagnosis".to_string(),
                    Variant::AddOnMembership => "add-on membership".to_string(),
                    Variant::SystemLevel => "system-level (Sec. 10)".to_string(),
                },
                n.to_string(),
                row.per_message_bits.to_string(),
                row.per_message_bytes.to_string(),
                row.per_round_bits.to_string(),
                format!("{:.0}", row.bits_per_second),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nEncoder check (message size matches the accounting for N = 4..64): {}\n\
         Paper: \"bandwidth required for each diagnostic message is N = 4 bits\";\n\
         O(N) bits per message, O(N^2) per round — both hold by construction.\n",
        (2..=64).all(verify_against_encoders)
    ));
    out
}

/// **Ablations** — sensitivity sweeps around the paper's operating points
/// (the design-choice data DESIGN.md calls out): availability vs. `P`,
/// the empirical correlation boundary vs. `R`, and completeness vs. burst
/// length.
pub fn ablation_report() -> String {
    use tt_analysis::{burst_length_sweep, penalty_sweep, reward_sweep};
    let t = paper_round();
    let mut out = String::from("Ablations — sensitivity around the tuned operating points\n\n");
    out.push_str("Penalty threshold P vs. availability (blinking light, s = 40):\n");
    let mut table = Table::new(vec!["P", "Time to incorrect isolation"]);
    for p in penalty_sweep(
        &TransientScenario::blinking_light(),
        40,
        1_000_000,
        t,
        PAPER_N,
        [50u64, 100, 197, 400, 700],
    ) {
        table.row(vec![
            p.penalty_threshold.to_string(),
            p.time_to_isolation
                .map(|d| format!("{:.3} s", d.as_secs_f64()))
                .unwrap_or_else(|| "survives scenario".into()),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReward threshold R vs. correlation of an intermittent fault (period 10 rounds, P = 2):\n",
    );
    let mut table = Table::new(vec!["R", "Correlated?", "Rounds to isolation"]);
    for p in reward_sweep(10, 3, PAPER_N, [5u64, 8, 9, 10, 20, 100]) {
        table.row(vec![
            p.reward_threshold.to_string(),
            if p.correlated { "yes" } else { "no" }.to_string(),
            p.rounds_to_isolation
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nBurst length vs. detection (completeness check):\n");
    let mut table = Table::new(vec![
        "Burst (slots)",
        "Faulty slots",
        "Convictions",
        "Max penalty",
    ]);
    for p in burst_length_sweep(PAPER_N, [1u64, 2, 4, 8, 16]) {
        table.row(vec![
            p.len_slots.to_string(),
            p.faulty_slots.to_string(),
            p.convictions.to_string(),
            p.max_penalty.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nThe empirical correlation boundary sits at R = period - 1 (R = 9 forgets,\n         R = 10 correlates) — the measured counterpart of the Fig. 3 model.\n",
    );
    out
}

/// A small demonstration used by benches: a cluster where a burst hits
/// `len_slots` slots starting at `start_slot` of round 10, run to
/// completion with the property oracles evaluated.
pub fn burst_run(len_slots: u64, start_slot: usize) -> bool {
    use tt_core::properties::{check_diag_cluster, checkable_rounds};
    let cfg = ProtocolConfig::builder(PAPER_N).build().expect("valid");
    let pipeline = DisturbanceNode::new(1).with(Burst::in_round(
        RoundIndex::new(10),
        start_slot,
        len_slots,
        PAPER_N,
    ));
    let mut cluster = ClusterBuilder::new(PAPER_N).build_with_jobs(
        |id| Box::new(DiagJob::new(id, cfg.clone())),
        Box::new(pipeline),
    );
    let total = 24;
    cluster.run_rounds(total);
    let all: Vec<NodeId> = NodeId::all(PAPER_N).collect();
    check_diag_cluster(&cluster, &all, checkable_rounds(total, 3)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reports_pipeline_latency() {
        let r = fig1_report();
        assert!(r.contains("decided at round 13"), "{r}");
        assert!(r.contains("latency 3 rounds"));
    }

    #[test]
    fn fig2_shows_alignment() {
        let r = fig2_report();
        assert!(r.contains("dm2(k-1)"));
    }

    #[test]
    fn table1_matches_live_cluster() {
        let r = table1_report();
        assert!(r.contains("Voted cons_hv : 1 1 0 0"), "{r}");
        assert!(r.contains("all obedient nodes agree: true"), "{r}");
    }

    #[test]
    fn fig3_contains_operating_point() {
        let r = fig3_report();
        assert!(r.contains("R = 10^6"), "{r}");
        assert!(r.contains("< 1%"), "{r}");
    }

    #[test]
    fn table2_reproduces_constants() {
        let r = table2_report();
        assert!(r.contains("197"), "{r}");
        assert!(r.contains("17"), "{r}");
        // All comparison rows green.
        assert!(!r.contains("| NO "), "{r}");
    }

    #[test]
    fn table3_lists_scenarios() {
        let r = table3_report();
        assert!(r.contains("blinking light"));
        assert!(r.contains("lightning bolt"));
    }

    #[test]
    fn lowlat_report_shows_one_round() {
        let r = lowlat_report();
        assert!(r.contains("4 slots = 1 round"), "{r}");
        assert!(r.contains("3 rounds"), "{r}");
        assert!(r.contains("2 rounds"), "{r}");
    }

    #[test]
    fn validation_small_campaign_green() {
        let r = validation_report(1, 4);
        assert!(r.contains("All passed: true"), "{r}");
    }

    #[test]
    fn burst_run_helper_is_green() {
        assert!(burst_run(2, 3));
    }
}
