//! Quantitative comparison against the baselines (paper Sec. 2 & Sec. 9).
//!
//! Three mechanisms face the same environments:
//!
//! * the paper's **diagnostic protocol + p/r algorithm** (tuned per
//!   Table 2);
//! * the same diagnostic protocol filtered by **α-count** (Bondavalli et
//!   al., the paper's refs \[5, 6\]) instead of p/r;
//! * a **TTP/C-style built-in membership** with clique avoidance (refs
//!   \[2, 14\]), which has no transient filtering at all.
//!
//! Two axes are measured, mirroring the paper's argument:
//!
//! 1. **availability under abnormal external transients** (Table 3
//!    scenarios): how long healthy nodes survive, and how many nodes the
//!    cluster loses;
//! 2. **detection of unhealthy nodes**: how quickly a genuinely
//!    intermittent node is isolated.

use tt_analysis::{automotive_setup, measure_time_to_isolation, tune, Table};
use tt_baselines::{AlphaCount, TtpcCluster};
use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{DisturbanceNode, SenderBurst, TransientScenario};
use tt_sim::{ClusterBuilder, Nanos, NodeId, RoundIndex, TraceMode};

/// Time until α-count (decay `k`, threshold `t`) first isolates a node when
/// fed the consistent health vectors of a cluster living through
/// `scenario`. Returns `None` if the scenario ends without an isolation.
pub fn alpha_time_to_isolation(
    scenario: &TransientScenario,
    k: f64,
    threshold: f64,
    round: Nanos,
    n: usize,
) -> Option<Nanos> {
    let health = scenario_health_log(scenario, round, n);
    let mut alpha = AlphaCount::new(n, k, threshold);
    for rec in &health {
        if !alpha.update(&rec.health).is_empty() {
            // The verdict lands `lag` rounds after the diagnosed round; the
            // decision time matches the p/r measurement convention.
            return Some(
                rec.decided_at
                    .start_time(round)
                    .saturating_sub(offset_time(round)),
            );
        }
    }
    None
}

fn offset_time(round: Nanos) -> Nanos {
    round * SCENARIO_OFFSET_ROUNDS
}

/// Warm-up rounds before the scenario starts (same as the p/r measurement).
const SCENARIO_OFFSET_ROUNDS: u64 = 8;

/// Runs a protocol cluster through `scenario` and returns its health log
/// (node 1's view — consistent everywhere).
fn scenario_health_log(
    scenario: &TransientScenario,
    round: Nanos,
    n: usize,
) -> Vec<tt_core::HealthRecord> {
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .expect("valid");
    let sched = tt_sim::CommunicationSchedule::new(n, round).expect("valid schedule");
    let offset = offset_time(round);
    let pipeline = scenario.install(DisturbanceNode::new(0), &sched, offset);
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round)
        .trace_mode(TraceMode::Off)
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(pipeline),
        );
    let end = scenario.duration(offset) + round * 16;
    cluster.run_rounds(end.as_nanos().div_ceil(round.as_nanos()));
    let job: &DiagJob = cluster.job_as(NodeId::new(1)).expect("diag job");
    job.health_log().to_vec()
}

/// Survival of a TTP/C-style cluster under `scenario`: returns
/// `(time of first freeze, nodes alive at the end)`.
pub fn ttpc_survival(
    scenario: &TransientScenario,
    round: Nanos,
    n: usize,
) -> (Option<Nanos>, usize) {
    let sched = tt_sim::CommunicationSchedule::new(n, round).expect("valid schedule");
    let offset = offset_time(round);
    let pipeline = scenario.install(DisturbanceNode::new(0), &sched, offset);
    let mut cluster = TtpcCluster::new(n, Box::new(pipeline));
    let end = scenario.duration(offset) + round * 16;
    cluster.run_rounds(end.as_nanos().div_ceil(round.as_nanos()));
    let slot_len = round / n as u64;
    let first_freeze = NodeId::all(n)
        .filter_map(|id| cluster.frozen_at(id))
        .min()
        .map(|abs| (slot_len * abs).saturating_sub(offset));
    (first_freeze, cluster.alive())
}

/// Rounds until each mechanism isolates a genuinely *unhealthy* node whose
/// internal fault manifests intermittently every `period` rounds.
/// Returns `(p/r rounds, α-count rounds, ttpc rounds)` (`None` = never).
pub fn intermittent_detection(
    period: u64,
    p: u64,
    r: u64,
    alpha_k: f64,
    alpha_t: f64,
    n: usize,
) -> (Option<u64>, Option<u64>, Option<u64>) {
    let faulty = NodeId::new(2);
    let start = RoundIndex::new(8);
    let total = 8 + period * (p + 4) + 16;
    // p/r and α-count share the protocol's health log.
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(u64::MAX / 2)
        .reward_threshold(u64::MAX / 2)
        .build()
        .expect("valid");
    let mk_pipeline = || {
        let mut d = DisturbanceNode::new(0);
        let mut r0 = start.as_u64();
        while r0 < total {
            d.push(SenderBurst::new(faulty, RoundIndex::new(r0), 1));
            r0 += period;
        }
        d
    };
    let mut cluster = ClusterBuilder::new(n).build_with_jobs(
        |id| Box::new(DiagJob::new(id, config.clone())),
        Box::new(mk_pipeline()),
    );
    cluster.run_rounds(total);
    let job: &DiagJob = cluster.job_as(NodeId::new(1)).expect("diag job");
    let mut pr =
        tt_core::PenaltyReward::new(n, vec![1; n], p, r, tt_core::ReintegrationPolicy::Never);
    let mut alpha = AlphaCount::new(n, alpha_k, alpha_t);
    let mut pr_at = None;
    let mut alpha_at = None;
    for rec in job.health_log() {
        if pr_at.is_none() && !pr.update(&rec.health).is_empty() {
            pr_at = Some(rec.decided_at.as_u64() - start.as_u64());
        }
        if alpha_at.is_none() && !alpha.update(&rec.health).is_empty() {
            alpha_at = Some(rec.decided_at.as_u64() - start.as_u64());
        }
    }
    // TTP/C: first fault kills the node (no filtering to wait out).
    let mut ttpc = TtpcCluster::new(n, Box::new(mk_pipeline()));
    ttpc.run_rounds(total);
    let ttpc_at = ttpc
        .frozen_at(faulty)
        .map(|abs| abs / n as u64 - start.as_u64());
    (pr_at, alpha_at, ttpc_at)
}

/// The full baseline-comparison report.
pub fn comparison_report() -> String {
    let t = Nanos::from_micros(2_500);
    let n = 4;
    let tuned = tune(&automotive_setup());
    let blinking = TransientScenario::blinking_light();
    let mut out = String::from(
        "Baseline comparison — p/r (paper) vs alpha-count [5,6] vs TTP/C-style [2,14]\n\n\
         Axis 1: availability under the blinking-light scenario (all nodes healthy)\n\n",
    );
    // α-count tuned to the same requirements: threshold = SC penalty
    // budget; decay chosen so faults recurring within R x T = 10^6 rounds
    // still correlate (K just above the uncorrelating bound).
    let alpha_t = tuned.rows[0].penalty_budget as f64; // 5, the SC budget
    let alpha_k = AlphaCount::max_uncorrelating_k(alpha_t, 1_000_000).min(0.999_999_9);
    let mut table = Table::new(vec![
        "Mechanism",
        "Config (SC-equivalent)",
        "First healthy node lost",
        "Nodes lost",
    ]);
    let pr_m = measure_time_to_isolation(
        &blinking,
        tuned.rows[0].criticality,
        tuned.penalty_threshold,
        tuned.reward_threshold,
        t,
        n,
    );
    table.row(vec![
        "Diagnosis + p/r (paper)".to_string(),
        format!("P={}, s=40, R=1e6", tuned.penalty_threshold),
        pr_m.time_to_isolation
            .map(|d| format!("{:.3} s", d.as_secs_f64()))
            .unwrap_or_else(|| "never".into()),
        "1 (per threshold design)".to_string(),
    ]);
    let alpha_at = alpha_time_to_isolation(&blinking, alpha_k, alpha_t, t, n);
    table.row(vec![
        "Diagnosis + alpha-count".to_string(),
        format!("alpha_T={alpha_t}, K={alpha_k:.7}"),
        alpha_at
            .map(|d| format!("{:.3} s", d.as_secs_f64()))
            .unwrap_or_else(|| "never".into()),
        "1 (same detection layer)".to_string(),
    ]);
    let (ttpc_first, ttpc_alive) = ttpc_survival(&blinking, t, n);
    table.row(vec![
        "TTP/C-style membership".to_string(),
        "no transient filtering".to_string(),
        ttpc_first
            .map(|d| format!("{:.3} s", d.as_secs_f64()))
            .unwrap_or_else(|| "never".into()),
        format!("{} of {n} (whole cluster)", n - ttpc_alive),
    ]);
    out.push_str(&table.render());

    out.push_str(
        "\nAxis 2: rounds to isolate an unhealthy node (intermittent fault, one per 20 rounds)\n\n",
    );
    let (pr_at, a_at, ttpc_at) = intermittent_detection(20, 5, 1_000_000, alpha_k, alpha_t, n);
    let mut table = Table::new(vec!["Mechanism", "Rounds to isolation", "Notes"]);
    table.row(vec![
        "Diagnosis + p/r".to_string(),
        pr_at
            .map(|r| r.to_string())
            .unwrap_or_else(|| "never".into()),
        "P/s = 5 correlated faults needed; R = 1e6 keeps them correlated".to_string(),
    ]);
    table.row(vec![
        "Diagnosis + alpha-count".to_string(),
        a_at.map(|r| r.to_string())
            .unwrap_or_else(|| "never".into()),
        "same shape: decay over 19 clean rounds is negligible at K ~ 1".to_string(),
    ]);
    table.row(vec![
        "TTP/C-style membership".to_string(),
        ttpc_at
            .map(|r| r.to_string())
            .unwrap_or_else(|| "never".into()),
        "instant — but it treats healthy transients identically".to_string(),
    ]);
    out.push_str(&table.render());
    out.push_str(
        "\nReading: all three detect the unhealthy node; only the tunable filters\n\
         (p/r, alpha-count) survive the abnormal transient scenario, and only p/r\n\
         offers independent knobs for correlation horizon (R), tolerated faults (P)\n\
         and per-function criticality (s_i) — the paper's tunability argument.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttpc_loses_whole_cluster_on_first_burst() {
        let (first, alive) = ttpc_survival(
            &TransientScenario::blinking_light(),
            Nanos::from_micros(2_500),
            4,
        );
        assert_eq!(alive, 0, "blackout burst freezes everyone");
        let t = first.expect("frozen").as_secs_f64();
        assert!(
            t < 0.02,
            "within the first 10 ms burst + one round, got {t}"
        );
    }

    #[test]
    fn alpha_and_pr_survive_similarly_under_sc_tuning() {
        let t = Nanos::from_micros(2_500);
        let alpha_at = alpha_time_to_isolation(
            &TransientScenario::blinking_light(),
            AlphaCount::max_uncorrelating_k(5.0, 1_000_000).min(0.999_999_9),
            5.0,
            t,
            4,
        )
        .expect("eventually isolated")
        .as_secs_f64();
        // Equivalent tuning: isolation in the second burst, like p/r SC.
        assert!((0.4..0.7).contains(&alpha_at), "got {alpha_at}");
    }

    #[test]
    fn intermittent_node_detected_by_all_mechanisms() {
        let k = AlphaCount::max_uncorrelating_k(5.0, 1_000_000).min(0.999_999_9);
        let (pr, alpha, ttpc) = intermittent_detection(20, 5, 1_000_000, k, 5.0, 4);
        // p/r: 6th fault exceeds P = 5 -> 5 * 20 rounds + lag.
        let pr = pr.expect("p/r isolates");
        assert!((100..=110).contains(&pr), "pr at {pr}");
        let alpha = alpha.expect("alpha isolates");
        assert!((80..=110).contains(&alpha), "alpha at {alpha}");
        let ttpc = ttpc.expect("ttpc freezes the node");
        assert!(ttpc <= 2, "ttpc at {ttpc}");
    }

    #[test]
    fn report_renders() {
        let r = comparison_report();
        assert!(r.contains("TTP/C-style membership"), "{r}");
        assert!(r.contains("alpha-count"), "{r}");
    }
}
