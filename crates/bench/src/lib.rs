//! # tt-bench — experiment regeneration for the tt-diag reproduction
//!
//! This crate hosts:
//!
//! * [`experiments`] — functions that regenerate every table and figure of
//!   the paper's evaluation (Tables 1–4, Figs. 1–3, the Sec. 8 validation
//!   campaign, and the Sec. 10 low-latency variant), returning rendered
//!   reports;
//! * the `fig3` / `table1` / `table2` / `table4` / `validation` /
//!   `repro_all` binaries (thin wrappers over [`experiments`]);
//! * [`observability`] — the instrumented-vs-noop overhead measurement,
//!   the CI bench-gate check, and the canonical scenario behind the
//!   `tests/golden/metrics_events.json` snapshot;
//! * [`parallel`] — the lock-free persistent campaign worker pool (with
//!   panic quarantine, so one crashing experiment cannot poison the pool);
//! * [`batched`] — the lockstep Monte Carlo campaign: workers claim whole
//!   batches of seeded fault schedules and evaluate them as lanes of one
//!   structure-of-arrays [`tt_sim::BatchCluster`], with checkpoint/resume
//!   and a scalar byte-identity cross-check;
//! * [`supervised`] — fault-tolerant campaign execution: watchdog
//!   deadlines, retry/backoff, Alg. 2-style worker health and isolation,
//!   and atomic checkpoint/resume;
//! * [`service`] — the long-lived diagnosis job service behind
//!   `ttdiag serve`: a queue of campaign/explore/tune-sweep jobs executed
//!   in halt/resumable checkpointed chunks with live metrics, span and
//!   progress feeds;
//! * the criterion benches under `benches/` (one per table/figure plus
//!   scaling and ablation benches);
//! * the workspace-level integration tests under `tests/` and the runnable
//!   examples under `examples/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batched;
pub mod comparison;
pub mod experiments;
pub mod observability;
pub mod parallel;
pub mod service;
pub mod supervised;

pub use batched::{
    matches_scalar, BatchedCampaign, BatchedCheckpoint, BatchedResult, BatchedSupervisor,
    LaneOutcome,
};
pub use comparison::comparison_report;
pub use experiments::*;
pub use observability::{
    canonical_metrics_report, check_batched_gate, check_rounds_gate, lightning_metrics_report,
    measure_overhead, normalize_report, BatchedSample, HostFingerprint, OverheadSample,
    RoundsSample, ThroughputBaseline, GATE_MAX_REGRESSION, GATE_N_NODES,
};
pub use parallel::{run_parallel_campaign, run_parallel_campaign_legacy, CampaignExecutor};
pub use service::{DiagService, FeedHubs, JobSpec, JobState, JobStatus};
pub use supervised::{LiveFeeds, SupervisedCampaign, SupervisedOutcome, SupervisorConfig};
