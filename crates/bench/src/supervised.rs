//! Fault-tolerant, supervised campaign execution.
//!
//! [`CampaignExecutor`](crate::CampaignExecutor) assumes experiments are
//! well-behaved; this module assumes they are not. A
//! [`SupervisedCampaign`] runs the same deterministic work list under a
//! supervisor that applies the paper's own fault-tolerance vocabulary to
//! the harness itself:
//!
//! * **panic quarantine** — every attempt runs under `catch_unwind`; a
//!   panicking experiment becomes a [`QuarantineRecord`] (with the seed
//!   that reproduces it) instead of killing the worker or the pool;
//! * **watchdog deadlines** — attempts exceeding the configured
//!   per-experiment budget are cancelled cooperatively through the
//!   round-granularity [`tt_sim::CancellationToken`] threaded into the
//!   cluster, then retried or quarantined;
//! * **retry with bounded exponential backoff** — transiently failing
//!   attempts (injectable via [`HarnessFaultHook`], so the policy is
//!   testable) are requeued after [`BackoffPolicy::delay`];
//! * **worker health (Alg. 2)** — each worker carries a
//!   [`WorkerHealth`] penalty/reward tracker; workers that repeatedly
//!   panic or time out are isolated from the pool and the campaign
//!   degrades gracefully to fewer threads (the last active worker is
//!   never isolated, so the campaign always completes);
//! * **checkpoint/resume** — progress snapshots
//!   ([`tt_fault::CampaignCheckpoint`]) are written atomically every N
//!   settled experiments; a resumed campaign re-runs only unsettled
//!   indices, and — because every experiment is a pure function of its
//!   index-derived seed — produces results byte-identical to an
//!   uninterrupted run.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tt_fault::{
    experiment_seed, run_experiment_observed, BackoffPolicy, CampaignCheckpoint, CampaignResult,
    ExperimentClass, ExperimentOutcome, ExperimentSinks, HarnessFault, HarnessFaultHook,
    QuarantineReason, QuarantineRecord, SupervisionSummary, WorkerHealth, WorkerStats,
};
use tt_sim::{CancellationToken, ProgressEvent, StreamHub};

/// Live observability attachments for `ttdiag serve`: streaming sinks
/// cloned into every experiment cluster plus a progress hub the supervisor
/// publishes a [`ProgressEvent::Settled`] to each time a work item settles.
///
/// `None` (the default) keeps the supervisor exactly as before; attached
/// but subscriber-less feeds cost one relaxed load per settle.
#[derive(Debug, Clone)]
pub struct LiveFeeds {
    /// Service-assigned job id stamped into every progress event.
    pub job: u64,
    /// Sinks attached to every experiment cluster.
    pub sinks: ExperimentSinks,
    /// Hub per-settle progress events are published to.
    pub progress: Arc<StreamHub<ProgressEvent>>,
}

/// Supervision policy for one campaign run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// Per-experiment wall-clock budget; `None` disables the watchdog.
    /// Required when the harness-fault hook can inject hangs.
    pub watchdog: Option<Duration>,
    /// Retry/backoff policy for failed attempts.
    pub backoff: BackoffPolicy,
    /// Alg. 2 penalty threshold `P` for worker isolation.
    pub worker_penalty_threshold: u32,
    /// Alg. 2 reward threshold `R` for worker forgiveness.
    pub worker_reward_threshold: u32,
    /// Write a checkpoint every this many settled experiments
    /// (0 disables periodic snapshots; a final one is still written when
    /// `checkpoint_path` is set).
    pub checkpoint_every: usize,
    /// Where to write checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Stop (with a checkpoint) after this many newly settled experiments
    /// — the controlled "interrupt" used by resume tests and the chaos CI
    /// job.
    pub halt_after: Option<usize>,
    /// Live streaming attachments (`ttdiag serve`); `None` outside serve
    /// mode.
    pub live: Option<LiveFeeds>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            threads: 4,
            watchdog: None,
            backoff: BackoffPolicy::default(),
            worker_penalty_threshold: 3,
            worker_reward_threshold: 2,
            checkpoint_every: 25,
            checkpoint_path: None,
            halt_after: None,
            live: None,
        }
    }
}

/// The result of a supervised campaign run.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// Outcomes of all *completed* experiments, in deterministic
    /// work-list order (quarantined indices are absent here and listed in
    /// the supervision summary instead).
    pub result: CampaignResult,
    /// What degraded: quarantines, retries, per-worker accounting.
    pub supervision: SupervisionSummary,
    /// Whether the run stopped early at `halt_after` (resume from the
    /// checkpoint to continue).
    pub halted: bool,
}

/// A deterministic campaign work list plus the supervision policy to run
/// it under.
#[derive(Debug, Clone)]
pub struct SupervisedCampaign<'a> {
    /// The experiment classes, in work-list order.
    pub classes: &'a [ExperimentClass],
    /// Cluster size.
    pub n: usize,
    /// Seeded repetitions per class.
    pub reps: u64,
    /// Base seed (per-item seeds derive via [`experiment_seed`]).
    pub base_seed: u64,
    /// The supervision policy.
    pub config: SupervisorConfig,
}

/// One attempt handed to a worker.
struct Assignment {
    worker: usize,
    item: usize,
    class: ExperimentClass,
    seed: u64,
    /// Backoff delay the worker sleeps before the attempt.
    delay: Duration,
    /// Fresh per-attempt token the watchdog cancels on deadline.
    token: CancellationToken,
    /// Harness fault injected into this attempt, if any.
    inject: Option<HarnessFault>,
}

/// What one attempt produced, reported back to the supervisor.
enum AttemptOutcome {
    Completed(Box<ExperimentOutcome>),
    Panicked(String),
    /// The watchdog cancelled the attempt (or an injected hang observed
    /// its cancellation).
    Cancelled,
    /// Injected transient failure.
    Transient,
}

struct Event {
    worker: usize,
    item: usize,
    outcome: AttemptOutcome,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_attempt(a: &Assignment, n: usize, sinks: &ExperimentSinks) -> AttemptOutcome {
    match a.inject {
        Some(HarnessFault::Hang) => {
            // A simulated hang: spins until the watchdog cancels it. A
            // real runaway experiment observes the same token at round
            // granularity inside `Cluster::run_round`.
            while !a.token.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            AttemptOutcome::Cancelled
        }
        Some(HarnessFault::Transient) => AttemptOutcome::Transient,
        inject => {
            let result = catch_unwind(AssertUnwindSafe(|| {
                if inject == Some(HarnessFault::Panic) {
                    panic!("injected harness panic");
                }
                run_experiment_observed(a.class, n, a.seed, &a.token, sinks)
            }));
            match result {
                Ok(Some(outcome)) => AttemptOutcome::Completed(Box::new(outcome)),
                Ok(None) => AttemptOutcome::Cancelled,
                Err(payload) => AttemptOutcome::Panicked(panic_message(payload)),
            }
        }
    }
}

fn worker_loop(
    n: usize,
    sinks: ExperimentSinks,
    assignments: Receiver<Assignment>,
    events: Sender<Event>,
) {
    while let Ok(a) = assignments.recv() {
        if !a.delay.is_zero() {
            std::thread::sleep(a.delay);
        }
        let event = Event {
            worker: a.worker,
            item: a.item,
            outcome: run_attempt(&a, n, &sinks),
        };
        if events.send(event).is_err() {
            return; // supervisor gone; nothing left to report to
        }
    }
}

/// A queued (re)attempt of one work item.
struct Pending {
    item: usize,
    attempt: u32,
    delay: Duration,
}

/// An attempt currently executing on a worker.
struct InFlight {
    item: usize,
    token: CancellationToken,
    /// Watchdog deadline; `None` once cancelled (or with no watchdog).
    deadline: Option<Instant>,
}

impl SupervisedCampaign<'_> {
    /// Runs the campaign from scratch.
    ///
    /// # Errors
    ///
    /// Only checkpoint I/O can fail; the supervision machinery itself
    /// turns experiment failures into quarantine records, never errors.
    pub fn run(&self, hook: &dyn HarnessFaultHook) -> io::Result<SupervisedOutcome> {
        let checkpoint = CampaignCheckpoint::new(self.classes, self.n, self.reps, self.base_seed);
        self.run_from(hook, checkpoint)
    }

    /// Resumes the campaign from a checkpoint: already settled indices
    /// (completed or quarantined) are not re-run, and the final outcome is
    /// byte-identical to an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] if the checkpoint does
    /// not belong to this campaign's `(classes, n, reps, base_seed)`.
    pub fn run_resumed(
        &self,
        hook: &dyn HarnessFaultHook,
        checkpoint: &CampaignCheckpoint,
    ) -> io::Result<SupervisedOutcome> {
        if !checkpoint.matches(self.classes, self.n, self.reps, self.base_seed) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint does not match this campaign's classes/n/reps/seed",
            ));
        }
        self.run_from(hook, checkpoint.clone())
    }

    /// The deterministic work list `(class, seed)` in sequential order.
    fn work_items(&self) -> Vec<(ExperimentClass, u64)> {
        self.classes
            .iter()
            .enumerate()
            .flat_map(|(ci, &class)| {
                (0..self.reps).map(move |rep| (class, experiment_seed(self.base_seed, ci, rep)))
            })
            .collect()
    }

    fn run_from(
        &self,
        hook: &dyn HarnessFaultHook,
        checkpoint: CampaignCheckpoint,
    ) -> io::Result<SupervisedOutcome> {
        let items = self.work_items();
        let threads = self.config.threads.max(1);
        let mut completed: BTreeMap<usize, ExperimentOutcome> =
            checkpoint.completed.iter().cloned().collect();
        let mut quarantined: Vec<QuarantineRecord> = checkpoint.quarantined.clone();
        let mut retries: u64 = checkpoint.retries;

        let settled: std::collections::HashSet<usize> = checkpoint.settled().collect();
        let mut queue: VecDeque<Pending> = (0..items.len())
            .filter(|i| !settled.contains(i))
            .map(|item| Pending {
                item,
                attempt: 0,
                delay: Duration::ZERO,
            })
            .collect();

        let mut health = vec![
            WorkerHealth::new(
                self.config.worker_penalty_threshold,
                self.config.worker_reward_threshold,
            );
            threads
        ];
        let mut stats: Vec<WorkerStats> = (0..threads)
            .map(|worker| WorkerStats {
                worker,
                ..WorkerStats::default()
            })
            .collect();
        // Per-item failure count (attempts that did not complete).
        let mut failures: HashMap<usize, u32> = HashMap::new();
        let mut newly_settled: usize = 0;
        let mut halted = false;

        let write_checkpoint = |completed: &BTreeMap<usize, ExperimentOutcome>,
                                quarantined: &[QuarantineRecord],
                                retries: u64|
         -> io::Result<()> {
            let Some(path) = &self.config.checkpoint_path else {
                return Ok(());
            };
            let cp = CampaignCheckpoint {
                completed: completed.iter().map(|(i, o)| (*i, o.clone())).collect(),
                quarantined: quarantined.to_vec(),
                retries,
                ..CampaignCheckpoint::new(self.classes, self.n, self.reps, self.base_seed)
            };
            tt_fault::write_json_atomic(path, &cp)
        };

        let mut checkpoint_io: io::Result<()> = Ok(());
        std::thread::scope(|scope| {
            let (event_tx, event_rx) = mpsc::channel::<Event>();
            let mut assignment_txs: Vec<Sender<Assignment>> = Vec::with_capacity(threads);
            for _ in 0..threads {
                let (tx, rx) = mpsc::channel::<Assignment>();
                assignment_txs.push(tx);
                let events = event_tx.clone();
                let n = self.n;
                let sinks = self
                    .config
                    .live
                    .as_ref()
                    .map(|l| l.sinks.clone())
                    .unwrap_or_default();
                scope.spawn(move || worker_loop(n, sinks, rx, events));
            }
            drop(event_tx);

            let mut idle: Vec<usize> = (0..threads).rev().collect();
            let mut in_flight: HashMap<usize, InFlight> = HashMap::new();

            loop {
                let total_settled = completed.len() + quarantined.len();
                if total_settled == items.len() {
                    break;
                }
                halted = self.config.halt_after.is_some_and(|k| newly_settled >= k);
                if halted && in_flight.is_empty() {
                    break;
                }
                // Hand queued attempts to idle, healthy workers. If every
                // worker is isolated, all stay eligible: the pool degrades,
                // it never deadlocks.
                if !halted {
                    let all_isolated = health.iter().all(|h| h.is_isolated());
                    while !queue.is_empty() {
                        let Some(pos) = idle
                            .iter()
                            .rposition(|&w| all_isolated || !health[w].is_isolated())
                        else {
                            break;
                        };
                        let worker = idle.remove(pos);
                        let p = queue.pop_front().expect("queue checked non-empty");
                        let (class, seed) = items[p.item];
                        let token = CancellationToken::new();
                        let inject = hook.fault(p.item, p.attempt);
                        in_flight.insert(
                            worker,
                            InFlight {
                                item: p.item,
                                token: token.clone(),
                                deadline: self
                                    .config
                                    .watchdog
                                    .map(|d| Instant::now() + p.delay + d),
                            },
                        );
                        assignment_txs[worker]
                            .send(Assignment {
                                worker,
                                item: p.item,
                                class,
                                seed,
                                delay: p.delay,
                                token,
                                inject,
                            })
                            .expect("worker outlives the supervisor scope");
                    }
                }
                if in_flight.is_empty() {
                    // Nothing running and nothing assignable: only possible
                    // when halting (handled above) or when the queue is
                    // empty but unsettled items remain — which cannot
                    // happen, since failed attempts requeue synchronously.
                    debug_assert!(halted || !queue.is_empty());
                    if queue.is_empty() {
                        break;
                    }
                    continue;
                }
                // Wait for the next event, or the nearest watchdog deadline.
                let now = Instant::now();
                let next_deadline = in_flight
                    .values()
                    .filter_map(|f| f.deadline)
                    .min()
                    .map(|d| d.saturating_duration_since(now));
                let event = match next_deadline {
                    Some(timeout) => match event_rx.recv_timeout(timeout) {
                        Ok(ev) => Some(ev),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            unreachable!("workers live for the whole scope")
                        }
                    },
                    None => Some(event_rx.recv().expect("workers live for the whole scope")),
                };
                let Some(event) = event else {
                    // Watchdog tick: cancel every expired attempt. The
                    // worker observes the token at round granularity and
                    // reports `Cancelled`; the deadline is cleared so the
                    // attempt is not cancelled twice.
                    let now = Instant::now();
                    for f in in_flight.values_mut() {
                        if f.deadline.is_some_and(|d| d <= now) {
                            f.token.cancel();
                            f.deadline = None;
                        }
                    }
                    continue;
                };
                let flight = in_flight
                    .remove(&event.worker)
                    .expect("event only from an assigned worker");
                debug_assert_eq!(flight.item, event.item);
                idle.push(event.worker);
                let attempt_no = *failures.get(&event.item).unwrap_or(&0);
                let settled_before = newly_settled;
                match event.outcome {
                    AttemptOutcome::Completed(outcome) => {
                        health[event.worker].record_success();
                        stats[event.worker].completed += 1;
                        completed.insert(event.item, *outcome);
                        // Retries are accounted when an item settles (not
                        // when it is requeued), so the counter is a pure
                        // function of per-item results: an interrupted run
                        // never double-counts the attempts an unsettled
                        // item repeats after resume.
                        retries += u64::from(attempt_no);
                        newly_settled += 1;
                    }
                    failure => {
                        let (kind, last_panic) = match failure {
                            AttemptOutcome::Panicked(msg) => {
                                stats[event.worker].panics += 1;
                                health[event.worker].record_failure();
                                ("panic", Some(msg))
                            }
                            AttemptOutcome::Cancelled => {
                                stats[event.worker].timeouts += 1;
                                health[event.worker].record_failure();
                                ("timeout", None)
                            }
                            AttemptOutcome::Transient => {
                                stats[event.worker].transients += 1;
                                // Transient failures are the *item's*
                                // weather, not the worker's fault: they
                                // do not count against worker health.
                                ("transient", None)
                            }
                            AttemptOutcome::Completed(_) => unreachable!(),
                        };
                        let n_failures = attempt_no + 1;
                        failures.insert(event.item, n_failures);
                        if self.config.backoff.allows_retry(n_failures) {
                            queue.push_back(Pending {
                                item: event.item,
                                attempt: n_failures,
                                delay: self.config.backoff.delay(n_failures - 1),
                            });
                        } else {
                            let (class, seed) = items[event.item];
                            let reason = match (kind, last_panic) {
                                ("panic", Some(msg)) => QuarantineReason::Panic(msg),
                                ("timeout", _) => QuarantineReason::Timeout,
                                _ => QuarantineReason::RetriesExhausted,
                            };
                            quarantined.push(QuarantineRecord {
                                item: event.item,
                                label: class.label(),
                                seed,
                                attempts: n_failures,
                                reason,
                            });
                            retries += u64::from(n_failures - 1);
                            newly_settled += 1;
                        }
                    }
                }
                // Live progress: one event per settled item, published only
                // when somebody is watching (one relaxed load otherwise).
                if newly_settled > settled_before {
                    if let Some(live) = &self.config.live {
                        if live.progress.has_subscribers() {
                            live.progress.publish(ProgressEvent::Settled {
                                job: live.job,
                                completed: (completed.len() + quarantined.len()) as u64,
                                total: items.len() as u64,
                                quarantined: quarantined.len() as u64,
                            });
                        }
                    }
                }
                // Periodic atomic snapshot.
                let every = self.config.checkpoint_every;
                if every > 0 && newly_settled > 0 && newly_settled.is_multiple_of(every) {
                    if let Err(e) = write_checkpoint(&completed, &quarantined, retries) {
                        checkpoint_io = Err(e);
                    }
                }
            }
            drop(assignment_txs); // workers drain and exit; scope joins them
        });
        checkpoint_io?;
        quarantined.sort_by_key(|q| q.item);
        // Final snapshot: the artifact CI uploads and resume starts from.
        write_checkpoint(&completed, &quarantined, retries)?;
        for (s, h) in stats.iter_mut().zip(&health) {
            s.isolated = h.is_isolated();
        }
        Ok(SupervisedOutcome {
            result: CampaignResult {
                outcomes: completed.into_values().collect(),
            },
            supervision: SupervisionSummary {
                quarantined,
                retries,
                workers: stats,
            },
            halted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_fault::{run_campaign, ChaosPlan, NoHarnessFaults};

    fn classes() -> Vec<ExperimentClass> {
        vec![
            ExperimentClass::Burst {
                len_slots: 1,
                start_slot: 0,
            },
            ExperimentClass::Burst {
                len_slots: 2,
                start_slot: 3,
            },
            ExperimentClass::Burst {
                len_slots: 1,
                start_slot: 2,
            },
        ]
    }

    fn campaign(classes: &[ExperimentClass], config: SupervisorConfig) -> SupervisedCampaign<'_> {
        SupervisedCampaign {
            classes,
            n: 4,
            reps: 3,
            base_seed: 42,
            config,
        }
    }

    #[test]
    fn clean_run_matches_sequential_campaign() {
        let classes = classes();
        let seq = run_campaign(&classes, 4, 3, 42);
        for threads in [1usize, 3, 8] {
            let sup = campaign(
                &classes,
                SupervisorConfig {
                    threads,
                    ..SupervisorConfig::default()
                },
            )
            .run(&NoHarnessFaults)
            .expect("no checkpoint I/O configured");
            assert_eq!(sup.result.outcomes, seq.outcomes, "{threads} threads");
            assert!(sup.supervision.clean());
            assert!(!sup.halted);
        }
    }

    #[test]
    fn persistent_panics_are_quarantined_not_fatal() {
        let classes = classes();
        let plan = ChaosPlan {
            seed: 5,
            panic_per_mille: 250,
            hang_per_mille: 0,
            transient_per_mille: 0,
            first_attempt_only: false,
        };
        let (expect_panics, _, _) = plan.expected_faults(9);
        assert!(expect_panics > 0, "plan must fault at least one item");
        let sup = campaign(&classes, SupervisorConfig::default())
            .run(&plan)
            .unwrap();
        assert_eq!(sup.supervision.quarantined.len(), expect_panics);
        assert_eq!(sup.result.total(), 9 - expect_panics);
        for q in &sup.supervision.quarantined {
            assert!(matches!(q.reason, QuarantineReason::Panic(_)), "{q:?}");
            assert_eq!(q.attempts, 1 + sup_retries_per_item());
        }
        // Healthy experiments still match the sequential reference.
        let seq = run_campaign(&classes, 4, 3, 42);
        let quarantined: Vec<usize> = sup.supervision.quarantined.iter().map(|q| q.item).collect();
        let healthy: Vec<_> = seq
            .outcomes
            .iter()
            .enumerate()
            .filter(|(i, _)| !quarantined.contains(i))
            .map(|(_, o)| o.clone())
            .collect();
        assert_eq!(sup.result.outcomes, healthy);
    }

    fn sup_retries_per_item() -> u32 {
        BackoffPolicy::default().max_retries
    }

    #[test]
    fn transient_faults_recover_on_retry() {
        let classes = classes();
        let plan = ChaosPlan {
            seed: 1,
            panic_per_mille: 0,
            hang_per_mille: 0,
            transient_per_mille: 300,
            first_attempt_only: true,
        };
        let (_, _, transients) = plan.expected_faults(9);
        assert!(transients > 0);
        let sup = campaign(
            &classes,
            SupervisorConfig {
                backoff: BackoffPolicy {
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(2),
                    max_retries: 2,
                },
                ..SupervisorConfig::default()
            },
        )
        .run(&plan)
        .unwrap();
        // Every transiently failed item recovered: full results, no
        // quarantine, one retry per faulted item.
        assert_eq!(sup.result.total(), 9);
        assert!(sup.supervision.quarantined.is_empty());
        assert_eq!(sup.supervision.retries, transients as u64);
        let seq = run_campaign(&classes, 4, 3, 42);
        assert_eq!(sup.result.outcomes, seq.outcomes);
    }

    #[test]
    fn hangs_are_cancelled_by_the_watchdog_and_quarantined() {
        let classes = classes();
        let plan = ChaosPlan {
            seed: 23,
            panic_per_mille: 0,
            hang_per_mille: 200,
            transient_per_mille: 0,
            first_attempt_only: false,
        };
        let (_, hangs, _) = plan.expected_faults(9);
        assert!(hangs > 0);
        let sup = campaign(
            &classes,
            SupervisorConfig {
                watchdog: Some(Duration::from_millis(30)),
                backoff: BackoffPolicy {
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(2),
                    max_retries: 1,
                },
                ..SupervisorConfig::default()
            },
        )
        .run(&plan)
        .unwrap();
        assert_eq!(sup.supervision.quarantined.len(), hangs);
        for q in &sup.supervision.quarantined {
            assert_eq!(q.reason, QuarantineReason::Timeout, "{q:?}");
        }
        assert_eq!(sup.result.total(), 9 - hangs);
    }

    #[test]
    fn repeatedly_failing_worker_is_isolated_and_campaign_degrades() {
        // One worker, panics everywhere, P=2: the sole worker crosses the
        // threshold but — as the last active worker — keeps draining, so
        // the campaign completes (all quarantined) instead of stalling.
        let classes = classes();
        let plan = ChaosPlan {
            seed: 1,
            panic_per_mille: 1000,
            hang_per_mille: 0,
            transient_per_mille: 0,
            first_attempt_only: false,
        };
        let sup = campaign(
            &classes,
            SupervisorConfig {
                threads: 1,
                worker_penalty_threshold: 2,
                backoff: BackoffPolicy {
                    base: Duration::ZERO,
                    cap: Duration::ZERO,
                    max_retries: 0,
                },
                ..SupervisorConfig::default()
            },
        )
        .run(&plan)
        .unwrap();
        assert_eq!(sup.supervision.quarantined.len(), 9);
        assert!(sup.result.outcomes.is_empty());
        assert!(sup.supervision.workers[0].isolated);
        assert_eq!(sup.supervision.workers[0].panics, 9);
    }

    #[test]
    fn multi_worker_pool_isolates_only_the_unhealthy_workers() {
        // Everything panics once (first attempt only); with retries the
        // campaign still completes fully, and workers that absorbed ≥ P
        // panics without enough forgiveness may be isolated — but the
        // campaign nevertheless produces every outcome.
        let classes = classes();
        let plan = ChaosPlan {
            seed: 9,
            panic_per_mille: 400,
            hang_per_mille: 0,
            transient_per_mille: 0,
            first_attempt_only: true,
        };
        let sup = campaign(
            &classes,
            SupervisorConfig {
                threads: 2,
                backoff: BackoffPolicy {
                    base: Duration::ZERO,
                    cap: Duration::ZERO,
                    max_retries: 2,
                },
                ..SupervisorConfig::default()
            },
        )
        .run(&plan)
        .unwrap();
        assert_eq!(sup.result.total(), 9, "first-attempt panics all recover");
        assert!(sup.supervision.quarantined.is_empty());
        let seq = run_campaign(&classes, 4, 3, 42);
        assert_eq!(sup.result.outcomes, seq.outcomes);
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let classes = classes();
        let dir = std::env::temp_dir().join("tt-bench-supervised-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("campaign.json");
        let plan = ChaosPlan {
            seed: 2,
            panic_per_mille: 150,
            hang_per_mille: 0,
            transient_per_mille: 150,
            first_attempt_only: false,
        };
        let config = SupervisorConfig {
            threads: 3,
            backoff: BackoffPolicy {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                max_retries: 1,
            },
            checkpoint_every: 2,
            checkpoint_path: Some(path.clone()),
            ..SupervisorConfig::default()
        };
        let uninterrupted = campaign(
            &classes,
            SupervisorConfig {
                checkpoint_path: None,
                ..config.clone()
            },
        )
        .run(&plan)
        .unwrap();
        // Interrupt after 4 settled experiments, then resume from disk.
        let halted = campaign(
            &classes,
            SupervisorConfig {
                halt_after: Some(4),
                ..config.clone()
            },
        )
        .run(&plan)
        .unwrap();
        assert!(halted.halted);
        let cp: CampaignCheckpoint = tt_fault::read_json(&path).unwrap();
        assert!(cp.settled().count() >= 4);
        let resumed = campaign(&classes, config).run_resumed(&plan, &cp).unwrap();
        assert!(!resumed.halted);
        assert_eq!(resumed.result.outcomes, uninterrupted.result.outcomes);
        assert_eq!(
            resumed.supervision.quarantined,
            uninterrupted.supervision.quarantined
        );
        assert_eq!(
            resumed.supervision.retries,
            uninterrupted.supervision.retries
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let classes = classes();
        let cp = CampaignCheckpoint::new(&classes, 4, 3, 41); // wrong seed
        let err = campaign(&classes, SupervisorConfig::default())
            .run_resumed(&NoHarnessFaults, &cp)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
