//! Batched (lockstep) Monte Carlo campaign execution.
//!
//! The Sec. 8 validation campaign runs one cluster per experiment; the
//! Sec. 9 tuning use case runs *thousands* of independent clusters that
//! differ only in their seeded fault schedule. A [`BatchedCampaign`]
//! exploits that shape: the work list is a range of experiment indices,
//! each index derives a [`FaultSchedule`] through
//! [`seeded_schedule`]/[`experiment_seed`], and workers claim whole
//! *batches* of indices instead of single experiments. Every batch runs as
//! lanes of one structure-of-arrays [`tt_sim::BatchCluster`] driven by a
//! [`tt_core::BatchDiagJob`] — the lockstep engine — so one core simulates
//! hundreds of clusters at once.
//!
//! Correctness story, in layers:
//!
//! * each lane's protocol-state fingerprint stream is byte-identical to a
//!   scalar [`execute_schedule`] run of the same schedule (enforced by
//!   `tests/batch_equivalence.rs` and the corpus replay);
//! * [`matches_scalar`] re-derives every outcome sequentially on the
//!   scalar path and compares digests — the batched analogue of the
//!   pooled runner's `matches_sequential` cross-check;
//! * outcomes are a pure function of the campaign definition: thread
//!   count, batch claiming order and batch width all cancel out, and the
//!   checkpoint/resume tests pin byte-identical results after a halt.
//!
//! Supervision composes with the PR-5 vocabulary where it applies to
//! batches: evaluation runs under `catch_unwind`, a poisoned batch
//! degrades to per-lane scalar execution, and a lane whose scalar
//! execution also fails becomes a quarantined outcome instead of killing
//! the worker. Checkpoints record the settled per-lane outcomes (in work
//! order) through the same [`write_json_atomic`] snapshots the supervised
//! executor uses.

use std::collections::BTreeMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use serde::{Deserialize, Serialize};

use tt_core::digest_fingerprints;
use tt_fault::{
    execute_schedule, execute_schedules_batched, experiment_seed, seeded_schedule,
    write_json_atomic, ExploreConfig, FaultSchedule, CHECKPOINT_VERSION,
};

/// A batched Monte Carlo campaign: `experiments` seeded fault schedules,
/// evaluated `batch_size` lanes at a time by `threads` lockstep workers.
#[derive(Debug, Clone)]
pub struct BatchedCampaign {
    /// Schedule shape (cluster size, rounds, Alg. 2 thresholds, fault
    /// budget). The generator's own `seed`/`budget`/`strategy` fields are
    /// unused here — per-experiment randomness comes from `base_seed`.
    pub schedule: ExploreConfig,
    /// Number of experiments (work-list length).
    pub experiments: usize,
    /// Lanes per lockstep batch (clamped to ≥ 1).
    pub batch_size: usize,
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// Base seed; per-experiment seeds derive via [`experiment_seed`].
    pub base_seed: u64,
}

/// One settled experiment of a batched campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneOutcome {
    /// Work-list index.
    pub index: usize,
    /// The index-derived schedule seed (reproduces the experiment).
    pub seed: u64,
    /// FNV digest of the protocol-state fingerprint stream
    /// ([`digest_fingerprints`]); 0 for quarantined lanes.
    pub digest: u64,
    /// Fingerprints in the stream (one per diagnosed round).
    pub prints: usize,
    /// True when both the lockstep batch and the per-lane scalar fallback
    /// failed; the seed reproduces the failure.
    pub quarantined: bool,
}

/// The result of a batched campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchedResult {
    /// Settled outcomes in work-list order (a prefix when `halted`).
    pub outcomes: Vec<LaneOutcome>,
    /// Whether the run stopped early at
    /// [`halt_after_batches`](BatchedSupervisor::halt_after_batches).
    pub halted: bool,
}

/// Checkpoint/halt policy for a batched campaign run.
#[derive(Debug, Clone, Default)]
pub struct BatchedSupervisor {
    /// Where to write checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many settled batches (0 disables
    /// periodic snapshots; a final one is still written when
    /// `checkpoint_path` is set).
    pub checkpoint_every_batches: usize,
    /// Stop (with a checkpoint) after this many newly settled batches —
    /// the controlled "interrupt" the resume tests use.
    pub halt_after_batches: Option<usize>,
}

/// Atomic progress snapshot of a batched campaign: the settled outcome
/// prefix plus the campaign identity it belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchedCheckpoint {
    /// Snapshot format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Cluster size of the campaign's schedules.
    pub n: usize,
    /// Rounds per schedule.
    pub rounds: u64,
    /// Work-list length.
    pub experiments: usize,
    /// Lanes per lockstep batch.
    pub batch_size: usize,
    /// Base seed of the campaign.
    pub base_seed: u64,
    /// Settled outcomes, in work-list order. Always a whole number of
    /// batches (or the full campaign), so resume restarts on a batch
    /// boundary.
    pub completed: Vec<LaneOutcome>,
}

impl BatchedCheckpoint {
    /// An empty checkpoint for `campaign`.
    pub fn new(campaign: &BatchedCampaign) -> Self {
        BatchedCheckpoint {
            version: CHECKPOINT_VERSION,
            n: campaign.schedule.n,
            rounds: campaign.schedule.rounds,
            experiments: campaign.experiments,
            batch_size: campaign.batch_size.max(1),
            base_seed: campaign.base_seed,
            completed: Vec::new(),
        }
    }

    /// Whether this snapshot belongs to `campaign` and is resumable (its
    /// prefix ends on a batch boundary).
    pub fn matches(&self, campaign: &BatchedCampaign) -> bool {
        self.version == CHECKPOINT_VERSION
            && self.n == campaign.schedule.n
            && self.rounds == campaign.schedule.rounds
            && self.experiments == campaign.experiments
            && self.batch_size == campaign.batch_size.max(1)
            && self.base_seed == campaign.base_seed
            && (self.completed.len().is_multiple_of(self.batch_size.max(1))
                || self.completed.len() == self.experiments)
            && self.completed.len() <= self.experiments
    }
}

/// Evaluates one slate of schedules: the lockstep engine first, scalar
/// per-lane execution as the degraded path if the whole batch fails, and
/// `None` for lanes where even the scalar run panics.
fn lane_digests(schedules: &[FaultSchedule]) -> Vec<Option<(u64, usize)>> {
    if let Ok(Ok(streams)) = catch_unwind(AssertUnwindSafe(|| execute_schedules_batched(schedules)))
    {
        return streams
            .into_iter()
            .map(|fps| Some((digest_fingerprints(&fps), fps.len())))
            .collect();
    }
    schedules
        .iter()
        .map(|s| {
            catch_unwind(AssertUnwindSafe(|| execute_schedule(s)))
                .ok()
                .map(|exec| {
                    (
                        digest_fingerprints(&exec.fingerprints),
                        exec.fingerprints.len(),
                    )
                })
        })
        .collect()
}

impl BatchedCampaign {
    /// The seeded schedule of work-list item `index`.
    pub fn schedule_for(&self, index: usize) -> FaultSchedule {
        seeded_schedule(&self.schedule, self.seed_for(index))
    }

    /// The index-derived seed of work-list item `index`.
    pub fn seed_for(&self, index: usize) -> u64 {
        experiment_seed(self.base_seed, 0, index as u64)
    }

    /// Runs the whole campaign with checkpointing disabled (so I/O cannot
    /// fail) and no halt.
    pub fn run(&self) -> BatchedResult {
        self.run_supervised(&BatchedSupervisor::default())
            .expect("no checkpoint I/O configured")
    }

    /// Runs the campaign from scratch under `sup`.
    ///
    /// # Errors
    ///
    /// Only checkpoint I/O can fail; experiment failures degrade to
    /// quarantined outcomes instead.
    pub fn run_supervised(&self, sup: &BatchedSupervisor) -> io::Result<BatchedResult> {
        self.run_from(sup, Vec::new())
    }

    /// Resumes the campaign from a checkpoint: settled batches are not
    /// re-run, and the final outcome is byte-identical to an
    /// uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] if the checkpoint does
    /// not belong to this campaign, plus any checkpoint I/O error.
    pub fn run_resumed(
        &self,
        sup: &BatchedSupervisor,
        checkpoint: &BatchedCheckpoint,
    ) -> io::Result<BatchedResult> {
        if !checkpoint.matches(self) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint does not match this campaign's schedule/experiments/batch/seed",
            ));
        }
        self.run_from(sup, checkpoint.completed.clone())
    }

    /// One batch of settled outcomes (the worker body, also used by the
    /// single-threaded fast path).
    fn settle_batch(&self, batch: usize) -> Vec<LaneOutcome> {
        let batch_size = self.batch_size.max(1);
        let lo = batch * batch_size;
        let hi = (lo + batch_size).min(self.experiments);
        let schedules: Vec<FaultSchedule> = (lo..hi).map(|i| self.schedule_for(i)).collect();
        lane_digests(&schedules)
            .into_iter()
            .zip(lo..hi)
            .map(|(digest, index)| match digest {
                Some((digest, prints)) => LaneOutcome {
                    index,
                    seed: self.seed_for(index),
                    digest,
                    prints,
                    quarantined: false,
                },
                None => LaneOutcome {
                    index,
                    seed: self.seed_for(index),
                    digest: 0,
                    prints: 0,
                    quarantined: true,
                },
            })
            .collect()
    }

    fn run_from(
        &self,
        sup: &BatchedSupervisor,
        mut completed: Vec<LaneOutcome>,
    ) -> io::Result<BatchedResult> {
        let batch_size = self.batch_size.max(1);
        let n_batches = self.experiments.div_ceil(batch_size);
        let start_batch = completed.len().div_ceil(batch_size);
        let end_batch = match sup.halt_after_batches {
            Some(k) => (start_batch + k).min(n_batches),
            None => n_batches,
        };
        let halted = end_batch < n_batches;

        let write_checkpoint = |completed: &[LaneOutcome]| -> io::Result<()> {
            let Some(path) = &sup.checkpoint_path else {
                return Ok(());
            };
            let cp = BatchedCheckpoint {
                completed: completed.to_vec(),
                ..BatchedCheckpoint::new(self)
            };
            write_json_atomic(path, &cp)
        };

        let mut checkpoint_io: io::Result<()> = Ok(());
        let cursor = AtomicUsize::new(start_batch);
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, Vec<LaneOutcome>)>();
            for _ in 0..self.threads.max(1) {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let batch = cursor.fetch_add(1, Ordering::Relaxed);
                    if batch >= end_batch {
                        return;
                    }
                    if tx.send((batch, self.settle_batch(batch))).is_err() {
                        return; // supervisor gone; nothing left to report to
                    }
                });
            }
            drop(tx);

            // Batches settle in claim order but may finish out of order;
            // stash early arrivals so `completed` (and every checkpoint)
            // stays an in-order prefix of the work list.
            let mut stash: BTreeMap<usize, Vec<LaneOutcome>> = BTreeMap::new();
            let mut next = start_batch;
            let mut settled_batches = 0usize;
            for (batch, outcomes) in rx {
                stash.insert(batch, outcomes);
                while let Some(outcomes) = stash.remove(&next) {
                    completed.extend(outcomes);
                    next += 1;
                    settled_batches += 1;
                    let every = sup.checkpoint_every_batches;
                    if every > 0 && settled_batches.is_multiple_of(every) {
                        if let Err(e) = write_checkpoint(&completed) {
                            checkpoint_io = Err(e);
                        }
                    }
                }
            }
            debug_assert_eq!(next, end_batch, "every claimed batch settles");
        });
        checkpoint_io?;
        // Final snapshot: the artifact resume starts from.
        write_checkpoint(&completed)?;
        Ok(BatchedResult {
            outcomes: completed,
            halted,
        })
    }
}

/// Re-derives every outcome on the sequential scalar path and compares
/// digests — the batched campaign's `matches_sequential` analogue. True
/// iff the run is complete, nothing was quarantined, and every lane's
/// fingerprint digest equals its scalar [`execute_schedule`] digest.
pub fn matches_scalar(campaign: &BatchedCampaign, outcomes: &[LaneOutcome]) -> bool {
    outcomes.len() == campaign.experiments
        && outcomes.iter().enumerate().all(|(i, o)| {
            if o.index != i || o.quarantined {
                return false;
            }
            let exec = execute_schedule(&campaign.schedule_for(i));
            o.digest == digest_fingerprints(&exec.fingerprints)
                && o.prints == exec.fingerprints.len()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_fault::read_json;

    fn campaign() -> BatchedCampaign {
        BatchedCampaign {
            schedule: ExploreConfig {
                n: 5,
                rounds: 16,
                ..ExploreConfig::default()
            },
            experiments: 23,
            batch_size: 5,
            threads: 3,
            base_seed: 2_007,
        }
    }

    #[test]
    fn batched_campaign_matches_the_scalar_path() {
        let campaign = campaign();
        let result = campaign.run();
        assert!(!result.halted);
        assert_eq!(result.outcomes.len(), 23);
        assert!(matches_scalar(&campaign, &result.outcomes));
        // Schedules differ, so the digests do too (no accidental
        // constant-stream degeneration).
        let distinct: std::collections::HashSet<u64> =
            result.outcomes.iter().map(|o| o.digest).collect();
        assert!(distinct.len() > 1, "digests distinguish schedules");
    }

    #[test]
    fn outcomes_are_independent_of_threads_and_batch_width() {
        let base = campaign();
        let reference = base.run().outcomes;
        for (threads, batch_size) in [(1usize, 23usize), (2, 1), (4, 7), (8, 256)] {
            let variant = BatchedCampaign {
                threads,
                batch_size,
                ..base.clone()
            };
            assert_eq!(
                variant.run().outcomes,
                reference,
                "threads={threads} batch={batch_size}"
            );
        }
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let campaign = campaign();
        let dir = std::env::temp_dir().join("tt-bench-batched-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("batched.json");
        let uninterrupted = campaign.run();

        let halted = campaign
            .run_supervised(&BatchedSupervisor {
                checkpoint_path: Some(path.clone()),
                checkpoint_every_batches: 1,
                halt_after_batches: Some(2),
            })
            .unwrap();
        assert!(halted.halted);
        assert_eq!(halted.outcomes.len(), 10, "two batches of five settled");

        let cp: BatchedCheckpoint = read_json(&path).unwrap();
        assert!(cp.matches(&campaign));
        assert_eq!(cp.completed, halted.outcomes);

        let resumed = campaign
            .run_resumed(
                &BatchedSupervisor {
                    checkpoint_path: Some(path.clone()),
                    ..BatchedSupervisor::default()
                },
                &cp,
            )
            .unwrap();
        assert!(!resumed.halted);
        assert_eq!(resumed.outcomes, uninterrupted.outcomes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let campaign = campaign();
        let mut cp = BatchedCheckpoint::new(&campaign);
        cp.base_seed ^= 1;
        let err = campaign
            .run_resumed(&BatchedSupervisor::default(), &cp)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        // A prefix off a batch boundary is not resumable either.
        let mut cp = BatchedCheckpoint::new(&campaign);
        cp.completed = campaign.run().outcomes[..3].to_vec();
        assert!(!cp.matches(&campaign));
    }

    #[test]
    fn poisoned_slates_degrade_to_scalar_lanes_not_panics() {
        // An oversized cluster makes the whole lockstep batch refuse to
        // run; the degraded path settles each lane individually on the
        // scalar executor, so the valid batch-mates still produce their
        // exact scalar digests.
        let good = campaign().schedule_for(0);
        let mut oversized = good.clone();
        oversized.n = tt_sim::MAX_BATCH_NODES + 1;
        let slate = vec![good.clone(), oversized];
        let digests = lane_digests(&slate);
        assert_eq!(digests.len(), 2);
        let scalar = execute_schedule(&good);
        assert_eq!(
            digests[0],
            Some((
                digest_fingerprints(&scalar.fingerprints),
                scalar.fingerprints.len()
            ))
        );
    }
}
