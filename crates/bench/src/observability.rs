//! Observability benchmarks and fixtures: the instrumented-vs-noop
//! overhead measurement behind `throughput --overhead`, the bench-gate
//! check used by CI, and the canonical instrumented scenario whose event
//! stream is snapshotted under `tests/golden/metrics_events.json`.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use tt_core::{DiagJob, ProtocolConfig};
use tt_fault::{DisturbanceNode, TransientScenario};
use tt_sim::{
    Cluster, ClusterBuilder, CommunicationSchedule, MetricsEvent, MetricsReport, MetricsSink,
    Nanos, NoFaults, NodeId, RecordingSink, RecordingTraceSink, SlotEffect, TraceMode, TxCtx,
};

/// One rounds/sec measurement of the substrate hot path, as written to
/// `BENCH_throughput.json` (and read back by [`check_rounds_gate`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundsSample {
    /// Cluster size.
    pub n_nodes: usize,
    /// Steady-state `Cluster::run_round` throughput.
    pub rounds_per_sec: f64,
}

/// The machine a benchmark sample was measured on. Throughput numbers are
/// only comparable between identical hosts, so the fingerprint joins the
/// workload shape in [`check_batched_gate`]'s like-for-like test: a
/// baseline measured on different silicon (or with a different
/// `target-cpu`) skips the comparison instead of mis-gating it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostFingerprint {
    /// Logical CPU count visible to the process.
    pub logical_cores: usize,
    /// The kernel-reported CPU model (`model name` in `/proc/cpuinfo`),
    /// `"unknown"` where unavailable.
    pub cpu_model: String,
    /// The compile-time target: architecture plus the SIMD features the
    /// binary was built with (e.g. `x86_64[avx2+sse4.2]`).
    pub target_cpu: String,
}

impl HostFingerprint {
    /// Fingerprints the current host and binary.
    pub fn detect() -> Self {
        HostFingerprint {
            logical_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cpu_model: cpu_model(),
            target_cpu: target_cpu(),
        }
    }
}

/// The first `model name` entry of `/proc/cpuinfo`, or `"unknown"`.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|body| {
            body.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split_once(':'))
                .map(|(_, model)| model.trim().to_string())
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The compile-time architecture and SIMD feature set of this binary —
/// the observable trace of `-C target-cpu`.
fn target_cpu() -> String {
    let features: Vec<&str> = [
        ("avx512f", cfg!(target_feature = "avx512f")),
        ("avx2", cfg!(target_feature = "avx2")),
        ("avx", cfg!(target_feature = "avx")),
        ("sse4.2", cfg!(target_feature = "sse4.2")),
        ("neon", cfg!(target_feature = "neon")),
    ]
    .into_iter()
    .filter_map(|(name, on)| on.then_some(name))
    .collect();
    if features.is_empty() {
        std::env::consts::ARCH.to_string()
    } else {
        format!("{}[{}]", std::env::consts::ARCH, features.join("+"))
    }
}

/// One batched-campaign throughput measurement, as written to
/// `BENCH_throughput.json` by `throughput --batched` (and read back by
/// [`check_batched_gate`]). The workload fields exist so the gate can
/// refuse to compare measurements of different shapes — the schema-drift
/// fix: a number without its `threads`/`batch_size`/cluster-size context
/// is not comparable across commits.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BatchedSample {
    /// Cluster size of every lane.
    pub n_nodes: usize,
    /// Rounds per experiment (schedule round budget).
    pub rounds_per_experiment: u64,
    /// Experiments per timed campaign run.
    pub experiments: usize,
    /// Lanes per lockstep batch.
    pub batch_size: usize,
    /// Worker threads the sample was measured with.
    pub threads: usize,
    /// Timed campaign repetitions.
    pub iterations: usize,
    /// Experiments/sec through the lockstep engine.
    pub batched_experiments_per_sec: f64,
    /// Experiments/sec of the *same* workload run one-cluster-per-
    /// experiment (the pooled architecture) on the same single worker
    /// thread — the like-for-like denominator of
    /// [`Self::batched_over_pooled`]. The Sec. 8 campaign numbers elsewhere
    /// in the report measure a different workload (N=4 classes) and are not
    /// comparable.
    pub pooled_experiments_per_sec: f64,
    /// `batched / pooled` — lockstep lanes versus one scalar cluster per
    /// experiment over the identical experiment list.
    pub batched_over_pooled: f64,
    /// Whether the warm-up campaign's digests matched a sequential scalar
    /// re-derivation ([`crate::matches_scalar`]).
    pub matches_scalar: bool,
    /// The host the sample was measured on; `None` in baselines committed
    /// before fingerprints existed (the gate then skips the comparison).
    pub host: Option<HostFingerprint>,
}

// Hand-written so a baseline written before host fingerprints existed —
// no `host` key at all — still parses as `host: None` (the derive treats
// every missing field as an error, even `Option`s).
impl serde::Deserialize for BatchedSample {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("expected map for BatchedSample"))?;
        let field = |name: &str| {
            serde::Value::get_field(map, name).ok_or_else(|| {
                serde::DeError::custom(format!("missing field `{name}` in BatchedSample"))
            })
        };
        Ok(BatchedSample {
            n_nodes: serde::Deserialize::from_value(field("n_nodes")?)?,
            rounds_per_experiment: serde::Deserialize::from_value(field("rounds_per_experiment")?)?,
            experiments: serde::Deserialize::from_value(field("experiments")?)?,
            batch_size: serde::Deserialize::from_value(field("batch_size")?)?,
            threads: serde::Deserialize::from_value(field("threads")?)?,
            iterations: serde::Deserialize::from_value(field("iterations")?)?,
            batched_experiments_per_sec: serde::Deserialize::from_value(field(
                "batched_experiments_per_sec",
            )?)?,
            pooled_experiments_per_sec: serde::Deserialize::from_value(field(
                "pooled_experiments_per_sec",
            )?)?,
            batched_over_pooled: serde::Deserialize::from_value(field("batched_over_pooled")?)?,
            matches_scalar: serde::Deserialize::from_value(field("matches_scalar")?)?,
            host: match serde::Value::get_field(map, "host") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => None,
            },
        })
    }
}

/// The subset of `BENCH_throughput.json` the CI gate needs. Extra fields
/// in the committed baseline are ignored on deserialization, so the gate
/// keeps working as the report grows.
#[derive(Debug, Clone)]
pub struct ThroughputBaseline {
    /// The per-cluster-size hot-path samples.
    pub rounds: Vec<RoundsSample>,
    /// The batched-campaign sample; absent in baselines committed before
    /// the lockstep engine existed (the gate then skips the comparison).
    pub batched: Option<BatchedSample>,
}

// Hand-written so a baseline written before the lockstep engine existed —
// no `batched` key at all — still parses as `batched: None` (the derive
// treats every missing field as an error, even `Option`s).
impl serde::Deserialize for ThroughputBaseline {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("expected map for ThroughputBaseline"))?;
        let rounds = serde::Value::get_field(map, "rounds").ok_or_else(|| {
            serde::DeError::custom("missing field `rounds` in ThroughputBaseline")
        })?;
        Ok(ThroughputBaseline {
            rounds: serde::Deserialize::from_value(rounds)?,
            batched: match serde::Value::get_field(map, "batched") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => None,
            },
        })
    }
}

/// The regression budget of the CI bench gate: a PR fails if rounds/sec at
/// the gated cluster size drops more than this fraction below the
/// committed baseline.
pub const GATE_MAX_REGRESSION: f64 = 0.25;

/// The cluster size the CI gate compares (the middle of the measured
/// N ∈ {4, 8, 16} spread — large enough to exercise the schedule, small
/// enough to be stable on throttled CI runners).
pub const GATE_N_NODES: usize = 8;

/// Compares a fresh measurement against the committed baseline.
///
/// Returns a human-readable verdict: `Ok` when the gated sample is within
/// [`GATE_MAX_REGRESSION`] of the baseline (faster is always fine), `Err`
/// when it regressed beyond the budget or either side lacks the gated
/// cluster size.
pub fn check_rounds_gate(
    baseline: &[RoundsSample],
    current: &[RoundsSample],
) -> Result<String, String> {
    let find = |samples: &[RoundsSample], what: &str| {
        samples
            .iter()
            .find(|s| s.n_nodes == GATE_N_NODES)
            .cloned()
            .ok_or_else(|| format!("{what} has no n_nodes={GATE_N_NODES} sample"))
    };
    let base = find(baseline, "baseline")?;
    let cur = find(current, "current run")?;
    let floor = base.rounds_per_sec * (1.0 - GATE_MAX_REGRESSION);
    let ratio = cur.rounds_per_sec / base.rounds_per_sec;
    let verdict = format!(
        "bench gate (N={GATE_N_NODES}): {:.0} rounds/sec vs baseline {:.0} \
         ({:.0}% of baseline, floor {:.0})",
        cur.rounds_per_sec,
        base.rounds_per_sec,
        ratio * 100.0,
        floor
    );
    if cur.rounds_per_sec < floor {
        Err(format!("{verdict} — REGRESSION beyond 25% budget"))
    } else {
        Ok(verdict)
    }
}

/// Compares a fresh batched-campaign measurement against the committed
/// baseline, like for like.
///
/// Returns `Ok` with a skip notice when the baseline has no batched
/// sample, was measured with a different workload shape (cluster size,
/// rounds, batch width or thread count), or on a different host
/// ([`HostFingerprint`]: core count, CPU model, `target-cpu` — including
/// a baseline from before fingerprints existed) — numbers from different
/// shapes or machines must not gate each other. Otherwise applies the
/// same [`GATE_MAX_REGRESSION`] budget as the rounds gate, and
/// additionally fails if the current run's scalar cross-check failed.
pub fn check_batched_gate(
    baseline: Option<&BatchedSample>,
    current: &BatchedSample,
) -> Result<String, String> {
    if !current.matches_scalar {
        return Err(
            "batched gate: current run diverged from the scalar protocol \
             (matches_scalar=false)"
                .to_string(),
        );
    }
    let Some(base) = baseline else {
        return Ok("batched gate: baseline has no batched sample — skipping".to_string());
    };
    let same_shape = (
        base.n_nodes,
        base.rounds_per_experiment,
        base.batch_size,
        base.threads,
    ) == (
        current.n_nodes,
        current.rounds_per_experiment,
        current.batch_size,
        current.threads,
    );
    if !same_shape {
        return Ok(format!(
            "batched gate: baseline shape (N={}, {} rounds, batch {}, {} threads) differs from \
             current (N={}, {} rounds, batch {}, {} threads) — not like-for-like, skipping",
            base.n_nodes,
            base.rounds_per_experiment,
            base.batch_size,
            base.threads,
            current.n_nodes,
            current.rounds_per_experiment,
            current.batch_size,
            current.threads,
        ));
    }
    // The host fingerprint joins the shape: throughput measured on
    // different silicon, with a different `target-cpu`, or on a host with
    // a different core count is not comparable, and a baseline from
    // before fingerprints existed has unknown provenance.
    match (&base.host, &current.host) {
        (Some(b), Some(c)) if b == c => {}
        (Some(b), Some(c)) => {
            return Ok(format!(
                "batched gate: baseline host ({} cores, {:?}, {}) differs from current \
                 ({} cores, {:?}, {}) — not like-for-like, skipping",
                b.logical_cores,
                b.cpu_model,
                b.target_cpu,
                c.logical_cores,
                c.cpu_model,
                c.target_cpu,
            ));
        }
        _ => {
            return Ok(
                "batched gate: baseline or current run lacks a host fingerprint — \
                 not like-for-like, skipping"
                    .to_string(),
            );
        }
    }
    let floor = base.batched_experiments_per_sec * (1.0 - GATE_MAX_REGRESSION);
    let ratio = current.batched_experiments_per_sec / base.batched_experiments_per_sec;
    let verdict = format!(
        "batched gate (N={}, batch {}, {} threads): {:.0} exp/sec vs baseline {:.0} \
         ({:.0}% of baseline, floor {:.0})",
        current.n_nodes,
        current.batch_size,
        current.threads,
        current.batched_experiments_per_sec,
        base.batched_experiments_per_sec,
        ratio * 100.0,
        floor
    );
    if current.batched_experiments_per_sec < floor {
        Err(format!("{verdict} — REGRESSION beyond 25% budget"))
    } else {
        Ok(verdict)
    }
}

/// Instrumented-vs-noop throughput of the full diagnostic protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadSample {
    /// Cluster size.
    pub n_nodes: usize,
    /// Rounds each side ran (fixed, so the recording side's memory is
    /// bounded and both sides do identical protocol work).
    pub rounds: u64,
    /// Rounds/sec with the default [`tt_sim::NoopSink`].
    pub noop_rounds_per_sec: f64,
    /// Rounds/sec with a live [`RecordingSink`] capturing every event.
    pub recording_rounds_per_sec: f64,
    /// `noop / recording` — how many times faster the uninstrumented path
    /// is. ~1.0 means recording is free; the noop side must stay at 1.0 by
    /// construction (that is what `tests/alloc_free.rs` pins down).
    pub noop_over_recording: f64,
    /// Events the recording side captured, as a sanity check that the
    /// instrumentation was actually live.
    pub recorded_events: u64,
    /// Rounds/sec with a live [`RecordingTraceSink`] installed (provenance
    /// tracing enabled on every phase of the pipeline).
    pub tracing_rounds_per_sec: f64,
    /// `noop / tracing` — the cost of enabling provenance tracing. On a
    /// healthy cluster this is pure `enabled()` guards, so ~1.0.
    pub noop_over_tracing: f64,
    /// Spans the tracing side captured. A healthy cluster diagnoses no
    /// faults, so this stays 0 — tracing is *silent*, not merely cheap,
    /// in the steady state (span liveness is pinned down by
    /// `tests/provenance_integration.rs`).
    pub recorded_spans: u64,
}

fn diag_cluster(n: usize, config: &ProtocolConfig, sink: Option<Arc<dyn MetricsSink>>) -> Cluster {
    let mut b = ClusterBuilder::new(n).trace_mode(TraceMode::Off);
    if let Some(sink) = sink {
        b = b.metrics_sink(sink);
    }
    b.build_with_jobs(
        |id| Box::new(DiagJob::new(id, config.clone())),
        Box::new(NoFaults),
    )
}

fn timed_rounds(cluster: &mut Cluster, rounds: u64) -> f64 {
    cluster.run_rounds(64); // warm the scratch buffers and history windows
    let start = Instant::now();
    cluster.run_rounds(rounds);
    rounds as f64 / start.elapsed().as_secs_f64()
}

/// Measures the overhead of live metrics collection on a healthy n-node
/// diagnostic cluster: the same fixed number of rounds is driven once with
/// the default noop sinks, once with a [`RecordingSink`] capturing every
/// metrics event, and once with a [`RecordingTraceSink`] capturing every
/// provenance span.
pub fn measure_overhead(n: usize, rounds: u64) -> OverheadSample {
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(197)
        .reward_threshold(1_000_000)
        .build()
        .expect("valid protocol config");

    let mut noop = diag_cluster(n, &config, None);
    let noop_rounds_per_sec = timed_rounds(&mut noop, rounds);

    let sink = Arc::new(RecordingSink::new());
    let mut recording = diag_cluster(n, &config, Some(sink.clone()));
    let recording_rounds_per_sec = timed_rounds(&mut recording, rounds);

    let trace_sink = Arc::new(RecordingTraceSink::new());
    let mut traced = ClusterBuilder::new(n)
        .trace_mode(TraceMode::Off)
        .trace_sink(trace_sink.clone())
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(NoFaults),
        );
    let tracing_rounds_per_sec = timed_rounds(&mut traced, rounds);

    OverheadSample {
        n_nodes: n,
        rounds,
        noop_rounds_per_sec,
        recording_rounds_per_sec,
        noop_over_recording: noop_rounds_per_sec / recording_rounds_per_sec,
        recorded_events: sink.event_count() as u64,
        tracing_rounds_per_sec,
        noop_over_tracing: noop_rounds_per_sec / tracing_rounds_per_sec,
        recorded_spans: trace_sink.span_count() as u64,
    }
}

/// Zeroes the wall-clock fields of a report in place.
///
/// `sim.round_ns` timings are the only nondeterministic signal in an
/// instrumented run; golden snapshots normalize them away so the rest of
/// the stream can be compared bit for bit.
pub fn normalize_report(report: &mut MetricsReport) {
    for h in &mut report.histograms {
        if h.name == "sim.round_ns" {
            let count = h.summary.count;
            h.summary = Default::default();
            h.summary.count = count;
        }
    }
    for e in &mut report.events {
        if let MetricsEvent::RoundCompleted { wall_ns, .. } = e {
            *wall_ns = 0;
        }
    }
}

/// The canonical instrumented scenario behind
/// `tests/golden/metrics_events.json`: a 4-node cluster with `P = 3`,
/// `R = 2` where node 2 is intermittently faulty (every second round from
/// round 4) until it is isolated, while node 3 suffers a single transient
/// in round 5 that the reward counter forgives. The returned report is
/// [normalized](normalize_report) and therefore fully deterministic.
pub fn canonical_metrics_report() -> MetricsReport {
    let sink = Arc::new(RecordingSink::new());
    let config = ProtocolConfig::builder(4)
        .penalty_threshold(3)
        .reward_threshold(2)
        .build()
        .expect("valid protocol config");
    let pipeline = |ctx: &TxCtx| {
        let r = ctx.round.as_u64();
        let intermittent = ctx.sender == NodeId::new(2) && r >= 4 && r.is_multiple_of(2);
        let transient = ctx.sender == NodeId::new(3) && r == 5;
        if intermittent || transient {
            SlotEffect::Benign
        } else {
            SlotEffect::Correct
        }
    };
    let mut cluster = ClusterBuilder::new(4)
        .trace_mode(TraceMode::Off)
        .metrics_sink(sink.clone())
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(pipeline),
        );
    cluster.run_rounds(16);
    let mut report = sink.report();
    normalize_report(&mut report);
    report
}

/// The second canonical instrumented scenario, behind
/// `tests/golden/metrics_events_lightning.json`: the Table 3 aerospace
/// lightning-bolt transient driven against a 4-node cluster tuned with the
/// aerospace penalty threshold `P = 17` and `R = 2`, for 24 rounds. The
/// burst hits every node's slots, so the stream exercises simultaneous
/// multi-column accusations and the forgiveness path — a shape the
/// intermittent scenario above never produces. The returned report is
/// [normalized](normalize_report) and therefore fully deterministic.
pub fn lightning_metrics_report() -> MetricsReport {
    let n = 4;
    let round_length = Nanos::from_micros(2_500);
    let sink = Arc::new(RecordingSink::new());
    let config = ProtocolConfig::builder(n)
        .penalty_threshold(17)
        .reward_threshold(2)
        .build()
        .expect("valid protocol config");
    let sched = CommunicationSchedule::new(n, round_length).expect("valid schedule");
    let mut pipeline = DisturbanceNode::new(0);
    pipeline.push(TransientScenario::lightning_bolt().to_disturbance(&sched, Nanos::ZERO));
    let mut cluster = ClusterBuilder::new(n)
        .round_length(round_length)
        .trace_mode(TraceMode::Off)
        .metrics_sink(sink.clone())
        .build_with_jobs(
            |id| Box::new(DiagJob::new(id, config.clone())),
            Box::new(pipeline),
        );
    cluster.run_rounds(24);
    let mut report = sink.report();
    normalize_report(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_analysis::EventSummary;

    #[test]
    fn canonical_report_is_deterministic_and_complete() {
        let a = canonical_metrics_report();
        let b = canonical_metrics_report();
        assert_eq!(a, b, "normalized canonical report must be reproducible");

        let summary = EventSummary::of(&a.events);
        assert_eq!(summary.count("round_completed"), 16);
        assert!(summary.count("isolation") > 0, "node 2 gets isolated");
        assert!(summary.count("forgiveness") > 0, "node 3 gets forgiven");
        assert!(summary.count("penalty_charged") > 0);
        assert!(summary.count("reward_earned") > 0);
        // Normalization: every wall-clock field is zero.
        for e in &a.events {
            if let MetricsEvent::RoundCompleted { wall_ns, .. } = e {
                assert_eq!(*wall_ns, 0);
            }
        }
    }

    #[test]
    fn overhead_sample_measures_both_sides() {
        let s = measure_overhead(4, 50);
        assert!(s.noop_rounds_per_sec > 0.0);
        assert!(s.recording_rounds_per_sec > 0.0);
        assert!(s.recorded_events > 0, "recording side captured events");
        assert!(s.tracing_rounds_per_sec > 0.0);
        assert_eq!(s.recorded_spans, 0, "healthy cluster emits no spans");
    }

    #[test]
    fn lightning_report_is_deterministic_and_complete() {
        let a = lightning_metrics_report();
        let b = lightning_metrics_report();
        assert_eq!(a, b, "normalized lightning report must be reproducible");

        let summary = EventSummary::of(&a.events);
        assert_eq!(summary.count("round_completed"), 24);
        assert!(summary.count("slot_fault") > 0, "the burst hits the bus");
        assert!(
            summary.count("penalty_charged") > 0,
            "victims get penalized"
        );
        assert!(
            summary.count("forgiveness") > 0,
            "R = 2 forgives the transient before P = 17 isolates"
        );
        assert_eq!(summary.count("isolation"), 0, "no one is isolated");
    }

    #[test]
    fn rounds_gate_passes_within_budget_and_fails_beyond() {
        let base = vec![RoundsSample {
            n_nodes: GATE_N_NODES,
            rounds_per_sec: 1000.0,
        }];
        let ok = |rps: f64| {
            check_rounds_gate(
                &base,
                &[RoundsSample {
                    n_nodes: GATE_N_NODES,
                    rounds_per_sec: rps,
                }],
            )
        };
        assert!(ok(1000.0).is_ok());
        assert!(ok(800.0).is_ok(), "within the 25% budget");
        assert!(ok(1500.0).is_ok(), "faster is always fine");
        assert!(ok(700.0).is_err(), "beyond the 25% budget");
        assert!(check_rounds_gate(&[], &base).is_err(), "missing baseline");
    }

    #[test]
    fn baseline_parses_committed_report_shape() {
        let json = r#"{
            "rounds": [
                {"n_nodes": 4, "rounds_per_sec": 90000.0},
                {"n_nodes": 8, "rounds_per_sec": 45000.0}
            ],
            "campaign": {"classes": 8, "reps": 1}
        }"#;
        let base: ThroughputBaseline = serde_json::from_str(json).unwrap();
        assert_eq!(base.rounds.len(), 2);
        assert!(base.batched.is_none(), "pre-lockstep baselines still parse");
        assert!(check_rounds_gate(&base.rounds, &base.rounds).is_ok());
    }

    fn test_host() -> HostFingerprint {
        HostFingerprint {
            logical_cores: 8,
            cpu_model: "Test CPU 3000".into(),
            target_cpu: "x86_64[avx2]".into(),
        }
    }

    fn batched_sample(eps: f64) -> BatchedSample {
        BatchedSample {
            n_nodes: GATE_N_NODES,
            rounds_per_experiment: 24,
            experiments: 4096,
            batch_size: 256,
            threads: 1,
            iterations: 8,
            batched_experiments_per_sec: eps,
            pooled_experiments_per_sec: eps / 5.0,
            batched_over_pooled: 5.0,
            matches_scalar: true,
            host: Some(test_host()),
        }
    }

    #[test]
    fn batched_gate_passes_within_budget_and_fails_beyond() {
        let base = batched_sample(100_000.0);
        let gate = |eps: f64| check_batched_gate(Some(&base), &batched_sample(eps));
        assert!(gate(100_000.0).is_ok());
        assert!(gate(80_000.0).is_ok(), "within the 25% budget");
        assert!(gate(150_000.0).is_ok(), "faster is always fine");
        assert!(gate(70_000.0).is_err(), "beyond the 25% budget");
    }

    #[test]
    fn batched_gate_skips_unless_like_for_like() {
        let base = batched_sample(100_000.0);
        let current = batched_sample(10.0); // would fail if compared
        let verdict = check_batched_gate(None, &current).unwrap();
        assert!(verdict.contains("skipping"), "{verdict}");
        for reshape in [
            |s: &mut BatchedSample| s.n_nodes += 1,
            |s: &mut BatchedSample| s.rounds_per_experiment += 1,
            |s: &mut BatchedSample| s.batch_size *= 2,
            |s: &mut BatchedSample| s.threads += 1,
        ] {
            let mut moved = base.clone();
            reshape(&mut moved);
            let verdict = check_batched_gate(Some(&moved), &current).unwrap();
            assert!(verdict.contains("not like-for-like"), "{verdict}");
        }
        // Experiment count and iterations scale the measurement, not the
        // per-experiment shape — they do not break comparability.
        let mut longer = base.clone();
        longer.experiments *= 4;
        longer.iterations += 1;
        assert!(check_batched_gate(Some(&longer), &batched_sample(90_000.0)).is_ok());
    }

    #[test]
    fn batched_gate_skips_across_hosts() {
        let base = batched_sample(100_000.0);
        let current = batched_sample(10.0); // would fail if compared
        for rehost in [
            |h: &mut HostFingerprint| h.logical_cores = 1,
            |h: &mut HostFingerprint| h.cpu_model = "Other CPU".into(),
            |h: &mut HostFingerprint| h.target_cpu = "x86_64".into(),
        ] {
            let mut moved = base.clone();
            rehost(moved.host.as_mut().unwrap());
            let verdict = check_batched_gate(Some(&moved), &current).unwrap();
            assert!(verdict.contains("host"), "{verdict}");
            assert!(verdict.contains("skipping"), "{verdict}");
        }
        // A baseline from before fingerprints existed has unknown
        // provenance — skip rather than gate.
        let mut legacy = base.clone();
        legacy.host = None;
        let verdict = check_batched_gate(Some(&legacy), &current).unwrap();
        assert!(verdict.contains("fingerprint"), "{verdict}");
        // Same host on both sides compares (and here, fails on merit).
        assert!(check_batched_gate(Some(&base), &current).is_err());
    }

    #[test]
    fn batched_sample_parses_with_and_without_host() {
        let with = serde_json::to_string(&batched_sample(1_000.0)).unwrap();
        let parsed: BatchedSample = serde_json::from_str(&with).unwrap();
        assert_eq!(parsed.host, Some(test_host()));
        // A baseline committed before the `host` field existed.
        let legacy = r#"{
            "n_nodes": 8, "rounds_per_experiment": 24, "experiments": 4096,
            "batch_size": 256, "threads": 1, "iterations": 8,
            "batched_experiments_per_sec": 100000.0,
            "pooled_experiments_per_sec": 20000.0,
            "batched_over_pooled": 5.0, "matches_scalar": true
        }"#;
        let parsed: BatchedSample = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed.host, None);
    }

    #[test]
    fn host_fingerprint_detects_this_machine() {
        let h = HostFingerprint::detect();
        assert!(h.logical_cores >= 1);
        assert!(!h.cpu_model.is_empty());
        assert!(h.target_cpu.contains(std::env::consts::ARCH));
        assert_eq!(h, HostFingerprint::detect(), "detection is stable");
    }

    #[test]
    fn batched_gate_rejects_scalar_divergence_outright() {
        let mut current = batched_sample(1_000_000.0);
        current.matches_scalar = false;
        assert!(check_batched_gate(None, &current).is_err());
    }
}
