//! Rendering of campaign supervision outcomes (quarantines, retries,
//! worker health) for reports and the CLI.

use tt_fault::SupervisionSummary;

use crate::table::Table;

/// Renders the quarantine/retry section of a supervised campaign report.
///
/// A clean run renders a single line saying so; a degraded run lists every
/// quarantined experiment with its reproduction seed and reason, the total
/// retry count, and the per-worker accounting (panics, timeouts,
/// transients, isolation) in worker order.
pub fn render_supervision_summary(summary: &SupervisionSummary) -> String {
    if summary.clean() {
        return "supervision: clean run (no quarantines, no retries, no worker isolation)\n"
            .to_string();
    }
    let mut out = format!(
        "supervision: {} quarantined, {} retries\n\n",
        summary.quarantined.len(),
        summary.retries
    );
    if !summary.quarantined.is_empty() {
        let mut t = Table::new(vec!["Item", "Class", "Seed", "Attempts", "Reason"]);
        for q in &summary.quarantined {
            t.row(vec![
                q.item.to_string(),
                q.label.clone(),
                format!("{:#x}", q.seed),
                q.attempts.to_string(),
                q.reason.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    let degraded_workers = summary
        .workers
        .iter()
        .any(|w| w.isolated || w.panics > 0 || w.timeouts > 0 || w.transients > 0);
    if degraded_workers {
        let mut t = Table::new(vec![
            "Worker",
            "Completed",
            "Panics",
            "Timeouts",
            "Transients",
            "Status",
        ]);
        for w in &summary.workers {
            t.row(vec![
                w.worker.to_string(),
                w.completed.to_string(),
                w.panics.to_string(),
                w.timeouts.to_string(),
                w.transients.to_string(),
                if w.isolated { "ISOLATED" } else { "active" }.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_fault::{QuarantineReason, QuarantineRecord, WorkerStats};

    #[test]
    fn clean_summary_renders_one_line() {
        let s = render_supervision_summary(&SupervisionSummary::default());
        assert!(s.contains("clean run"), "{s}");
        assert_eq!(s.lines().count(), 1);
    }

    #[test]
    fn degraded_summary_lists_quarantines_and_workers() {
        let summary = SupervisionSummary {
            quarantined: vec![QuarantineRecord {
                item: 7,
                label: "burst/2slots@s3".into(),
                seed: 0xBEEF,
                attempts: 3,
                reason: QuarantineReason::Panic("boom".into()),
            }],
            retries: 4,
            workers: vec![
                WorkerStats {
                    worker: 0,
                    completed: 10,
                    panics: 3,
                    timeouts: 0,
                    transients: 1,
                    isolated: true,
                },
                WorkerStats {
                    worker: 1,
                    completed: 12,
                    ..WorkerStats::default()
                },
            ],
        };
        let s = render_supervision_summary(&summary);
        assert!(s.contains("1 quarantined, 4 retries"), "{s}");
        assert!(s.contains("burst/2slots@s3"), "{s}");
        assert!(s.contains("0xbeef"), "{s}");
        assert!(s.contains("panic: boom"), "{s}");
        assert!(s.contains("ISOLATED"), "{s}");
        assert!(s.contains("active"), "{s}");
    }
}
