//! Summary statistics for repeated seeded experiments.

use serde::{Deserialize, Serialize};

/// Streaming summary statistics (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the ~95 % confidence interval of the mean (normal
    /// approximation; 0 with fewer than two observations).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.count as f64).sqrt()
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// The `q`-th percentile (0..=100, nearest-rank) of a sample.
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` exceeds 100 or any value is NaN.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
    let rank = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    Some(sorted[rank])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_computes_known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        s.extend([4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(51.0)); // nearest rank
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_q() {
        let _ = percentile(&[1.0], 101.0);
    }
}
